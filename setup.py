"""Classic setuptools entry point.

Kept alongside pyproject.toml so the package installs in offline
environments whose setuptools predates PEP 660 editable wheels
(`pip install -e . --no-build-isolation` or `python setup.py develop`).
"""

from setuptools import setup

setup()
