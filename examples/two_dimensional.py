#!/usr/bin/env python
"""2-D distributions: the extension the paper describes and declines.

Paper Section 5.1: "The MHETA model extends to two-dimensional data
distributions, but such distributions are problematic for run-time data
distribution systems because the search space increases greatly."

This example demonstrates both halves:

1. the 2-D model working — predicted vs actual for 2-D Jacobi layouts on
   a heterogeneous cluster, including the case where a 2x4 grid beats
   8x1 strips because square-ish tiles halve the halo traffic;
2. the search-space explosion that justified the paper's 1-D focus —
   and the batched/plan-compiled 2-D kernel that pays for it, driving
   a full layout search over every grid shape.

Run time: a few seconds (``--full`` for the paper-scale grid).
"""

import argparse

from repro.cluster import ClusterSpec, baseline_cluster, config_dc
from repro.twod import (
    Jacobi2DSpec,
    TwoDEmulator,
    TwoDGbs,
    balanced2d,
    block2d,
    build_2d_model,
    factor_pairs,
    search_space_growth,
)
from repro.util.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()
    n = 8192 if args.full else 2048
    iters = 100 if args.full else 10

    # -- 1a: the model tracks reality across grid shapes -------------------
    cluster = config_dc()
    spec = Jacobi2DSpec(n_rows=n, n_cols=n, iterations=iters)
    rows = []
    # One model serves every grid shape: the calibration is a per-element
    # compute rate, which transfers across shapes.
    model = build_2d_model(
        cluster, spec, block2d(spec.n_rows, spec.n_cols, (2, 4))
    )
    emulator = TwoDEmulator(cluster, spec)
    for shape in factor_pairs(cluster.n_nodes):
        for label, dist in (
            ("Blk", block2d(spec.n_rows, spec.n_cols, shape)),
            ("Bal", balanced2d(cluster, spec.n_rows, spec.n_cols, shape)),
        ):
            actual = emulator.run(dist)
            predicted = model.predict(dist)
            err = abs(predicted - actual) / min(predicted, actual) * 100
            rows.append(
                [f"{shape[0]}x{shape[1]}", label, actual, predicted, err]
            )
    print(
        render_table(
            ["grid", "layout", "actual (s)", "predicted (s)", "error %"],
            rows,
            float_fmt=".2f",
            title=f"2-D Jacobi on DC ({n}x{n} doubles): MHETA over GenBlock2D",
        )
    )
    best = min(rows, key=lambda r: r[2])
    print(
        f"\nBest layout: {best[0]} {best[1]} — for CPU-only heterogeneity "
        "the winning grids are the ones whose row/column power sums match "
        "DC's power layout; shapes that split the heterogeneity across "
        "both axes (like 2x4 here) balance worse, because a rectangular "
        "grid cannot realise arbitrary per-node areas.\n"
    )

    # -- 1b: where 2-D genuinely wins ------------------------------------
    base = baseline_cluster(name="homog")
    slow_net = ClusterSpec(
        name=base.name,
        nodes=base.nodes,
        network=base.network.with_(latency_per_byte=2e-7),
    )
    comm_spec = Jacobi2DSpec(
        n_rows=n, n_cols=n, iterations=iters, work_per_element=2e-9
    )
    emulator = TwoDEmulator(slow_net, comm_spec)
    strips = emulator.run(block2d(n, n, (8, 1)))
    grid = emulator.run(block2d(n, n, (2, 4)))
    print(
        f"Communication-bound stencil on a homogeneous cluster: 8x1 strips "
        f"{strips:.2f}s vs 2x4 grid {grid:.2f}s "
        f"({(1 - grid / strips) * 100:.0f}% faster) — the classic "
        "halo-perimeter argument, visible in the emulator.\n"
    )

    # -- 2: why the paper stayed 1-D --------------------------------------
    print(search_space_growth().describe())

    # -- 3: ...and the batched kernel that pays for it --------------------
    search_model = build_2d_model(
        cluster, spec, block2d(n, n, (2, 4)), kernel="plan"
    )
    result = TwoDGbs(search_model).search(budget=400)
    print(
        f"\nBatched 2-D search over all grid shapes ({result.evaluations} "
        f"evaluations through the compiled kernel):\n  {result}"
    )
    for shape, value in sorted(result.per_shape.items()):
        marker = " <-" if shape == result.best.grid_shape else ""
        print(f"  {shape[0]}x{shape[1]}: {value:.2f}s{marker}")


if __name__ == "__main__":
    main()
