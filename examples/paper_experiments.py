#!/usr/bin/env python
"""Regenerate the paper's tables and figures as text.

Runs the full experiment harness: Table 1, the four Figure-9 accuracy
panels, the Figure-10/11 predicted-vs-actual curves, the evaluation-cost
measurement, and the best-vs-worst spreads.  By default everything runs
at reduced scale (about a minute); ``--full`` uses the paper-scale
problems (several minutes) and is what EXPERIMENTS.md records.
"""

import argparse
import time

from repro.experiments import (
    dedicated_assumption_study,
    distribution_spread,
    error_ablation,
    fig9_accuracy,
    figure10,
    figure11,
    model_evaluation_timing,
    table1,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="paper-scale problems"
    )
    parser.add_argument(
        "--steps", type=int, default=None, help="spectrum steps per leg"
    )
    args = parser.parse_args()
    scale = 1.0 if args.full else 0.1
    steps = args.steps or (4 if args.full else 2)

    t0 = time.time()
    banner = lambda s: print("\n" + "=" * 72 + f"\n{s}\n" + "=" * 72)

    banner("Table 1: emulated architecture configurations")
    print(table1())

    banner("Figure 9: prediction accuracy bands")
    for panel in ("all", "jacobi-prefetch", "rna", "cg"):
        bands = fig9_accuracy(panel=panel, scale=scale, steps_per_leg=steps)
        print(bands.describe())
        print()
        print(bands.chart())
        print()

    banner("Figure 10: configurations DC and IO")
    for curves in figure10(steps_per_leg=steps, scale=scale):
        print(curves.describe())
        print()

    banner("Figure 11: configurations HY1 and HY2")
    for curves in figure11(steps_per_leg=steps, scale=scale):
        print(curves.describe())
        print()

    banner("Model evaluation cost (paper: ~5.4 ms per distribution)")
    print(model_evaluation_timing().describe())

    banner("Best-vs-worst spreads (paper: ~4x RNA/DC, ~3x Lanczos/HY1)")
    print(distribution_spread(steps_per_leg=steps, scale=scale).describe())

    banner("Error ablation (Section 5.4's limitations, quantified)")
    print(error_ablation(scale=scale).describe())

    banner("Robustness: the dedicated-environment assumption (Section 3.2)")
    print(dedicated_assumption_study(scale=scale).describe())

    print(f"\nTotal wall time: {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
