#!/usr/bin/env python
"""Quickstart: predict an application's execution time with MHETA.

Walks the paper's whole pipeline on one configuration:

1. describe a heterogeneous cluster (Table 1's HY1);
2. take the Jacobi application's program structure;
3. run microbenchmarks and one instrumented iteration (under Blk);
4. predict execution times for candidate distributions with MHETA;
5. compare against "actual" runs on the emulated cluster.

Run time: a few seconds.  Pass ``--full`` for the paper-scale problem.
"""

import argparse

from repro import (
    ClusterEmulator,
    JacobiApp,
    block,
    build_model,
    config_hy1,
    spectrum,
)
from repro.util.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="paper-scale problem size"
    )
    args = parser.parse_args()
    scale = 1.0 if args.full else 0.1

    cluster = config_hy1()
    print(cluster.describe(), "\n")

    app = JacobiApp.paper(scale)
    program = app.structure
    print(
        f"{program.name}: {program.n_rows} rows, "
        f"{program.dataset_bytes / 2**20:.0f} MiB dataset, "
        f"{program.iterations} iterations\n"
    )

    # One instrumented iteration under Blk -> the internal MHETA file.
    model = build_model(cluster, program)

    # Sweep the distribution spectrum, predicted vs actual.
    emulator = ClusterEmulator(cluster, program)
    rows = []
    for point in spectrum(cluster, program, steps_per_leg=2):
        predicted = model.predict(point.distribution)
        actual = emulator.run(point.distribution).total_seconds
        error = abs(predicted - actual) / min(predicted, actual) * 100
        rows.append([point.label, actual, predicted, error])
    print(
        render_table(
            ["distribution", "actual (s)", "predicted (s)", "error %"],
            rows,
            float_fmt=".2f",
            title="MHETA predictions across the distribution spectrum",
        )
    )

    best = min(rows, key=lambda r: r[2])
    print(
        f"\nMHETA picks {best[0]!r}; a per-distribution evaluation costs "
        "well under a millisecond, so a runtime system can afford to "
        "search (paper: ~5.4 ms on 2005 hardware)."
    )

    # Show the per-node breakdown for the chosen distribution.
    chosen = min(
        spectrum(cluster, program, steps_per_leg=2),
        key=lambda p: model.predict(p.distribution),
    )
    print("\n" + model.predict(chosen.distribution, report=True).describe())


if __name__ == "__main__":
    main()
