#!/usr/bin/env python
"""Run the real numeric kernels behind the structural models.

The accuracy experiments use structural models of Jacobi, CG, Lanczos,
RNA and Multigrid; this example runs the genuine algorithms (NumPy, at
example scale) so the shapes being modelled — iteration counts, the
per-iteration communication pattern, CG's varying row density — are
visible in working code.

Run time: a few seconds.
"""

import numpy as np

from repro.apps.kernels import (
    cg_solve,
    jacobi_solve,
    lanczos_tridiagonalize,
    make_sparse_spd_matrix,
    multigrid_solve,
    rna_fold,
)
from repro.apps.kernels.lanczos_kernel import make_spd_dense
from repro.apps.kernels.rna_kernel import random_sequence


def main() -> None:
    print("-- Jacobi iteration ------------------------------------------")
    grid = np.zeros((64, 64))
    grid[0, :] = 1.0  # hot top edge
    result = jacobi_solve(grid, max_iterations=2000, tolerance=1e-6)
    print(
        f"converged={result.converged} after {result.iterations} sweeps; "
        f"final residual {result.residuals[-1]:.2e}"
    )
    print(
        "each sweep = one 'sweep' parallel section (neighbour exchange) "
        "+ one residual reduction\n"
    )

    print("-- Conjugate Gradient ----------------------------------------")
    a = make_sparse_spd_matrix(400, avg_nnz=10)
    nnz = a.row_nnz()
    print(
        f"sparse SPD matrix: {a.nnz} non-zeros; per-row nnz ranges "
        f"{nnz.min()}..{nnz.max()} (mean {nnz.mean():.1f}) — the variation "
        "that defeats MHETA's row-count scaling"
    )
    b = np.ones(400)
    result = cg_solve(a, b, max_iterations=200, tolerance=1e-10)
    residual = np.linalg.norm(a.matvec(result.x) - b)
    print(
        f"CG converged={result.converged} in {result.iterations} "
        f"iterations; |Ax-b| = {residual:.2e}\n"
    )

    print("-- Lanczos ---------------------------------------------------")
    m = make_spd_dense(96)
    result = lanczos_tridiagonalize(m, iterations=20)
    ritz = result.ritz_values()
    true = np.linalg.eigvalsh(m)
    print(
        f"20 Lanczos steps: extreme eigenvalue estimate {ritz[-1]:.4f} "
        f"(true {true[-1]:.4f}); each step = one out-of-core mat-vec + "
        "orthogonalisation reductions\n"
    )

    print("-- RNA wavefront dynamic program -----------------------------")
    seq = random_sequence(64)
    result = rna_fold(seq)
    print(f"sequence: {seq}")
    print(
        f"optimal structure pairs {result.best_pairs} bases; the DP table "
        "fills along anti-diagonal wavefronts — the pipelined tiles of "
        "the RNA benchmark\n"
    )

    print("-- Multigrid V-cycles ----------------------------------------")
    x = np.linspace(0, 1, 257)
    f = np.sin(np.pi * x) * np.pi**2
    result = multigrid_solve(f, cycles=25, tolerance=1e-9)
    err = np.abs(result.solution - np.sin(np.pi * x)).max()
    print(
        f"{result.cycles} V-cycles; residual {result.residual_norms[-1]:.2e}, "
        f"solution error {err:.2e} — each cycle is the section ladder the "
        "Multigrid structural model describes"
    )


if __name__ == "__main__":
    main()
