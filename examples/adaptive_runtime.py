#!/usr/bin/env python
"""The paper's Section-6 system, end to end.

Runs the adaptive runtime — instrumented first iteration, MHETA-driven
GBS search, amortisation-checked redistribution, remaining iterations —
for every application on every Table-1 configuration, and compares the
end-to-end adaptive time against running the whole job statically under
Blk.

Run time: ~10 seconds (``--full`` for paper-scale problems).
"""

import argparse

from repro.cluster import table1_configs
from repro.runtime import AdaptiveRuntime
from repro.apps import paper_applications
from repro.util.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="paper-scale problem sizes"
    )
    args = parser.parse_args()
    scale = 1.0 if args.full else 0.15

    rows = []
    for app in paper_applications(scale):
        for name, cluster in table1_configs().items():
            report = AdaptiveRuntime(cluster, app.structure).run()
            rows.append(
                [
                    app.name,
                    name,
                    "yes" if report.switched else "no",
                    report.static_seconds,
                    report.adaptive_seconds,
                    report.speedup_vs_static,
                ]
            )
    print(
        render_table(
            ["app", "config", "switched", "static Blk (s)", "adaptive (s)", "speedup"],
            rows,
            float_fmt=".2f",
            title="Adaptive runtime vs static Blk (instrument + search + "
            "redistribute + run)",
        )
    )
    switched = [r for r in rows if r[2] == "yes"]
    print(
        f"\nSwitched in {len(switched)}/{len(rows)} cases; when it "
        "switched, the gain dwarfed the instrumentation, search and "
        "redistribution overheads — the infrastructure the paper's "
        "Section 6 proposes."
    )


if __name__ == "__main__":
    main()
