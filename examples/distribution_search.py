#!/usr/bin/env python
"""Distribution search: the four algorithms of the companion paper [26].

MHETA's purpose is to be the evaluation function inside a search for an
efficient data distribution.  This example runs GBS, genetic, simulated
annealing and random search on Lanczos over configuration HY2, then
*verifies* each winner by actually running it on the emulated cluster —
showing both that MHETA-guided search works and how the algorithms
compare at equal budgets.

Run time: a few seconds.
"""

import argparse

from repro import (
    ClusterEmulator,
    GeneralizedBinarySearch,
    GeneticSearch,
    LanczosApp,
    RandomSearch,
    SimulatedAnnealingSearch,
    SpectrumSweep,
    block,
    build_model,
    config_hy2,
)
from repro.util.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="paper-scale problem size"
    )
    parser.add_argument("--budget", type=int, default=150)
    args = parser.parse_args()
    scale = 1.0 if args.full else 0.1

    cluster = config_hy2()
    program = LanczosApp.paper(scale).structure
    model = build_model(cluster, program)
    emulator = ClusterEmulator(cluster, program)

    blk = block(cluster, program.n_rows)
    baseline = emulator.run(blk).total_seconds
    print(
        f"Lanczos on HY2, {program.n_rows} rows; Blk actually runs in "
        f"{baseline:.2f}s\n"
    )

    searches = [
        GeneralizedBinarySearch(model, cluster),
        GeneticSearch(model),
        SimulatedAnnealingSearch(model),
        RandomSearch(model),
        SpectrumSweep(model, cluster),
    ]
    rows = []
    for search in searches:
        result = search.search(budget=args.budget)
        verified = emulator.run(result.best).total_seconds
        rows.append(
            [
                result.algorithm,
                result.evaluations,
                result.predicted_seconds,
                verified,
                (1.0 - verified / baseline) * 100.0,
            ]
        )
    print(
        render_table(
            [
                "algorithm",
                "evals",
                "predicted (s)",
                "verified (s)",
                "vs Blk %",
            ],
            rows,
            float_fmt=".2f",
            title=f"Search comparison (budget {args.budget} evaluations)",
        )
    )
    best = min(rows, key=lambda r: r[3])
    print(
        f"\nBest verified: {best[0]} — {best[3]:.2f}s, "
        f"{best[4]:.0f}% faster than Blk."
    )


if __name__ == "__main__":
    main()
