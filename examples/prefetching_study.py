#!/usr/bin/env python
"""Prefetching study: Jacobi with and without one-block-ahead reads.

Reproduces the paper's prefetching angle (Figure 9 top-right): the
unrolled loop of Figure 6 hides part of each ICLA read latency behind
the previous block's computation, and MHETA's Equation 2 predicts the
resulting times.  For each memory-pressured configuration this example
reports synchronous vs prefetching execution times and MHETA's accuracy
on both.

Run time: a few seconds.
"""

import argparse

from repro import (
    ClusterEmulator,
    JacobiApp,
    build_model,
    config_hy1,
    config_io,
    spectrum,
)
from repro.util.tables import render_table


def sweep(cluster, program):
    """(label, actual, predicted) per spectrum point."""
    model = build_model(cluster, program)
    emulator = ClusterEmulator(cluster, program)
    out = []
    for point in spectrum(cluster, program, steps_per_leg=2):
        actual = emulator.run(point.distribution).total_seconds
        predicted = model.predict_seconds(point.distribution)
        out.append((point.label, actual, predicted))
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="paper-scale problem size"
    )
    args = parser.parse_args()
    scale = 1.0 if args.full else 0.1

    app = JacobiApp.paper(scale)
    for cluster in (config_io(), config_hy1()):
        sync = sweep(cluster, app.structure)
        prefetch = sweep(cluster, app.prefetching())
        rows = []
        for (label, a_sync, p_sync), (_, a_pf, p_pf) in zip(sync, prefetch):
            saving = (1.0 - a_pf / a_sync) * 100.0 if a_sync else 0.0
            err = abs(p_pf - a_pf) / min(p_pf, a_pf) * 100.0
            rows.append([label, a_sync, a_pf, saving, p_pf, err])
        print(
            render_table(
                [
                    "distribution",
                    "sync (s)",
                    "prefetch (s)",
                    "saved %",
                    "Eq.2 pred (s)",
                    "err %",
                ],
                rows,
                float_fmt=".2f",
                title=f"Jacobi prefetching on {cluster.name}",
            )
        )
        print()
    print(
        "Prefetching helps where I/O and computation genuinely overlap; "
        "where computation is tiny relative to reads, the issue overhead "
        "makes it a wash — both outcomes predicted by Equation 2."
    )


if __name__ == "__main__":
    main()
