"""Bench E1: emulated-run cost — the experiment harness's other half.

PRs 1-3 drove a MHETA evaluation to ~0.04 ms; every *emulated* ("Actual"
series) run still stepped all N iterations through the Python event
loop.  This benchmark measures the emulator fast path on a fig9-style
deterministic workload (Jacobi on HY1, paper scale, 100 iterations,
stochastic noise off, every iteration-invariant ground-truth effect on):

* full event-by-event simulation (``fast_forward=False``) vs the
  steady-state cycle fast-forward, interleaved so host noise hits both
  equally, over spectrum candidate distributions;
* the same comparison for the prefetching variant;
* cached ``emulate()`` hit throughput (the content-keyed run cache);
* the raw engine dispatch loop (ping-pong and delay-only microbench) —
  the hot-loop rewrite's per-event overhead.

It writes the machine-readable scoreboard ``BENCH_emulator_speed.json``
at the repo root.  The hard acceptance gate — enforced here *and* in
CI — is a >= 3x fast-forward speedup over full simulation of the same
workload; full simulation itself already carries the engine rewrite,
so the gate is conservative with respect to the seed emulator.

Equivalence is asserted alongside speed: every fast-forwarded result
must match its full simulation to <= 1e-9 relative.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.apps import JacobiApp
from repro.cluster import config_hy1
from repro.distribution import spectrum
from repro.parallel.cache import RunCache
from repro.sim import ClusterEmulator, PerturbationConfig, emulate, emulate_many
from repro.sim.engine import Delay, Engine, Recv, Send
from repro.sim.plan_sim import emulation_numba_active

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_emulator_speed.json"

#: Acceptance floor: steady-state fast-forward must beat full
#: event-by-event simulation of the same deterministic workload by at
#: least this factor.
REQUIRED_SPEEDUP = 3.0

#: The PR-4 fast-forward cost this machine recorded before the
#: compiled-plan path landed (BENCH_emulator_speed.json, frozen):
#: plan-served runs are measured against it.
PR4_FAST_FORWARD_MS = {"sync": 5.470, "prefetch": 5.387}

#: Acceptance floor for the batched plan path vs the frozen PR-4
#: figure (the CI gate; the issue targets >= 5x per-run and >= 10x
#: amortised, which this run records).
REQUIRED_BATCH_SPEEDUP = 3.0

#: Fast-forward must reproduce full simulation to this relative bound.
EQUIVALENCE_RTOL = 1e-9

#: Fig9-style deterministic ground truth: only the stochastic
#: computation noise is off; cache effects, OS read cache, sparse
#: weights and runtime overhead all stay on.
DETERMINISTIC = PerturbationConfig().without(compute_noise=False)


def _setup(prefetch: bool):
    cluster = config_hy1()
    app = JacobiApp.paper()
    program = app.prefetching() if prefetch else app.structure
    candidates = []
    for p in spectrum(cluster, program, steps_per_leg=2):
        if p.distribution.counts not in [c.counts for c in candidates]:
            candidates.append(p.distribution)
    return cluster, program, candidates


def _max_rel_diff(full, fast) -> float:
    worst = abs(full.total_seconds - fast.total_seconds) / full.total_seconds
    for full_ends, fast_ends in zip(full.iteration_ends, fast.iteration_ends):
        fe = np.asarray(full_ends)
        se = np.asarray(fast_ends)
        worst = max(worst, float(np.max(np.abs(fe - se) / np.maximum(fe, 1e-300))))
    return worst


def _interleaved_runs(cluster, program, candidates, reps=3):
    """Interleave full-simulation and fast-forward runs per candidate,
    checking equivalence on the fly."""
    emulator = ClusterEmulator(cluster, program, DETERMINISTIC)
    for d in candidates[:1]:  # warm bytecode/caches once
        emulator.run(d, fast_forward=True)
    spent = {"full": 0.0, "fast_forward": 0.0}
    worst_rel = 0.0
    runs = 0
    for _ in range(reps):
        for d in candidates:
            t0 = time.perf_counter()
            full = emulator.run(d, fast_forward=False)
            spent["full"] += time.perf_counter() - t0
            t0 = time.perf_counter()
            fast = emulator.run(d, fast_forward=True)
            spent["fast_forward"] += time.perf_counter() - t0
            assert fast.fast_forwarded and not full.fast_forwarded
            worst_rel = max(worst_rel, _max_rel_diff(full, fast))
            runs += 1
    return {
        "runs": runs,
        "iterations_per_run": program.iterations,
        "full_ms_per_run": spent["full"] / runs * 1e3,
        "fast_forward_ms_per_run": spent["fast_forward"] / runs * 1e3,
        "speedup": spent["full"] / spent["fast_forward"],
        "max_rel_diff_vs_full": worst_rel,
    }


def _plan_runs(cluster, program, candidates, mode, reps=5):
    """Warm plan-served per-run cost plus the batched amortised cost,
    with a per-candidate equivalence check against full simulation."""
    emulator = ClusterEmulator(cluster, program, DETERMINISTIC)
    emulator.run(candidates[0], fast_forward=True)  # compile the plan
    worst_rel = 0.0
    for d in candidates:
        full = emulator.run(d, fast_forward=False)
        fast = emulator.run(d, fast_forward=True)
        assert fast.fast_forwarded
        worst_rel = max(worst_rel, _max_rel_diff(full, fast))
    t0 = time.perf_counter()
    for _ in range(reps):
        for d in candidates:
            emulator.run(d, fast_forward=True)
    per_run_ms = (
        (time.perf_counter() - t0) / (reps * len(candidates)) * 1e3
    )
    t0 = time.perf_counter()
    for _ in range(reps):
        batch = emulate_many(
            cluster, program, candidates,
            perturbation=DETERMINISTIC, run_cache=False,
        )
    batched_ms = (
        (time.perf_counter() - t0) / (reps * len(candidates)) * 1e3
    )
    assert all(r.fast_forwarded for r in batch)
    frozen = PR4_FAST_FORWARD_MS[mode]
    return {
        "candidates": len(candidates),
        "plan_ms_per_run": per_run_ms,
        "batched_ms_per_candidate": batched_ms,
        "pr4_fast_forward_ms": frozen,
        "speedup_vs_pr4": frozen / per_run_ms,
        "batched_speedup_vs_pr4": frozen / batched_ms,
        "max_rel_diff_vs_full": worst_rel,
    }


def _cached_emulate_throughput(cluster, program, candidates, reps=20):
    """Hit-path throughput of the content-keyed run cache."""
    cache = RunCache()
    for d in candidates:  # populate
        emulate(
            cluster, program, d, perturbation=DETERMINISTIC, run_cache=cache
        )
    t0 = time.perf_counter()
    for _ in range(reps):
        for d in candidates:
            emulate(
                cluster, program, d, perturbation=DETERMINISTIC, run_cache=cache
            )
    seconds = time.perf_counter() - t0
    lookups = reps * len(candidates)
    return {
        "hit_ms": seconds / lookups * 1e3,
        "hits_per_second": lookups / seconds,
        "lookups": lookups,
        "stats": cache.stats,
    }


def _engine_microbench(n=20000, rounds=3):
    """Per-event dispatch cost of the rewritten engine core."""

    def pingpong():
        def a():
            for i in range(n):
                yield Delay(1e-6)
                yield Send(1, "m", transfer=1e-6)
                yield Recv(1, "r")

        def b():
            for i in range(n):
                yield Recv(0, "m")
                yield Delay(1e-6)
                yield Send(0, "r", transfer=1e-6)

        engine = Engine()
        engine.add_process(a(), 0)
        engine.add_process(b(), 1)
        return engine

    def delays():
        def p():
            for i in range(n):
                yield Delay(1e-6)

        engine = Engine()
        for node in range(4):
            engine.add_process(p(), node)
        return engine

    out = {}
    for label, make in (("pingpong", pingpong), ("delays", delays)):
        times = []
        for _ in range(rounds):
            engine = make()
            t0 = time.perf_counter()
            engine.run()
            times.append(time.perf_counter() - t0)
        out[label] = {"ms": min(times) * 1e3, "loop_iterations": n}
    return out


def test_emulator_fast_path_speed(benchmark, save_result):
    cluster, program, candidates = _setup(prefetch=False)
    _, program_pf, candidates_pf = _setup(prefetch=True)

    sync_rows = benchmark.pedantic(
        _interleaved_runs,
        args=(cluster, program, candidates),
        rounds=1,
        iterations=1,
    )
    prefetch_rows = _interleaved_runs(cluster, program_pf, candidates_pf)
    plan_sync = _plan_runs(cluster, program, candidates, "sync")
    plan_prefetch = _plan_runs(cluster, program_pf, candidates_pf, "prefetch")
    cached = _cached_emulate_throughput(cluster, program, candidates)
    engine = _engine_microbench()

    payload = {
        "benchmark": "emulator_speed",
        "workload": (
            "fig9-style deterministic jacobi on HY1, paper scale "
            f"({program.iterations} iterations), spectrum candidates"
        ),
        "python": platform.python_version(),
        "sync": sync_rows,
        "prefetch": prefetch_rows,
        "plan_sync": plan_sync,
        "plan_prefetch": plan_prefetch,
        "plan_numba_active": emulation_numba_active(),
        "cached_emulate": cached,
        "engine_microbench": engine,
        "speedup": {
            "fast_forward_vs_full_sync": sync_rows["speedup"],
            "fast_forward_vs_full_prefetch": prefetch_rows["speedup"],
            "plan_vs_pr4_sync": plan_sync["speedup_vs_pr4"],
            "plan_vs_pr4_prefetch": plan_prefetch["speedup_vs_pr4"],
            "batched_vs_pr4_sync": plan_sync["batched_speedup_vs_pr4"],
            "batched_vs_pr4_prefetch": plan_prefetch[
                "batched_speedup_vs_pr4"
            ],
            "required": REQUIRED_SPEEDUP,
            "required_batched_vs_pr4": REQUIRED_BATCH_SPEEDUP,
        },
        "equivalence": {
            "max_rel_diff": max(
                sync_rows["max_rel_diff_vs_full"],
                prefetch_rows["max_rel_diff_vs_full"],
                plan_sync["max_rel_diff_vs_full"],
                plan_prefetch["max_rel_diff_vs_full"],
            ),
            "required_rtol": EQUIVALENCE_RTOL,
        },
    }
    JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    lines = [
        "Emulator fast-path speed (fig9-style deterministic jacobi on HY1, "
        f"{program.iterations} iterations, paper scale):"
    ]
    for label, rows in (("sync", sync_rows), ("prefetch", prefetch_rows)):
        lines.append(
            f"  {label:9s} full {rows['full_ms_per_run']:7.1f} ms/run -> "
            f"fast-forward {rows['fast_forward_ms_per_run']:6.1f} ms/run "
            f"({rows['speedup']:.1f}x, max rel diff "
            f"{rows['max_rel_diff_vs_full']:.1e})"
        )
    for label, rows in (("sync", plan_sync), ("prefetch", plan_prefetch)):
        lines.append(
            f"  plan {label:9s} {rows['plan_ms_per_run']:.3f} ms/run "
            f"({rows['speedup_vs_pr4']:.1f}x vs PR-4 "
            f"{rows['pr4_fast_forward_ms']:.2f} ms), batched "
            f"{rows['batched_ms_per_candidate']:.3f} ms/candidate "
            f"({rows['batched_speedup_vs_pr4']:.1f}x)"
        )
    lines.append(
        f"  run-cache hit: {cached['hit_ms']:.3f} ms "
        f"({cached['hits_per_second']:,.0f} hits/s)"
    )
    lines.append(
        f"  engine dispatch: pingpong {engine['pingpong']['ms']:.0f} ms, "
        f"delays {engine['delays']['ms']:.0f} ms per "
        f"{engine['pingpong']['loop_iterations']} loop iterations"
    )
    lines.append(
        f"  gate: fast-forward >= {REQUIRED_SPEEDUP:.0f}x required; "
        f"equivalence <= {EQUIVALENCE_RTOL:.0e} relative"
    )
    save_result("emulator_speed", "\n".join(lines))

    # Equivalence is part of the contract, not just speed.
    assert payload["equivalence"]["max_rel_diff"] <= EQUIVALENCE_RTOL
    # The hard acceptance gates, mirrored in CI.
    for label, rows in (("sync", sync_rows), ("prefetch", prefetch_rows)):
        assert rows["speedup"] >= REQUIRED_SPEEDUP, (
            f"{label} fast-forward speedup {rows['speedup']:.2f}x below "
            f"required {REQUIRED_SPEEDUP}x"
        )
    for label, rows in (("sync", plan_sync), ("prefetch", plan_prefetch)):
        assert rows["batched_speedup_vs_pr4"] >= REQUIRED_BATCH_SPEEDUP, (
            f"{label} batched emulation {rows['batched_speedup_vs_pr4']:.2f}x "
            f"below required {REQUIRED_BATCH_SPEEDUP}x vs the frozen PR-4 "
            "fast-forward figure"
        )


def test_cached_emulate_is_effectively_free(benchmark):
    """A run-cache hit must cost microseconds, not emulator time."""
    cluster, program, candidates = _setup(prefetch=False)
    cache = RunCache()
    d = candidates[0]
    emulate(cluster, program, d, perturbation=DETERMINISTIC, run_cache=cache)

    def hit():
        return emulate(
            cluster, program, d, perturbation=DETERMINISTIC, run_cache=cache
        )

    result = benchmark(hit)
    assert result.total_seconds > 0
    assert benchmark.stats.stats.mean * 1e3 < 5.0  # << one emulated run
