"""Bench F10: predicted-vs-actual curves for configurations DC and IO.

Paper claims under test:

* DC (CPU heterogeneity only): the spectrum collapses to Blk..Bal..Blk,
  Bal wins for every application, and MHETA tracks the whole curve;
* IO (I/O heterogeneity only): the spectrum collapses to Blk..I-C; MHETA
  tracks Jacobi/Lanczos/RNA well, mildly over-estimates just before I-C
  (OS read caching makes the remaining iterations cheaper than the
  instrumented one), and CG is the weak spot (~10% at the circles).
"""

import pytest

from repro.experiments import config_curves


@pytest.fixture(scope="module")
def dc_curves():
    return config_curves("DC", steps_per_leg=4)


@pytest.fixture(scope="module")
def io_curves():
    return config_curves("IO", steps_per_leg=4)


def test_fig10_dc(benchmark, save_result):
    curves = benchmark.pedantic(
        config_curves, args=("DC",), kwargs={"steps_per_leg": 4},
        rounds=1, iterations=1,
    )
    save_result("fig10_dc", curves.describe())
    for run in curves.runs:
        # DC has no memory pressure: Bal is the best distribution.
        assert run.best_actual.label == "Bal", run.app_name
        # Model agrees with reality about the winner.
        assert run.best_predicted.label == "Bal", run.app_name
        assert run.mean_error_percent < 8.0
    labels = [p.label for p in curves.runs[0].points]
    assert "I-C" not in labels  # the degenerate DC spectrum


def test_fig10_io(benchmark, save_result):
    curves = benchmark.pedantic(
        config_curves, args=("IO",), kwargs={"steps_per_leg": 4},
        rounds=1, iterations=1,
    )
    save_result("fig10_io", curves.describe())
    labels = [p.label for p in curves.runs[0].points]
    assert "Bal" not in labels  # homogeneous CPUs: Blk..I-C only
    jacobi = curves.run("jacobi")
    # Large spread: Blk is crippled by I/O, I-C is far better.
    assert jacobi.points[0].actual_seconds > 3 * jacobi.best_actual.actual_seconds
    # Non-CG applications are predicted tightly.
    for name in ("jacobi", "lanczos", "rna"):
        assert curves.run(name).mean_error_percent < 5.0, name
    # CG is the worst case but bounded (paper: difference only ~10%).
    assert curves.run("cg").max_error_percent < 25.0


def test_fig10_io_overestimate_before_ic(benchmark, io_curves, save_result):
    """The pre-I-C over-estimation effect: for the I/O-bound apps, the
    signed error just before I-C is positive (over-prediction), and it
    shrinks at I-C itself."""

    def analyse():
        rows = []
        for name in ("jacobi", "lanczos"):
            run = io_curves.run(name)
            # Last spectrum point that still has substantial I/O (time
            # well above the in-core minimum): the "right before I-C"
            # region of the paper's observation.
            floor = run.best_actual.actual_seconds
            io_bound = [
                p for p in run.points[:-1] if p.actual_seconds > 1.5 * floor
            ]
            peak = max(p.signed_error_percent for p in io_bound)
            blk = run.points[0].signed_error_percent
            at_ic = run.points[-1].signed_error_percent
            rows.append((name, blk, peak, at_ic))
        return rows

    rows = benchmark.pedantic(analyse, rounds=1, iterations=1)
    text = "\n".join(
        f"{name}: signed error at Blk {blk:+.2f}%, peak before I-C "
        f"{peak:+.2f}%, at I-C {at:+.2f}%"
        for name, blk, peak, at in rows
    )
    save_result("fig10_io_overestimate", text)
    for name, blk, peak, at in rows:
        assert peak > 0.0, name  # over-estimation while I/O-bound
        assert peak >= blk, name  # effect grows approaching I-C
        assert abs(at) < peak, name  # and collapses once in core
