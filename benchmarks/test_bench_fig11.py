"""Bench F11: predicted-vs-actual curves for configurations HY1 and HY2.

Paper claims under test:

* both hybrid configurations are predicted accurately for all four
  applications;
* on HY1, Jacobi's best distribution sits in the I-C/Bal..Bal region and
  beats Bal substantially (paper: 28%) — the case where a static guess
  fails;
* on HY1, Lanczos prefers the Bal end of the spectrum and its
  worst-to-best spread is about 3x.
"""

import pytest

from repro.experiments import config_curves


def test_fig11_hy1(benchmark, save_result):
    curves = benchmark.pedantic(
        config_curves, args=("HY1",), kwargs={"steps_per_leg": 4},
        rounds=1, iterations=1,
    )
    save_result("fig11_hy1", curves.describe())
    for run in curves.runs:
        assert run.mean_error_percent < 8.0, run.app_name

    jacobi = curves.run("jacobi")
    bal_time = next(
        p.actual_seconds for p in jacobi.points if p.label == "Bal"
    )
    best = jacobi.best_actual
    # The winner lies in the in-core-aware region (not Blk, not Bal)...
    assert best.label not in ("Blk", "Bal")
    # ...and beats Bal significantly (paper: 28%).
    improvement = (bal_time - best.actual_seconds) / bal_time
    assert improvement > 0.15

    lanczos = curves.run("lanczos")
    # Lanczos prefers the balanced end (paper: Bal is best).
    assert lanczos.best_actual.anchor in ("I-C/Bal", "Bal")
    # Spread about 3x (paper: "almost ... 3 times as slow").
    assert 2.0 < lanczos.spread < 6.0


def test_fig11_hy2(benchmark, save_result):
    curves = benchmark.pedantic(
        config_curves, args=("HY2",), kwargs={"steps_per_leg": 4},
        rounds=1, iterations=1,
    )
    save_result("fig11_hy2", curves.describe())
    for run in curves.runs:
        assert run.mean_error_percent < 8.0, run.app_name
        # The model circles the true winner, or a point within a few
        # percent of it (the paper's figures show occasional dashed
        # circles where they disagree).
        best_actual = run.best_actual.actual_seconds
        chosen_actual = next(
            p.actual_seconds
            for p in run.points
            if p.label == run.best_predicted.label
        )
        assert chosen_actual <= best_actual * 1.15, run.app_name
