"""Bench S2 (extension): the Section-6 adaptive runtime, end to end.

The paper's closing claim is that MHETA + search + on-the-fly
redistribution "can provide an infrastructure for efficient support of
out-of-core parallel programs on heterogeneous clusters".  This bench
runs that whole protocol at paper scale on DC and HY1 and checks it
actually pays: instrumented iteration + search + redistribution +
remaining iterations beats running the whole job statically on Blk.

The dynamic-cluster payoff bench extends the claim to *non-stationary*
clusters: on a homogeneous cluster whose nodes drift mid-run (where a
one-shot adaptive start has nothing to win), the multi-round runtime
must detect the drift, re-search, and beat riding the job out statically
— with every overhead (instrumented iterations, redistribution) charged.
It writes the machine-readable scoreboard ``BENCH_adaptive.json``.
"""

import json
import os
from pathlib import Path

from repro.cluster import (
    baseline_cluster,
    config_dc,
    config_hy1,
    dynamics_scenario,
)
from repro.runtime import AdaptiveRuntime
from repro.apps import JacobiApp, application_by_name

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_adaptive.json"

#: CI runs the payoff bench reduced via ADAPTIVE_BENCH_SCALE; the
#: committed scoreboard records the full paper-scale run.
DYN_SCALE = float(os.environ.get("ADAPTIVE_BENCH_SCALE", "1.0"))


def _run(cluster):
    program = JacobiApp.paper().structure
    return AdaptiveRuntime(cluster, program).run()


def test_adaptive_runtime_dc(benchmark, save_result):
    report = benchmark.pedantic(_run, args=(config_dc(),), rounds=1, iterations=1)
    save_result("adaptive_dc", report.describe())
    assert report.switched
    assert report.speedup_vs_static > 1.5
    # The one-time costs stay modest against the job: instrumentation
    # (a forced-out-of-core iteration) + search + redistribution under
    # 20% of the adaptive total, and tiny against what switching saved.
    overhead = (
        report.instrumented_seconds
        + report.search_wall_seconds
        + report.redistribution_seconds
    )
    assert overhead < 0.20 * report.adaptive_seconds
    assert overhead < 0.10 * (report.static_seconds - report.adaptive_seconds)
    # MHETA's prediction of the remaining iterations is honest.
    assert abs(
        report.remaining_seconds - report.predicted_remaining_seconds
    ) / report.remaining_seconds < 0.05


def test_adaptive_runtime_hy1(benchmark, save_result):
    report = benchmark.pedantic(_run, args=(config_hy1(),), rounds=1, iterations=1)
    save_result("adaptive_hy1", report.describe())
    assert report.switched
    assert report.speedup_vs_static > 1.2


def _run_dynamic(scenario):
    cluster = baseline_cluster()
    program = application_by_name("jacobi", DYN_SCALE).structure
    spec = dynamics_scenario(scenario, cluster.n_nodes)
    runtime = AdaptiveRuntime(
        cluster, program, dynamics=spec,
        check_interval=10, drift_threshold=0.25,
    )
    return runtime.run()


def test_adaptive_payoff_under_drift(benchmark, save_result):
    """The hard gate: on a drifting cluster the multi-round adaptive
    runtime beats static execution with all overheads charged."""
    report = benchmark.pedantic(
        _run_dynamic, args=("drift",), rounds=1, iterations=1
    )

    # The cluster starts homogeneous: round 0 has nothing to win, so any
    # payoff must come from *re*-detecting the mid-run drift.
    assert report.n_rounds >= 2
    assert any(r.trigger == "drift" for r in report.rounds)
    assert report.switched
    # The payoff gate, redistribution and instrumentation included.
    assert report.adaptive_seconds < report.static_seconds
    assert report.speedup_vs_static > 1.05

    # Control arm: under the stationary scenario the multi-round
    # machinery must never fire (no drift -> exactly one round).
    control = _run_dynamic("stationary")
    assert control.n_rounds == 1
    assert control.rounds[0].trigger == "start"

    rounds = [
        {
            "index": r.index,
            "trigger": r.trigger,
            "at_iteration": r.at_iteration,
            "drift": round(r.drift, 4),
            "switched": r.switched,
            "redistribution_seconds": r.redistribution_seconds,
            "segment_seconds": r.segment_seconds,
            "iterations": r.iterations,
        }
        for r in report.rounds
    ]
    payload = {
        "scenario": "drift",
        "cluster": "baseline (homogeneous)",
        "app": "jacobi",
        "scale": DYN_SCALE,
        "adaptive_seconds": report.adaptive_seconds,
        "static_seconds": report.static_seconds,
        "speedup_vs_static": report.speedup_vs_static,
        "instrumented_seconds": report.instrumented_seconds,
        "redistribution_seconds": report.redistribution_seconds,
        "n_rounds": report.n_rounds,
        "rounds": rounds,
        "stationary_control_rounds": control.n_rounds,
    }
    JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    save_result("adaptive_drift", report.describe())
