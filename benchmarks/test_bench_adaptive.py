"""Bench S2 (extension): the Section-6 adaptive runtime, end to end.

The paper's closing claim is that MHETA + search + on-the-fly
redistribution "can provide an infrastructure for efficient support of
out-of-core parallel programs on heterogeneous clusters".  This bench
runs that whole protocol at paper scale on DC and HY1 and checks it
actually pays: instrumented iteration + search + redistribution +
remaining iterations beats running the whole job statically on Blk.
"""

from repro.cluster import config_dc, config_hy1
from repro.runtime import AdaptiveRuntime
from repro.apps import JacobiApp


def _run(cluster):
    program = JacobiApp.paper().structure
    return AdaptiveRuntime(cluster, program).run()


def test_adaptive_runtime_dc(benchmark, save_result):
    report = benchmark.pedantic(_run, args=(config_dc(),), rounds=1, iterations=1)
    save_result("adaptive_dc", report.describe())
    assert report.switched
    assert report.speedup_vs_static > 1.5
    # The one-time costs stay modest against the job: instrumentation
    # (a forced-out-of-core iteration) + search + redistribution under
    # 20% of the adaptive total, and tiny against what switching saved.
    overhead = (
        report.instrumented_seconds
        + report.search_wall_seconds
        + report.redistribution_seconds
    )
    assert overhead < 0.20 * report.adaptive_seconds
    assert overhead < 0.10 * (report.static_seconds - report.adaptive_seconds)
    # MHETA's prediction of the remaining iterations is honest.
    assert abs(
        report.remaining_seconds - report.predicted_remaining_seconds
    ) / report.remaining_seconds < 0.05


def test_adaptive_runtime_hy1(benchmark, save_result):
    report = benchmark.pedantic(_run, args=(config_hy1(),), rounds=1, iterations=1)
    save_result("adaptive_hy1", report.describe())
    assert report.switched
    assert report.speedup_vs_static > 1.2
