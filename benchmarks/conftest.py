"""Shared benchmark plumbing.

Every benchmark regenerates one paper artefact (table or figure) at full
scale, asserts the paper's qualitative claims about it, and writes the
rendered text to ``benchmarks/results/`` — the files EXPERIMENTS.md's
numbers are drawn from.

The experiment harness itself is deterministic, so each artefact is
benchmarked with a single round (``benchmark.pedantic(..., rounds=1)``);
only the model-evaluation microbenchmark uses normal repeated timing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write an artefact's rendered text to benchmarks/results/."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")

    return _save
