"""Bench F9: the four Figure-9 accuracy panels, at paper scale.

Paper claims under test:

* all four applications without prefetching, seventeen emulated
  architectures: ~98% average accuracy (average percent difference a few
  percent, maxima well below the divergence that would make the model
  useless);
* Jacobi with prefetching over twelve architectures: also ~98%;
* RNA is among the best-predicted applications, CG the worst;
* predicting the instrumented (Blk) distribution itself errs by ~1%
  (instrumentation perturbation).
"""

import pytest

from repro.cluster import config_io
from repro.distribution import block
from repro.experiments import build_model, fig9_accuracy
from repro.sim import ClusterEmulator
from repro.apps import JacobiApp


@pytest.fixture(scope="module")
def panels():
    return {}


def _run_panel(panel: str):
    return fig9_accuracy(panel=panel, steps_per_leg=3)


def test_fig9_all_apps(benchmark, save_result, panels):
    bands = benchmark.pedantic(_run_panel, args=("all",), rounds=1, iterations=1)
    panels["all"] = bands
    save_result("fig9_all_apps", bands.describe())
    assert len(bands.runs) == 17 * 4
    # Headline: ~98% accurate on average (we accept >= 93%).
    assert bands.overall_average_percent < 7.0
    # Errors exist (the emulator is not the model) but never diverge.
    assert bands.overall_average_percent > 0.1
    assert max(bands.maximum) < 40.0
    # Bands are ordered at every x position.
    for lo, avg, hi in zip(bands.minimum, bands.average, bands.maximum):
        assert lo <= avg <= hi


def test_fig9_jacobi_prefetch(benchmark, save_result):
    bands = benchmark.pedantic(
        _run_panel, args=("jacobi-prefetch",), rounds=1, iterations=1
    )
    save_result("fig9_jacobi_prefetch", bands.describe())
    assert len(bands.runs) == 12
    assert bands.overall_average_percent < 7.0


def test_fig9_rna(benchmark, save_result, panels):
    bands = benchmark.pedantic(_run_panel, args=("rna",), rounds=1, iterations=1)
    panels["rna"] = bands
    save_result("fig9_rna", bands.describe())
    assert bands.overall_average_percent < 5.0


def test_fig9_cg(benchmark, save_result, panels):
    bands = benchmark.pedantic(_run_panel, args=("cg",), rounds=1, iterations=1)
    panels["cg"] = bands
    save_result("fig9_cg", bands.describe())
    # CG is the worst case but still useful.
    assert bands.overall_average_percent < 12.0
    if "rna" in panels:
        # Best case (RNA) beats worst case (CG), as in the paper.
        assert (
            panels["rna"].overall_average_percent
            < bands.overall_average_percent
        )


def test_blk_self_prediction(benchmark, save_result):
    """N3: predicting the instrumented distribution errs by ~1%."""
    cluster = config_io()
    program = JacobiApp.paper().structure

    def run():
        model = build_model(cluster, program)
        d0 = block(cluster, program.n_rows)
        actual = ClusterEmulator(cluster, program).run(d0).total_seconds
        predicted = model.predict(d0)
        return actual, predicted

    actual, predicted = benchmark.pedantic(run, rounds=1, iterations=1)
    error = abs(predicted - actual) / min(predicted, actual) * 100
    save_result(
        "blk_self_prediction",
        f"Blk self-prediction (jacobi on IO): actual={actual:.2f}s "
        f"predicted={predicted:.2f}s error={error:.2f}% "
        f"(paper: up to ~1%)",
    )
    assert error < 2.5
