"""Bench A2 (extension): the dedicated-environment assumption, tested.

Paper Section 3.2 assumes a dedicated cluster and defers the
multiprogrammed case.  This bench quantifies the assumption: MHETA's
accuracy must degrade monotonically as background load grows, and the
dedicated case must be the most accurate — the measured justification
for the paper's scoping decision.
"""

from repro.experiments import dedicated_assumption_study


def test_dedicated_assumption(benchmark, save_result):
    result = benchmark.pedantic(
        dedicated_assumption_study, rounds=1, iterations=1
    )
    save_result("robustness", result.describe())
    loads = sorted(result.mean_error)
    errors = [result.mean_error[load] for load in loads]
    # Dedicated is the best case.
    assert errors[0] == min(errors)
    # Heavy competition at least triples the error.
    assert errors[-1] > 3 * errors[0]
    # Degradation is monotone in load (allowing tiny non-monotonic noise).
    for a, b in zip(errors, errors[1:]):
        assert b > a * 0.8
