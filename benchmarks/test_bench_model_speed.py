"""Bench N1: MHETA evaluation cost (paper: ~5.4 ms per distribution).

Two kernels share the model: the ``scalar`` reference (the seed
implementation, per-tile Python loops) and the vectorised ``numpy``
kernel (batched stage tables, max-plus section matrices, persistent
``(node, rows)`` table cache).  This benchmark measures both —
*interleaved*, alternating kernels within each repetition so host noise
hits them equally — and writes the machine-readable scoreboard
``BENCH_model_speed.json`` at the repo root:

* ``evaluations_per_second`` for each kernel/cache configuration,
  through the serial call and through ``predict(batch=True)``,
* wall-time of a batched-GBS search per kernel,
* the headline speedups (numpy, cached — the default configuration —
  over the scalar seed behaviour); the *search-level* speedup is the
  hard acceptance gate, asserted >= 3x.
"""

from __future__ import annotations

import itertools
import json
import platform
import time
from pathlib import Path

from repro.cluster import config_hy1
from repro.core.model import MhetaModel
from repro.distribution import block, spectrum
from repro.experiments import build_model, model_evaluation_timing
from repro.instrument.collect import collect_inputs
from repro.search import GeneralizedBinarySearch
from repro.apps import JacobiApp

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_model_speed.json"

#: Acceptance floor: the default numpy kernel must carry a
#: ``predict``-driven search at least this much faster than the
#: scalar seed behaviour (uncached reference path).
REQUIRED_SPEEDUP = 3.0

#: Hard gate for the compiled-plan kernel: batched plan throughput must
#: beat the batched scalar seed by at least this factor (held in both
#: numba and pure-numpy fallback modes — CI runs both legs).
REQUIRED_PLAN_SPEEDUP = 8.0

#: The batched numpy-cached figure this optimisation round started
#: from (BENCH_model_speed.json before the plan kernel landed); the
#: plan's 10x target is measured against it.
REFERENCE_NUMPY_CACHED_MS = 0.05790134706402052

#: kernel/cache configurations measured.  ``scalar-uncached`` is the
#: seed behaviour; ``numpy-cached`` is the previous default;
#: ``plan-cached`` is the compiled evaluation plan.
CONFIGS = {
    "scalar-uncached": dict(kernel="scalar", table_cache=0),
    "scalar-cached": dict(kernel="scalar"),
    "numpy-uncached": dict(kernel="numpy", table_cache=0),
    "numpy-cached": dict(kernel="numpy"),
    "plan-cached": dict(kernel="plan"),
}


def _setup():
    from repro.core.plan import reset_plan_cache

    reset_plan_cache()  # clean compile/hit counters for the JSON report
    cluster = config_hy1()
    program = JacobiApp.paper().structure
    inputs = collect_inputs(cluster, program, block(cluster, program.n_rows))
    models = {
        label: MhetaModel(program, cluster, inputs, **kwargs)
        for label, kwargs in CONFIGS.items()
    }
    candidates = [
        p.distribution for p in spectrum(cluster, program, steps_per_leg=4)
    ]
    return cluster, program, models, candidates


def _interleaved_throughput(models, candidates, reps=30):
    """Per-config evaluations/second, alternating configs each rep so a
    noisy host perturbs every kernel equally."""
    for model in models.values():  # warm caches and bytecode
        for d in candidates:
            model.predict(d)
    spent = {label: 0.0 for label in models}
    for _ in range(reps):
        for label, model in models.items():
            t0 = time.perf_counter()
            for d in candidates:
                model.predict(d)
            spent[label] += time.perf_counter() - t0
    evaluations = reps * len(candidates)
    return {
        label: {
            "evaluations_per_second": evaluations / seconds,
            "mean_ms": seconds / evaluations * 1e3,
            "evaluations": evaluations,
        }
        for label, seconds in spent.items()
    }


def _batched_throughput(models, candidates, reps=30, burst=3):
    """Per-config evaluations/second through ``predict(batch=True)``
    (the scalar configs loop internally — the honest baseline for the
    vectorized pass), interleaved like the serial loop.

    Each round times a short *burst* of consecutive calls per config:
    a single interleaved call mostly measures the cache refill forced
    by the other four configs, which for a kernel an order of
    magnitude faster than the eviction interval drowns the kernel
    itself.  Search loops call the kernel back to back, so the burst
    is the representative shape; interleaving between bursts still
    spreads host noise across configs."""
    for model in models.values():  # warm caches and bytecode
        model.predict(candidates, batch=True)
    spent = {label: 0.0 for label in models}
    for _ in range(reps):
        for label, model in models.items():
            t0 = time.perf_counter()
            for _ in range(burst):
                model.predict(candidates, batch=True)
            spent[label] += time.perf_counter() - t0
    evaluations = reps * burst * len(candidates)
    return {
        label: {
            "evaluations_per_second": evaluations / seconds,
            "mean_ms": seconds / evaluations * 1e3,
            "evaluations": evaluations,
            "batch_size": len(candidates),
        }
        for label, seconds in spent.items()
    }


def _telemetry_overhead(model, candidates, reps=60):
    """Relative cost of passing a *disabled* recorder versus no
    telemetry at all, on the default model's serial hot path.

    Interleaved A/B like the kernel loops; the issue's acceptance gate
    is <= 5% overhead, i.e. a disabled recorder must be near-free.
    """
    from repro.obs import Recorder

    disabled = Recorder(enabled=False)
    for d in candidates:  # warm
        model.predict(d)
        model.predict(d, telemetry=disabled)
    bare = 0.0
    carried = 0.0
    for _ in range(reps):
        t0 = time.perf_counter()
        for d in candidates:
            model.predict(d)
        bare += time.perf_counter() - t0
        t0 = time.perf_counter()
        for d in candidates:
            model.predict(d, telemetry=disabled)
        carried += time.perf_counter() - t0
    pct = (carried / bare - 1.0) * 100.0
    return {
        "bare_seconds": bare,
        "disabled_recorder_seconds": carried,
        # The reported figure is clamped at 0 — a negative overhead is
        # host noise, not a real speedup, and recording it as-is lets
        # noise mask a later regression.  The raw value stays alongside
        # it and is what the gate asserts on.
        "overhead_pct": max(pct, 0.0),
        "overhead_pct_raw": pct,
        "evaluations_per_side": reps * len(candidates),
    }


def _search_walltime(cluster, program, models, reps=5):
    """Wall-time of a full GBS search (the paper's Section 5 driver)
    through each kernel, interleaved like the throughput loop."""
    out = {}
    spent = {label: 0.0 for label in models}
    results = {}
    for label, model in models.items():  # warm table caches on the grid
        GeneralizedBinarySearch(model, cluster).search(budget=300)
    for _ in range(reps):
        for label, model in models.items():
            search = GeneralizedBinarySearch(model, cluster)
            t0 = time.perf_counter()
            result = search.search(budget=300)
            spent[label] += time.perf_counter() - t0
            results[label] = result
    for label, seconds in spent.items():
        result = results[label]
        out[label] = {
            "mean_seconds": seconds / reps,
            "evaluations": result.evaluations,
            "predicted_seconds": result.predicted_seconds,
        }
    # Both kernels must agree on what they searched for.
    preds = [r["predicted_seconds"] for r in out.values()]
    assert max(preds) - min(preds) <= 1e-9 * max(preds)
    return out


def test_kernel_throughput_and_search(benchmark, save_result):
    cluster, program, models, candidates = _setup()

    throughput = benchmark.pedantic(
        _interleaved_throughput, args=(models, candidates),
        rounds=1, iterations=1,
    )
    batched = _batched_throughput(models, candidates)
    search = _search_walltime(cluster, program, models)
    telemetry = _telemetry_overhead(models["numpy-cached"], candidates)

    from repro.core.plan import numba_active, plan_cache_stats

    baseline = throughput["scalar-uncached"]["evaluations_per_second"]
    default = throughput["numpy-cached"]["evaluations_per_second"]
    eval_speedup = default / baseline
    batch_speedup = (
        batched["numpy-cached"]["evaluations_per_second"] / baseline
    )
    search_speedup = (
        search["scalar-uncached"]["mean_seconds"]
        / search["numpy-cached"]["mean_seconds"]
    )
    plan_vs_scalar = (
        batched["plan-cached"]["evaluations_per_second"]
        / batched["scalar-uncached"]["evaluations_per_second"]
    )
    plan_vs_reference = (
        REFERENCE_NUMPY_CACHED_MS / batched["plan-cached"]["mean_ms"]
    )

    payload = {
        "benchmark": "model_speed",
        "workload": "jacobi on HY1, spectrum candidates + batched GBS search",
        "paper_ms_per_evaluation": 5.4,
        "python": platform.python_version(),
        "throughput": throughput,
        "batched_throughput": batched,
        "search": search,
        "speedup": {
            "evaluations_numpy_cached_vs_scalar_uncached": eval_speedup,
            "batched_numpy_cached_vs_scalar_uncached": batch_speedup,
            "search_numpy_cached_vs_scalar_uncached": search_speedup,
            "required": REQUIRED_SPEEDUP,
            "batched_plan_vs_scalar_uncached": plan_vs_scalar,
            "batched_plan_vs_reference_numpy_cached": plan_vs_reference,
            "reference_numpy_cached_ms": REFERENCE_NUMPY_CACHED_MS,
            "plan_required_vs_scalar": REQUIRED_PLAN_SPEEDUP,
        },
        "telemetry_overhead": telemetry,
        "table_cache_stats": models["numpy-cached"].table_cache_stats,
        "plan_cache_stats": plan_cache_stats(),
        "plan_numba_active": numba_active(),
    }
    JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    lines = [
        "MHETA prediction-kernel speed (jacobi on HY1; paper reports "
        "~5.4 ms/eval on 2005 hardware):"
    ]
    for label, row in throughput.items():
        brow = batched[label]
        lines.append(
            f"  {label:16s} {row['evaluations_per_second']:8.0f} evals/s "
            f"({row['mean_ms']:.3f} ms) | batched "
            f"{brow['evaluations_per_second']:8.0f} evals/s "
            f"({brow['mean_ms']:.3f} ms)"
        )
    lines.append(
        f"  GBS search: scalar {search['scalar-uncached']['mean_seconds']*1e3:.1f} ms "
        f"-> numpy {search['numpy-cached']['mean_seconds']*1e3:.1f} ms"
    )
    lines.append(
        f"  speedup: {eval_speedup:.2f}x evaluations, "
        f"{batch_speedup:.2f}x batched, {search_speedup:.2f}x search "
        f"(search required >= {REQUIRED_SPEEDUP:.0f}x)"
    )
    lines.append(
        f"  plan kernel (numba {'on' if numba_active() else 'off'}): "
        f"{plan_vs_scalar:.2f}x vs batched scalar seed "
        f"(required >= {REQUIRED_PLAN_SPEEDUP:.0f}x), "
        f"{plan_vs_reference:.2f}x vs the pre-plan numpy-cached figure "
        f"({REFERENCE_NUMPY_CACHED_MS:.4f} ms/eval; target 10x)"
    )
    lines.append(
        f"  disabled-telemetry overhead: {telemetry['overhead_pct']:.2f}% "
        f"(raw {telemetry['overhead_pct_raw']:.2f}%, required <= 5%)"
    )
    save_result("model_speed", "\n".join(lines))

    # Usable on the fly (the paper's claim) for every configuration...
    for row in throughput.values():
        assert row["mean_ms"] < 10.0
    # ...and the batched default must beat the seed by the issue's bar on
    # the end-to-end workload it exists for: the search itself.
    assert search_speedup >= REQUIRED_SPEEDUP, (
        f"batched search speedup {search_speedup:.2f}x below required "
        f"{REQUIRED_SPEEDUP}x (evals {eval_speedup:.2f}x, "
        f"batched {batch_speedup:.2f}x)"
    )
    # The compiled plan must hold its floor in whichever mode this run
    # is in (numba leg or pure-numpy fallback leg).
    assert plan_vs_scalar >= REQUIRED_PLAN_SPEEDUP, (
        f"batched plan speedup {plan_vs_scalar:.2f}x vs the scalar seed "
        f"is below the {REQUIRED_PLAN_SPEEDUP}x hard gate "
        f"(numba_active={numba_active()})"
    )
    # A disabled recorder must be near-free on the hot path; the gate
    # uses the *unclamped* value so negative noise cannot hide drift.
    assert telemetry["overhead_pct_raw"] <= 5.0, (
        f"disabled-telemetry overhead {telemetry['overhead_pct_raw']:.2f}% "
        "exceeds the 5% budget"
    )


def test_single_evaluation_speed(benchmark):
    """The default model keeps single evaluations in single-digit ms."""
    cluster = config_hy1()
    program = JacobiApp.paper().structure
    model = build_model(cluster, program)
    candidates = itertools.cycle(
        [p.distribution for p in spectrum(cluster, program, steps_per_leg=4)]
    )

    def evaluate():
        return model.predict(next(candidates))

    result = benchmark(evaluate)
    assert result > 0
    assert benchmark.stats.stats.mean * 1e3 < 10.0


def test_timing_harness(benchmark, save_result):
    timing = benchmark.pedantic(
        model_evaluation_timing, rounds=1, iterations=1
    )
    save_result("model_speed_harness", timing.describe())
    assert timing.usable_on_the_fly
