"""Bench N1: MHETA evaluation cost (paper: ~5.4 ms per distribution).

This is the one genuine microbenchmark: ``predict_seconds`` is timed
with pytest-benchmark's repeated rounds.  The paper's point is that the
model is cheap enough to drive an on-the-fly search; we assert the mean
stays in single-digit milliseconds (our Python implementation on modern
hardware is in fact well under one).
"""

import itertools

from repro.cluster import config_hy1
from repro.distribution import spectrum
from repro.experiments import build_model, model_evaluation_timing
from repro.apps import JacobiApp


def test_single_evaluation_speed(benchmark, save_result):
    cluster = config_hy1()
    program = JacobiApp.paper().structure
    model = build_model(cluster, program)
    candidates = itertools.cycle(
        [p.distribution for p in spectrum(cluster, program, steps_per_leg=4)]
    )

    def evaluate():
        return model.predict_seconds(next(candidates))

    result = benchmark(evaluate)
    assert result > 0
    mean_ms = benchmark.stats.stats.mean * 1e3
    save_result(
        "model_speed",
        f"MHETA evaluation (jacobi on HY1): mean {mean_ms:.3f} ms per "
        f"distribution (paper reports ~5.4 ms on 2005 hardware)",
    )
    # Usable on the fly: thousands of evaluations per second.
    assert mean_ms < 10.0


def test_timing_harness(benchmark, save_result):
    timing = benchmark.pedantic(
        model_evaluation_timing, rounds=1, iterations=1
    )
    save_result("model_speed_harness", timing.describe())
    assert timing.usable_on_the_fly
