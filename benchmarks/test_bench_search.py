"""Bench S1: MHETA-driven distribution search (companion paper [26]).

Not a table/figure of the MHETA paper itself, but the use case its
abstract promises ("an effective tool when searching for the most
effective distribution"): each search algorithm runs against MHETA on
Jacobi/HY1, and the winners are verified on the emulator.
"""

from repro.cluster import config_hy1
from repro.distribution import block
from repro.experiments import build_model
from repro.search import (
    GeneralizedBinarySearch,
    GeneticSearch,
    RandomSearch,
    SimulatedAnnealingSearch,
)
from repro.sim import ClusterEmulator
from repro.apps import JacobiApp
from repro.util.tables import render_table


def test_search_comparison(benchmark, save_result):
    cluster = config_hy1()
    program = JacobiApp.paper().structure
    model = build_model(cluster, program)
    emulator = ClusterEmulator(cluster, program)
    blk_actual = emulator.run(block(cluster, program.n_rows)).total_seconds

    def run_all():
        rows = []
        for search in (
            GeneralizedBinarySearch(model, cluster),
            GeneticSearch(model),
            SimulatedAnnealingSearch(model),
            RandomSearch(model),
        ):
            result = search.search(budget=150)
            verified = emulator.run(result.best).total_seconds
            rows.append(
                [
                    result.algorithm,
                    result.evaluations,
                    result.predicted_seconds,
                    verified,
                ]
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = render_table(
        ["algorithm", "evals", "predicted (s)", "verified (s)"],
        rows,
        float_fmt=".2f",
        title=f"Search on jacobi/HY1 (Blk actually runs in {blk_actual:.2f}s)",
    )
    save_result("search_comparison", table)

    by_name = {r[0]: r for r in rows}
    # GBS finds a distribution that genuinely beats Blk on the emulator.
    assert by_name["gbs"][3] < blk_actual
    # The informed search is no worse than random at equal budget.
    assert by_name["gbs"][3] <= by_name["random"][3] * 1.05
    # Predictions for the winners are honest (verified close to predicted).
    for name, _, predicted, verified in rows:
        assert abs(predicted - verified) / verified < 0.15, name
