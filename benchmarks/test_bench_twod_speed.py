"""Bench N2: 2-D prediction-kernel speed — and what that speed buys.

The paper declined 2-D distributions because "the search space increases
greatly"; the batched/plan 2-D kernel exists to make that search space
affordable.  This benchmark measures the three kernels — the ``scalar``
per-rank reference loop, the vectorized ``numpy`` kernel, and the
compiled ``plan`` kernel — *interleaved* so host noise hits them
equally, and writes the machine-readable scoreboard
``BENCH_twod_speed.json`` at the repo root:

* ``evaluations_per_second`` per kernel, serial and through
  ``predict(batch=True)``,
* the golden-equivalence figure (worst relative disagreement of the
  batched kernels against the scalar reference; must be <= 1e-12),
* the headline batched speedups — the hard CI gate asserts the
  batched/plan kernel beats the scalar loop by >= 5x in whichever
  numba mode this run is in (the recorded target is 10x),
* a cluster configuration where the best genuinely-2-D layout beats
  the best 1-D strip spectrum — the payoff the kernel speed pays for.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.cluster import baseline_cluster, config_dc
from repro.distribution import largest_remainder_round
from repro.instrument.collect import MeasurementConfig
from repro.sim import PerturbationConfig
from repro.twod import (
    GenBlock2D,
    Jacobi2DSpec,
    TwoDGbs,
    TwoDModel,
    block2d,
    build_2d_model,
    factor_pairs,
    is_degenerate,
)

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_twod_speed.json"

#: Hard CI gate: the batched plan kernel must beat the batched scalar
#: reference loop by at least this factor, numba or not.
REQUIRED_BATCHED_SPEEDUP = 5.0

#: The headline target the scoreboard records against.
TARGET_BATCHED_SPEEDUP = 10.0

#: Golden equivalence bar for the batched kernels vs the scalar loop.
GOLDEN_REL_TOL = 1e-12

CONFIGS = ("scalar", "numpy", "plan")


def _setup():
    from repro.core.plan import reset_plan_cache

    reset_plan_cache()  # clean compile/hit counters for the JSON report
    cluster = config_dc()
    spec = Jacobi2DSpec(n_rows=1024, n_cols=1024, iterations=50)
    d0 = block2d(spec.n_rows, spec.n_cols, (2, 4))
    base = build_2d_model(
        cluster,
        spec,
        d0,
        perturbation=PerturbationConfig.none(),
        measurement=MeasurementConfig.perfect(),
    )
    models = {
        kernel: TwoDModel(cluster, spec, base.inputs, kernel=kernel)
        for kernel in CONFIGS
    }
    rng = np.random.RandomState(0)
    candidates = []
    for shape in factor_pairs(cluster.n_nodes):
        R, C = shape
        candidates.append(block2d(spec.n_rows, spec.n_cols, shape))
        for _ in range(5):
            candidates.append(
                GenBlock2D(
                    largest_remainder_round(
                        rng.uniform(0.5, 2.0, size=R), spec.n_rows, minimum=1
                    ),
                    largest_remainder_round(
                        rng.uniform(0.5, 2.0, size=C), spec.n_cols, minimum=1
                    ),
                )
            )
    return cluster, spec, models, candidates


def _interleaved_throughput(models, candidates, reps=10):
    """Per-kernel evaluations/second through the serial call,
    alternating kernels each rep so host noise spreads evenly."""
    for model in models.values():  # warm plans, tables, bytecode
        for d in candidates:
            model.predict(d)
    spent = {label: 0.0 for label in models}
    for _ in range(reps):
        for label, model in models.items():
            t0 = time.perf_counter()
            for d in candidates:
                model.predict(d)
            spent[label] += time.perf_counter() - t0
    evaluations = reps * len(candidates)
    return {
        label: {
            "evaluations_per_second": evaluations / seconds,
            "mean_ms": seconds / evaluations * 1e3,
            "evaluations": evaluations,
        }
        for label, seconds in spent.items()
    }


def _batched_throughput(models, candidates, reps=10, burst=3):
    """Per-kernel evaluations/second through ``predict(batch=True)``
    (the scalar kernel loops internally — the honest baseline), in
    short bursts per kernel as a search loop would issue them."""
    for model in models.values():
        model.predict(candidates, batch=True)
    spent = {label: 0.0 for label in models}
    for _ in range(reps):
        for label, model in models.items():
            t0 = time.perf_counter()
            for _ in range(burst):
                model.predict(candidates, batch=True)
            spent[label] += time.perf_counter() - t0
    evaluations = reps * burst * len(candidates)
    return {
        label: {
            "evaluations_per_second": evaluations / seconds,
            "mean_ms": seconds / evaluations * 1e3,
            "evaluations": evaluations,
            "batch_size": len(candidates),
        }
        for label, seconds in spent.items()
    }


def _golden_equivalence(models, candidates):
    """Worst relative disagreement of each batched kernel against the
    scalar reference, over the full candidate set."""
    want = np.array([models["scalar"].predict(d) for d in candidates])
    out = {}
    for label in ("numpy", "plan"):
        got = np.asarray(models[label].predict(candidates, batch=True))
        out[label] = float(np.max(np.abs(got - want) / np.abs(want)))
    return out


def _twod_beats_one_d():
    """A cluster configuration where the best genuinely-2-D layout beats
    the best 1-D strip spectrum: a homogeneous cluster running a
    communication-heavy square stencil (square-ish tiles trade the
    strips' long halo edges for two short ones)."""
    base = baseline_cluster()
    from repro.util.units import mib

    cluster = base.with_nodes(
        [
            n.with_(cpu_power=1.0, memory_bytes=mib(256))
            for n in base.nodes
        ],
        name="homog2d",
    )
    spec = Jacobi2DSpec(
        n_rows=2048, n_cols=2048, iterations=60, work_per_element=5e-9
    )
    d0 = block2d(spec.n_rows, spec.n_cols, (2, 4))
    model = build_2d_model(
        cluster,
        spec,
        d0,
        perturbation=PerturbationConfig.none(),
        measurement=MeasurementConfig.perfect(),
        kernel="plan",
    )
    result = TwoDGbs(model).search(budget=400)
    strips = min(
        v for s, v in result.per_shape.items() if is_degenerate(s)
    )
    genuine = min(
        v for s, v in result.per_shape.items() if not is_degenerate(s)
    )
    return {
        "cluster": cluster.name,
        "workload": "2048x2048 Jacobi, 60 iterations, 5 ns/element",
        "best_one_d_strip_seconds": strips,
        "best_two_d_seconds": genuine,
        "best_shape": list(result.best.grid_shape),
        "evaluations": result.evaluations,
        "per_shape": {
            f"{s[0]}x{s[1]}": v for s, v in sorted(result.per_shape.items())
        },
        "two_d_wins": genuine < strips,
    }


def test_twod_kernel_throughput(benchmark, save_result):
    cluster, spec, models, candidates = _setup()

    throughput = benchmark.pedantic(
        _interleaved_throughput, args=(models, candidates),
        rounds=1, iterations=1,
    )
    batched = _batched_throughput(models, candidates)
    golden = _golden_equivalence(models, candidates)
    payoff = _twod_beats_one_d()

    from repro.core.plan import numba_active, plan_cache_stats

    scalar = batched["scalar"]["evaluations_per_second"]
    numpy_speedup = batched["numpy"]["evaluations_per_second"] / scalar
    plan_speedup = batched["plan"]["evaluations_per_second"] / scalar
    serial_plan_speedup = (
        throughput["plan"]["evaluations_per_second"]
        / throughput["scalar"]["evaluations_per_second"]
    )

    payload = {
        "benchmark": "twod_speed",
        "workload": (
            "1024x1024 2-D Jacobi on DC, "
            f"{len(candidates)} candidates over {factor_pairs(8)}"
        ),
        "python": platform.python_version(),
        "throughput": throughput,
        "batched_throughput": batched,
        "golden_equivalence_rel": golden,
        "golden_required_rel": GOLDEN_REL_TOL,
        "speedup": {
            "batched_numpy_vs_scalar": numpy_speedup,
            "batched_plan_vs_scalar": plan_speedup,
            "serial_plan_vs_scalar": serial_plan_speedup,
            "required": REQUIRED_BATCHED_SPEEDUP,
            "target": TARGET_BATCHED_SPEEDUP,
        },
        "two_d_vs_one_d": payoff,
        "plan_cache_stats": plan_cache_stats(),
        "plan_numba_active": numba_active(),
    }
    JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    lines = [
        "2-D prediction-kernel speed (1024x1024 Jacobi on DC, "
        f"{len(candidates)} candidates across all grid shapes):"
    ]
    for label in CONFIGS:
        row, brow = throughput[label], batched[label]
        lines.append(
            f"  {label:8s} {row['evaluations_per_second']:8.0f} evals/s "
            f"({row['mean_ms']:.3f} ms) | batched "
            f"{brow['evaluations_per_second']:8.0f} evals/s "
            f"({brow['mean_ms']:.3f} ms)"
        )
    lines.append(
        f"  batched speedup vs scalar: numpy {numpy_speedup:.1f}x, "
        f"plan {plan_speedup:.1f}x "
        f"(required >= {REQUIRED_BATCHED_SPEEDUP:.0f}x, "
        f"target {TARGET_BATCHED_SPEEDUP:.0f}x; "
        f"numba {'on' if numba_active() else 'off'})"
    )
    lines.append(
        f"  golden equivalence: numpy {golden['numpy']:.2e}, "
        f"plan {golden['plan']:.2e} (required <= {GOLDEN_REL_TOL:.0e})"
    )
    lines.append(
        f"  payoff on {payoff['cluster']}: best 2-D "
        f"{payoff['best_two_d_seconds']:.4f}s "
        f"({payoff['best_shape'][0]}x{payoff['best_shape'][1]}) vs best "
        f"1-D strip {payoff['best_one_d_strip_seconds']:.4f}s — "
        f"{'2-D wins' if payoff['two_d_wins'] else '1-D wins'}"
    )
    save_result("twod_speed", "\n".join(lines))

    # The batched kernels must be *exact* (to fp tolerance) ...
    for label, worst in golden.items():
        assert worst <= GOLDEN_REL_TOL, (
            f"{label} kernel disagrees with the scalar reference by "
            f"{worst:.2e} (> {GOLDEN_REL_TOL:.0e})"
        )
    # ... and fast: the hard gate holds in numba and fallback modes.
    assert plan_speedup >= REQUIRED_BATCHED_SPEEDUP, (
        f"batched plan speedup {plan_speedup:.2f}x vs the scalar loop is "
        f"below the {REQUIRED_BATCHED_SPEEDUP}x hard gate "
        f"(numba_active={numba_active()})"
    )
    # And the speed must buy the paper's declined result: a cluster
    # where a genuinely 2-D layout beats every 1-D strip.
    assert payoff["two_d_wins"], (
        f"expected 2-D to beat 1-D strips on {payoff['cluster']}: "
        f"{payoff['best_two_d_seconds']:.4f}s vs "
        f"{payoff['best_one_d_strip_seconds']:.4f}s"
    )
