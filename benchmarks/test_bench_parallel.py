"""Bench P1: the fan-out execution layer (repro.parallel).

Claims under test:

* fanning a Figure-9 panel out over a process pool (``jobs=4``) is
  bit-identical to the serial run — per-run seeded RNG streams make the
  emulator runs order- and process-independent;
* the content-keyed sweep cache makes a repeated invocation skip every
  emulator run (including the instrumented iteration), for a wall-clock
  speedup of at least 2x — in practice one to two orders of magnitude.

The parallel wall-clock ratio itself is recorded but not asserted: it
depends on how many CPU cores the machine actually has, which is the
one thing this deterministic suite cannot pin down.
"""

import time

from repro.experiments import fig9_accuracy
from repro.parallel import SweepCache

PANEL = dict(panel="rna", steps_per_leg=3)


def _fingerprint(bands):
    """Every float of every run — equality here is bit-identity."""
    return [
        (
            run.cluster_name,
            run.app_name,
            tuple(
                (p.label, p.actual_seconds, p.predicted_seconds)
                for p in run.points
            ),
        )
        for run in bands.runs
    ]


def test_parallel_and_cached_sweep(benchmark, save_result, tmp_path):
    t0 = time.perf_counter()
    serial = benchmark.pedantic(
        lambda: fig9_accuracy(**PANEL), rounds=1, iterations=1
    )
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    fanned = fig9_accuracy(jobs=4, **PANEL)
    t_parallel = time.perf_counter() - t0
    assert _fingerprint(serial) == _fingerprint(fanned)

    # Populate an on-disk cache, then repeat the invocation against it.
    cache_path = tmp_path / "sweep-cache.json"
    cache = SweepCache(cache_path)
    populated = fig9_accuracy(cache=cache, **PANEL)
    cache.save()
    assert _fingerprint(serial) == _fingerprint(populated)

    warm = SweepCache(cache_path)
    t0 = time.perf_counter()
    cached = fig9_accuracy(cache=warm, **PANEL)
    t_cached = time.perf_counter() - t0
    assert _fingerprint(serial) == _fingerprint(cached)
    assert warm.hits > 0 and len(warm) == len(cache)

    parallel_speedup = t_serial / t_parallel
    cache_speedup = t_serial / t_cached
    save_result(
        "parallel_speedup",
        "Fan-out/caching on the Fig 9 RNA panel "
        f"(17 architectures, {len(serial.runs)} runs):\n"
        f"serial (jobs=1):        {t_serial:8.2f}s\n"
        f"process pool (jobs=4):  {t_parallel:8.2f}s  "
        f"({parallel_speedup:.2f}x; cores decide this one)\n"
        f"warm on-disk cache:     {t_cached:8.2f}s  "
        f"({cache_speedup:.2f}x)\n"
        "all three modes bit-identical to serial execution",
    )
    assert cache_speedup >= 2.0


def test_cached_rerun_skips_all_emulation(save_result, tmp_path):
    """A warmed cache leaves no pending work: hits only, no growth."""
    cache = SweepCache(tmp_path / "cache.json")
    fig9_accuracy(cache=cache, **PANEL)
    size = len(cache)
    hits_before = cache.hits
    fig9_accuracy(cache=cache, **PANEL)
    assert len(cache) == size
    assert cache.hits > hits_before
    save_result(
        "parallel_cache_reuse",
        f"sweep cache after two RNA-panel invocations: {size} distinct "
        f"(cluster, program, distribution) triples, {cache.hits} hits, "
        f"{cache.misses} misses",
    )
