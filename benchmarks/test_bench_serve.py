"""Bench S1: serve-mode load — the coordinator under concurrent fire.

PR 6 turned the call-per-use library stack into a resident advisor
service (``repro serve``): an asyncio coordinator micro-batches
concurrent queries into shared ``predict(batch=True)`` passes and
shared search rounds, keeping the model / table / evaluation caches
warm across requests.  This benchmark measures that claim end to end:

* ``SERVE_BENCH_QUERIES`` predict queries (default 1200, env-overridable
  for CI's reduced load) cycling a pool of distinct candidates, fired
  simultaneously from ``SERVE_BENCH_CLIENTS`` pipelined connections
  against a real loopback server — per-query latency (p50/p90/p99),
  queries/sec, and the coalescing ratio from the server's own telemetry
  counters;
* a burst of identical ``search`` queries that must collapse to one
  in-flight run;
* equivalence: every served answer must match its one-shot library
  counterpart (``model.predict`` / ``GeneralizedBinarySearch``) to
  <= 1e-12 relative.

It writes the machine-readable scoreboard ``BENCH_serve.json`` at the
repo root.  The hard acceptance gates — enforced here *and* in CI —
are a minimum coalescing ratio and a p99 latency ceiling.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time
from pathlib import Path

from repro.apps import application_by_name
from repro.cluster import table1_configs
from repro.distribution import GenBlock, balanced
from repro.experiments import build_model
from repro.obs import Recorder
from repro.search import GeneralizedBinarySearch
from repro.serve import AsyncServeClient, ServeCoordinator

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"

#: Load shape.  CI runs a reduced load via SERVE_BENCH_QUERIES; the
#: committed scoreboard records the full default run.
N_QUERIES = int(os.environ.get("SERVE_BENCH_QUERIES", "1200"))
N_CLIENTS = int(os.environ.get("SERVE_BENCH_CLIENTS", "16"))
POOL_SIZE = 24
N_SEARCHES = 8

APP, CONFIG, SCALE = "jacobi", "HY1", 0.05
SEARCH_BUDGET = 40

#: Acceptance floor: at least this fraction of load submissions must be
#: answered by a computation they shared with another request.
REQUIRED_COALESCING = 0.25

#: Acceptance ceiling on p99 request latency under full load.  Mostly a
#: liveness gate — the batched rounds answer from warm caches, so even
#: slow CI machines clear this by a wide margin.
REQUIRED_P99_S = 5.0

#: Served answers must match their one-shot library counterpart.
EQUIVALENCE_RTOL = 1e-12


def _candidate_pool(cluster, program):
    """Distinct valid row distributions: balanced plus deterministic
    moves of k rows off node 0, mirroring what an advisor fleet asks."""
    base = list(balanced(cluster, program.n_rows).counts)
    n = len(base)
    pool = [base]
    k = 1
    while len(pool) < POOL_SIZE and base[0] - k >= 1:
        counts = list(base)
        counts[0] -= k
        counts[1 + (k % (n - 1))] += k
        if counts not in pool:
            pool.append(counts)
        k += 1
    return pool


def _counter(snapshot, name):
    return snapshot["counters"].get(name, 0)


def _percentile(sorted_values, q):
    return sorted_values[int(q * (len(sorted_values) - 1))]


async def _drive_load(coordinator, address, pool):
    """Fire N_QUERIES pipelined predicts at the bound server and return
    (latencies, wall_seconds, results_by_candidate, counter deltas)."""
    clients = [
        await AsyncServeClient.open(port=address[1]) for _ in range(N_CLIENTS)
    ]
    try:
        # Pre-warm the model outside the timed window: building it
        # instruments an iteration, which would dominate the profile.
        await clients[0].predict(APP, config=CONFIG, scale=SCALE,
                                 counts=pool[0])
        before = coordinator.telemetry.snapshot()
        latencies = [0.0] * N_QUERIES
        answers = [None] * N_QUERIES

        async def one(i):
            client = clients[i % N_CLIENTS]
            counts = pool[i % len(pool)]
            started = time.perf_counter()
            answers[i] = await client.predict(
                APP, config=CONFIG, scale=SCALE, counts=counts
            )
            latencies[i] = time.perf_counter() - started

        started = time.perf_counter()
        await asyncio.gather(*[one(i) for i in range(N_QUERIES)])
        wall = time.perf_counter() - started
        after = coordinator.telemetry.snapshot()

        # Identical concurrent searches must collapse to one run.
        searches = await asyncio.gather(*[
            clients[i % N_CLIENTS].search(
                APP, config=CONFIG, scale=SCALE,
                algorithm="gbs", budget=SEARCH_BUDGET,
            )
            for i in range(N_SEARCHES)
        ])
        final = coordinator.telemetry.snapshot()
    finally:
        for client in clients:
            await client.aclose()
    return latencies, wall, answers, searches, before, after, final


def test_serve_load(save_result):
    cluster = table1_configs()[CONFIG]
    program = application_by_name(APP, SCALE).structure
    reference = build_model(cluster, program)
    pool = _candidate_pool(cluster, program)

    telemetry = Recorder()
    coordinator = ServeCoordinator(telemetry=telemetry)

    async def main():
        handle = await coordinator.start(port=0)
        try:
            async with handle.server:
                await handle.server.start_serving()
                return await _drive_load(
                    coordinator, (handle.host, handle.port), pool
                )
        finally:
            await coordinator.aclose()

    latencies, wall, answers, searches, before, after, final = asyncio.run(
        main()
    )

    # -- latency / throughput ------------------------------------------------
    latencies.sort()
    p50 = _percentile(latencies, 0.50)
    p90 = _percentile(latencies, 0.90)
    p99 = _percentile(latencies, 0.99)
    qps = N_QUERIES / wall

    # -- coalescing, from the server's own counters --------------------------
    requests = _counter(after, "serve/requests") - _counter(
        before, "serve/requests"
    )
    coalesced = _counter(after, "serve/coalesced") - _counter(
        before, "serve/coalesced"
    )
    batches = _counter(after, "serve/batches") - _counter(
        before, "serve/batches"
    )
    kernel_evals = _counter(after, "serve/kernel_evaluations") - _counter(
        before, "serve/kernel_evaluations"
    )
    eval_cache_hits = _counter(after, "serve/eval_cache_hits") - _counter(
        before, "serve/eval_cache_hits"
    )
    ratio = coalesced / requests if requests else 0.0
    search_coalesced = _counter(final, "serve/search_coalesced")
    search_result_hits = _counter(final, "serve/search_result_hits")

    # -- equivalence vs. the one-shot library path ---------------------------
    max_rel = 0.0
    for counts in pool:
        want = float(reference.predict(GenBlock(counts)))
        got = {
            a["predicted_seconds"] for a in answers
            if a["counts"] == counts
        }
        assert len(got) == 1, "served answers for one candidate disagree"
        max_rel = max(max_rel, abs(got.pop() - want) / want)

    one_shot = GeneralizedBinarySearch(reference, cluster).search(
        budget=SEARCH_BUDGET
    )
    search_rel = max(
        abs(s["predicted_seconds"] - one_shot.predicted_seconds)
        / one_shot.predicted_seconds
        for s in searches
    )
    assert all(s["counts"] == list(one_shot.best.counts) for s in searches)

    payload = {
        "workload": {
            "app": APP,
            "config": CONFIG,
            "scale": SCALE,
            "n_queries": N_QUERIES,
            "n_clients": N_CLIENTS,
            "candidate_pool": len(pool),
            "n_searches": N_SEARCHES,
            "search_budget": SEARCH_BUDGET,
        },
        "load": {
            "wall_seconds": wall,
            "queries_per_second": qps,
            "latency_ms": {
                "p50": p50 * 1e3,
                "p90": p90 * 1e3,
                "p99": p99 * 1e3,
                "max": latencies[-1] * 1e3,
            },
        },
        "coalescing": {
            "requests": requests,
            "coalesced": coalesced,
            "ratio": ratio,
            "batches": batches,
            "kernel_evaluations": kernel_evals,
            "eval_cache_hits": eval_cache_hits,
            "search_coalesced": search_coalesced,
            "search_result_hits": search_result_hits,
            "required_ratio": REQUIRED_COALESCING,
        },
        "equivalence": {
            "predict_max_rel_diff": max_rel,
            "search_max_rel_diff": search_rel,
            "required_rtol": EQUIVALENCE_RTOL,
        },
        "gates": {"required_p99_s": REQUIRED_P99_S},
        "environment": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
    }
    JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    save_result(
        "serve_load",
        "\n".join([
            f"Serve load ({N_QUERIES} concurrent predicts over "
            f"{N_CLIENTS} pipelined connections, {len(pool)} distinct "
            f"candidates, {APP} on {CONFIG} at scale {SCALE}):",
            f"  throughput: {qps:,.0f} queries/s "
            f"({wall * 1e3:.0f} ms wall)",
            f"  latency: p50 {p50 * 1e3:.1f} ms, p90 {p90 * 1e3:.1f} ms, "
            f"p99 {p99 * 1e3:.1f} ms",
            f"  coalescing: {coalesced}/{requests} submissions shared "
            f"({ratio:.0%}) across {batches} batched passes; "
            f"{kernel_evals} kernel evaluations, "
            f"{eval_cache_hits} eval-cache hits",
            f"  search: {N_SEARCHES} identical queries -> "
            f"{search_coalesced} coalesced + {search_result_hits} "
            "result-cache hits (one run)",
            f"  equivalence: predict {max_rel:.1e}, search "
            f"{search_rel:.1e} rel vs. one-shot "
            f"(required <= {EQUIVALENCE_RTOL:.0e})",
            f"  gates: coalescing >= {REQUIRED_COALESCING:.0%}, "
            f"p99 <= {REQUIRED_P99_S:.0f} s",
        ]),
    )

    # The hard acceptance gates, mirrored in CI.
    assert requests >= N_QUERIES
    assert ratio >= REQUIRED_COALESCING, (
        f"coalescing ratio {ratio:.2%} below required "
        f"{REQUIRED_COALESCING:.0%}"
    )
    assert p99 <= REQUIRED_P99_S, f"p99 {p99:.2f}s above {REQUIRED_P99_S}s"
    assert max_rel <= EQUIVALENCE_RTOL
    assert search_rel <= EQUIVALENCE_RTOL
    # One search ran; the other seven shared it.
    assert search_coalesced + search_result_hits == N_SEARCHES - 1
