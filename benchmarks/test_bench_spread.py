"""Bench N2: best-vs-worst distribution spreads (Section 5.3).

Paper claims under test: the worst distribution can cost ~4x (RNA on
DC) and ~3x (Lanczos on HY1) over the best — the motivation for
searching at all — and the best distribution is not statically obvious
across configurations.
"""

from repro.experiments import distribution_spread


def test_spreads(benchmark, save_result):
    result = benchmark.pedantic(
        distribution_spread, kwargs={"steps_per_leg": 4},
        rounds=1, iterations=1,
    )
    save_result("spreads", result.describe())

    # RNA on DC: almost a factor of 4 (accept 3..6).
    assert 3.0 < result.spread("rna", "DC") < 6.0
    # Lanczos on HY1: about a factor of 3 (accept 2..6).
    assert 2.0 < result.spread("lanczos", "HY1") < 6.0
    # Every pair shows a non-trivial spread: picking matters everywhere.
    assert all(v > 1.2 for v in result.spreads.values())
    # The winning anchor differs across configurations: no static guess
    # works (Section 5.3's point).
    winners = set(result.best_labels.values())
    assert len(winners) >= 2
