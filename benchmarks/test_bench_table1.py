"""Bench T1: regenerate Table 1 (the four emulated configurations)."""

from repro.cluster import table1_configs
from repro.experiments import table1


def test_table1(benchmark, save_result):
    text = benchmark.pedantic(table1, rounds=1, iterations=1)
    save_result("table1", text)
    configs = table1_configs()
    # The table names every configuration and its paper description.
    for name in configs:
        assert name in text
    assert "equal relative CPU power" in text
    # Structural claims of Table 1 hold in the generated configs.
    assert not configs["IO"].is_cpu_homogeneous or True
    assert configs["IO"].is_cpu_homogeneous
    assert not configs["DC"].is_cpu_homogeneous
