"""Bench X2 (extension): 2-D distributions (paper Section 5.1).

Two claims under test:

* the paper's assertion that "the MHETA model extends to two-dimensional
  data distributions" — our 2-D model tracks the 2-D emulator accurately
  at paper scale, and 2-D decomposition genuinely beats 1-D strips on a
  communication-bound stencil;
* the paper's reason for declining them — "the search space increases
  greatly" — quantified at the paper's own 5.4 ms/evaluation cost.
"""

from repro.cluster import ClusterSpec, baseline_cluster, config_dc
from repro.instrument.collect import MeasurementConfig
from repro.sim import PerturbationConfig
from repro.twod import (
    Jacobi2DSpec,
    TwoDEmulator,
    balanced2d,
    block2d,
    build_2d_model,
    search_space_growth,
)
from repro.util.tables import render_table


def test_twod_model_accuracy(benchmark, save_result):
    """2-D MHETA tracks the 2-D emulator on DC at paper scale."""
    cluster = config_dc()
    spec = Jacobi2DSpec(n_rows=8192, n_cols=8192, iterations=100)

    def run():
        d0 = block2d(spec.n_rows, spec.n_cols, (2, 4))
        model = build_2d_model(cluster, spec, d0)
        emulator = TwoDEmulator(cluster, spec)
        rows = []
        for label, dist in (
            ("Blk 2x4", d0),
            ("Bal 2x4", balanced2d(cluster, spec.n_rows, spec.n_cols, (2, 4))),
            ("Blk 8x1", block2d(spec.n_rows, spec.n_cols, (8, 1))),
            ("Bal 8x1", balanced2d(cluster, spec.n_rows, spec.n_cols, (8, 1))),
        ):
            actual = emulator.run(dist)
            # One model serves every shape: calibration is a per-element
            # compute rate, which transfers across grid shapes.
            predicted = model.predict(dist)
            err = abs(predicted - actual) / min(predicted, actual) * 100
            rows.append([label, actual, predicted, err])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "twod_accuracy",
        render_table(
            ["layout", "actual (s)", "predicted (s)", "error %"],
            rows,
            float_fmt=".2f",
            title="2-D Jacobi on DC: MHETA extended to GenBlock2D",
        ),
    )
    for label, _a, _p, err in rows:
        assert err < 5.0, label


def test_twod_beats_strips_when_comm_bound(benchmark, save_result):
    """Square-ish tiles exchange less halo than strips."""
    base = baseline_cluster(name="homog2d")
    cluster = ClusterSpec(
        name=base.name,
        nodes=base.nodes,
        network=base.network.with_(latency_per_byte=2e-7),
    )
    spec = Jacobi2DSpec(
        n_rows=8192, n_cols=8192, iterations=50, work_per_element=2e-9
    )

    def run():
        emulator = TwoDEmulator(cluster, spec, PerturbationConfig.none())
        strips = emulator.run(block2d(spec.n_rows, spec.n_cols, (8, 1)))
        grid = emulator.run(block2d(spec.n_rows, spec.n_cols, (2, 4)))
        return strips, grid

    strips, grid = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "twod_vs_strips",
        f"comm-bound 2-D Jacobi, 50 iterations: 8x1 strips {strips:.2f}s, "
        f"2x4 grid {grid:.2f}s ({(1 - grid / strips) * 100:.0f}% faster)",
    )
    assert grid < strips


def test_twod_search(benchmark, save_result):
    """Coordinate-descent GBS over 2-D layouts: finds a strong layout,
    but needs an order of magnitude more evaluations than 1-D GBS —
    the paper's search-space argument, experienced."""
    from repro.twod import TwoDGbs

    cluster = config_dc()
    spec = Jacobi2DSpec(n_rows=8192, n_cols=8192, iterations=100)

    def run():
        model = build_2d_model(
            cluster, spec, block2d(spec.n_rows, spec.n_cols, (2, 4))
        )
        result = TwoDGbs(model).search(budget=1500)
        emulator = TwoDEmulator(cluster, spec)
        verified = emulator.run(result.best)
        blk = emulator.run(block2d(spec.n_rows, spec.n_cols, (2, 4)))
        return result, verified, blk

    result, verified, blk = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result(
        "twod_search",
        f"{result}\nverified {verified:.2f}s vs 2x4 Blk {blk:.2f}s "
        f"({(1 - verified / blk) * 100:.0f}% faster); evaluation cost "
        f"~{result.evaluations} vs ~50 for 1-D GBS",
    )
    assert verified < blk
    # Prediction honest for the winner.
    assert abs(verified - result.predicted_seconds) / verified < 0.05
    # And it really did cost far more evaluations than 1-D GBS needs.
    assert result.evaluations > 300


def test_search_space_blowup(benchmark, save_result):
    comparison = benchmark.pedantic(
        search_space_growth, rounds=1, iterations=1
    )
    save_result("twod_search_space", comparison.describe())
    # At the natural granularity (one unit per node) the 2-D space is
    # hundreds of times larger — the paper's reason for staying 1-D.
    assert comparison.worst_blowup > 100
