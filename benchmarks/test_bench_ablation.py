"""Bench A1: error ablation — quantifying Section 5.4's limitations.

The paper attributes MHETA's residual error to unmodelled cache
behaviour, the simplistic out-of-core heuristic, and sparse data sets.
Our emulator implements each as a switchable effect; disabling an effect
must not *increase* the error materially, and the CG-specific effects
(sparse weights, OS read cache) must account for a visible share of CG's
error on configuration IO.
"""

from repro.experiments import error_ablation


def test_ablation_cg_on_io(benchmark, save_result):
    result = benchmark.pedantic(
        error_ablation, kwargs={"steps_per_leg": 3}, rounds=1, iterations=1
    )
    save_result("ablation_cg_io", result.describe())

    assert result.baseline_mean > 0.5  # the effects do produce error
    for effect, (mean, _mx) in result.without.items():
        # Removing a ground-truth effect never makes the model much
        # worse (tolerance for cross-effect interaction).
        assert mean <= result.baseline_mean + 1.5, effect
    # The sparse-row imbalance is a real contributor for CG.
    assert result.contribution("sparse-weights") > 0.0
    # So is the OS read cache (the IO-configuration over-estimates).
    assert result.contribution("os-read-cache") > 0.0
