"""Size and time unit helpers.

All sizes inside the library are plain byte counts (``int``) and all times
are seconds (``float``).  These helpers exist so that cluster
configurations and experiment scripts read naturally (``mib(512)`` instead
of ``536870912``) and so that reports print human-friendly values.
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "DOUBLE",
    "mib",
    "gib",
    "kib",
    "bytes_to_human",
    "seconds_to_human",
]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Size in bytes of the double-precision elements used by every benchmark
#: application in the paper (dense/sparse matrices and vectors of doubles).
DOUBLE = 8


def kib(n: float) -> int:
    """``n`` kibibytes, as an integer byte count."""
    return int(n * KIB)


def mib(n: float) -> int:
    """``n`` mebibytes, as an integer byte count."""
    return int(n * MIB)


def gib(n: float) -> int:
    """``n`` gibibytes, as an integer byte count."""
    return int(n * GIB)


def bytes_to_human(n: float) -> str:
    """Render a byte count with a binary suffix (``1.50 GiB``)."""
    n = float(n)
    for limit, suffix in ((GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if abs(n) >= limit:
            return f"{n / limit:.2f} {suffix}"
    return f"{n:.0f} B"


def seconds_to_human(t: float) -> str:
    """Render a duration: microseconds below 1 ms, milliseconds below 1 s,
    seconds otherwise."""
    if abs(t) < 1e-3:
        return f"{t * 1e6:.1f} us"
    if abs(t) < 1.0:
        return f"{t * 1e3:.2f} ms"
    if abs(t) < 120.0:
        return f"{t:.2f} s"
    return f"{t / 60.0:.1f} min"
