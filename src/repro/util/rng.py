"""Deterministic, named random-number streams.

Every stochastic component of the reproduction (architecture-suite
generation, emulator perturbations, sparse-matrix shapes, search
algorithms) draws from a :class:`numpy.random.Generator` obtained through
:func:`stream`.  A stream is identified by a tuple of string/int labels;
the same labels always produce the same stream, so every figure in
EXPERIMENTS.md regenerates bit-identically regardless of the order in
which experiments run.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

__all__ = ["derive_seed", "stream", "GLOBAL_SEED"]

#: Root seed for the whole reproduction.  Changing it re-rolls every
#: stochastic choice at once (useful for checking robustness of results).
GLOBAL_SEED = 20051112  # SC|05 opened November 12, 2005.

Label = Union[str, int, float]


def derive_seed(*labels: Label, root: int = GLOBAL_SEED) -> int:
    """Hash ``labels`` (with the root seed) into a 63-bit integer seed.

    Uses SHA-256 rather than Python's ``hash`` so results do not depend on
    ``PYTHONHASHSEED`` or the process.
    """
    h = hashlib.sha256()
    h.update(str(root).encode())
    for label in labels:
        h.update(b"\x1f")  # unit separator: ("ab","c") != ("a","bc")
        h.update(repr(label).encode())
    return int.from_bytes(h.digest()[:8], "big") >> 1


def stream(*labels: Label, root: int = GLOBAL_SEED) -> np.random.Generator:
    """Return a fresh, deterministic generator for the given labels."""
    return np.random.default_rng(derive_seed(*labels, root=root))
