"""Shared utilities: units, deterministic RNG streams, table rendering,
bounded LRU memoisation."""

from repro.util.lru import LRUCache
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    DOUBLE,
    bytes_to_human,
    seconds_to_human,
    mib,
    gib,
)
from repro.util.rng import stream, derive_seed
from repro.util.tables import render_table, render_series
from repro.util.ascii_plot import ascii_plot

__all__ = [
    "LRUCache",
    "KIB",
    "MIB",
    "GIB",
    "DOUBLE",
    "bytes_to_human",
    "seconds_to_human",
    "mib",
    "gib",
    "stream",
    "derive_seed",
    "render_table",
    "render_series",
    "ascii_plot",
]
