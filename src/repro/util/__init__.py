"""Shared utilities: units, deterministic RNG streams, table rendering."""

from repro.util.units import (
    KIB,
    MIB,
    GIB,
    DOUBLE,
    bytes_to_human,
    seconds_to_human,
    mib,
    gib,
)
from repro.util.rng import stream, derive_seed
from repro.util.tables import render_table, render_series
from repro.util.ascii_plot import ascii_plot

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "DOUBLE",
    "bytes_to_human",
    "seconds_to_human",
    "mib",
    "gib",
    "stream",
    "derive_seed",
    "render_table",
    "render_series",
    "ascii_plot",
]
