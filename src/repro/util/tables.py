"""Plain-text table and data-series rendering.

The benchmark harness reproduces the paper's tables and figure series as
text (this is a library, not a plotting package).  ``render_table`` prints
aligned columns; ``render_series`` prints an x/y series the way the
figures' underlying data would be tabulated.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Union

__all__ = ["render_table", "render_series"]

Cell = Union[str, int, float]


def _fmt(cell: Cell, float_fmt: str) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return format(cell, float_fmt)
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    float_fmt: str = ".3f",
    title: str = "",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table.

    Floats are formatted with ``float_fmt``; every column is padded to its
    widest cell.  Returns the table as a single string (no trailing
    newline).
    """
    str_rows = [[_fmt(c, float_fmt) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def render_series(
    x_label: str,
    x_values: Sequence[Cell],
    series: Mapping[str, Sequence[float]],
    *,
    float_fmt: str = ".3f",
    title: str = "",
) -> str:
    """Render one or more y-series against shared x values.

    This is the textual equivalent of one panel of the paper's figures:
    the x axis is the distribution spectrum, each named series is a line
    (e.g. ``J-Actual``, ``J-Predicted``).
    """
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points, x has {len(x_values)}"
            )
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(s[i] for s in series.values())] for i, x in enumerate(x_values)
    ]
    return render_table(headers, rows, float_fmt=float_fmt, title=title)
