"""Terminal line plots for the paper's figures.

The experiment harness tabulates every figure; this module additionally
renders the series as an ASCII chart so the *shape* of Figures 9-11 —
the error hump near I-C, the U-curves of the spectrum sweeps, the
predicted line hugging the actual one — is visible in a terminal.

The renderer is deliberately simple: one character cell per (column,
row), series drawn in order with distinct markers, a left axis with the
value range, and the x labels printed beneath (thinned to fit).
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

__all__ = ["ascii_plot"]

MARKERS = "o*x+#@%&"


def _scale(value: float, lo: float, hi: float, height: int) -> int:
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(int(frac * (height - 1) + 0.5), height - 1)


def ascii_plot(
    x_labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    *,
    height: int = 12,
    width: int = 64,
    title: str = "",
    y_format: str = ".1f",
) -> str:
    """Render one chart.

    ``series`` maps a name to its y values; all series share
    ``x_labels``.  Returns the chart as a string (no trailing newline).
    """
    if not series:
        raise ValueError("need at least one series")
    n_points = len(x_labels)
    for name, ys in series.items():
        if len(ys) != n_points:
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {n_points} labels"
            )
    if n_points == 0:
        raise ValueError("need at least one point")

    all_values = [v for ys in series.values() for v in ys]
    lo = min(all_values)
    hi = max(all_values)
    if hi == lo:
        hi = lo + 1.0

    width = max(width, n_points)
    # Column position of each x index.
    if n_points == 1:
        cols = [width // 2]
    else:
        cols = [round(i * (width - 1) / (n_points - 1)) for i in range(n_points)]

    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for s_idx, (name, ys) in enumerate(series.items()):
        marker = MARKERS[s_idx % len(MARKERS)]
        last = None
        for i, value in enumerate(ys):
            row = height - 1 - _scale(value, lo, hi, height)
            col = cols[i]
            # Connect to the previous point with a sparse line.
            if last is not None:
                lr, lc = last
                steps = max(abs(col - lc), 1)
                for k in range(1, steps):
                    cc = lc + (col - lc) * k // steps
                    rr = lr + (row - lr) * k // steps
                    if grid[rr][cc] == " ":
                        grid[rr][cc] = "."
            grid[row][col] = marker
            last = (row, col)

    lo_label = format(lo, y_format)
    hi_label = format(hi, y_format)
    pad = max(len(lo_label), len(hi_label))
    lines = []
    if title:
        lines.append(title)
    for r, row_cells in enumerate(grid):
        if r == 0:
            label = hi_label.rjust(pad)
        elif r == height - 1:
            label = lo_label.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row_cells)}")
    lines.append(" " * pad + " +" + "-" * width)

    # X labels: print as many as fit without overlap.
    label_row = [" "] * (width + 1)
    for i, col in enumerate(cols):
        text = str(x_labels[i])
        if col + len(text) > width + 1:
            col = max(width + 1 - len(text), 0)
        if all(c == " " for c in label_row[col : col + len(text) + 1]):
            label_row[col : col + len(text)] = list(text)
    lines.append(" " * pad + "  " + "".join(label_row).rstrip())

    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * pad + "  " + legend)
    return "\n".join(lines)
