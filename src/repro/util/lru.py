"""A small bounded LRU mapping.

Several layers memoise work keyed by ``(node, rows)`` — the out-of-core
oracle's memory plans, the model's per-node stage tables — and long
sweeps visit an unbounded set of row counts, so plain dict memos grow
without limit.  ``LRUCache`` is the shared bounded replacement: a plain
``OrderedDict`` under the hood, recency-ordered, evicting the least
recently used entry once ``maxsize`` is reached.  No threads touch these
caches (parallelism in this repo is process-based), so there is no
locking.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Iterator, Optional

__all__ = ["LRUCache"]


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    Parameters
    ----------
    maxsize:
        Maximum number of entries kept.  Must be positive — callers that
        want "no cache" should not construct one.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Optional[Any] = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def get_many(self, keys) -> list:
        """Batched :meth:`get`: one value (or ``None``) per key, with a
        single method call's overhead for hot loops."""
        data = self._data
        move = data.move_to_end
        out = []
        hits = 0
        for key in keys:
            value = data.get(key)
            if value is not None:
                move(key)
                hits += 1
            out.append(value)
        self.hits += hits
        self.misses += len(out) - hits
        return out

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def items(self):
        """Current ``(key, value)`` pairs, least recently used first."""
        return self._data.items()

    def clear(self) -> None:
        self._data.clear()

    @property
    def stats(self) -> dict:
        """Counters for diagnostics and benchmark JSON."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
