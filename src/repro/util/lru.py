"""A small bounded LRU mapping.

Several layers memoise work keyed by ``(node, rows)`` — the out-of-core
oracle's memory plans, the model's per-node stage tables — and long
sweeps visit an unbounded set of row counts, so plain dict memos grow
without limit.  ``LRUCache`` is the shared bounded replacement: a plain
``OrderedDict`` under the hood, recency-ordered, evicting the least
recently used entry once ``maxsize`` is reached.

Thread safety is opt-in.  The experiment stack is process-parallel, so
the default cache takes no lock and pays nothing for one.  The serving
layer (:mod:`repro.serve`) runs model passes on an executor thread while
the asyncio event loop owns the coordinator, so *its* caches are built
with ``threadsafe=True`` and every operation then runs under an
``RLock``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator, Optional

__all__ = ["LRUCache"]

#: Internal miss marker: ``None`` is a legitimate cached *value* (a
#: memoised "no plan needed", a stored null result), so lookups cannot
#: use it to detect absence.
_MISS = object()


class _NullLock:
    """No-op context manager standing in for the lock when the cache is
    single-threaded (the default) — stateless, shared, re-entrant."""

    __slots__ = ()

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_LOCK = _NullLock()


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    Parameters
    ----------
    maxsize:
        Maximum number of entries kept.  Must be positive — callers that
        want "no cache" should not construct one.
    threadsafe:
        When true, every operation (including the ``stats`` snapshot)
        runs under a re-entrant lock, so the cache may be shared between
        an event-loop thread and executor threads.  Default false: the
        lock is a shared no-op and the hot path pays one ``with`` on a
        stateless object.
    on_evict:
        Optional ``(key, value)`` callback invoked after an entry is
        evicted by :meth:`put` — *outside* the lock, so the callback may
        itself touch caches.  Explicit :meth:`pop`/:meth:`clear` calls
        do not trigger it (the caller already holds the value).  The
        serving layer uses this to release a resident model's compiled
        plans when the model-LRU drops it.
    """

    def __init__(
        self,
        maxsize: int,
        *,
        threadsafe: bool = False,
        on_evict: Optional[Callable[[Hashable, Any], None]] = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock() if threadsafe else _NULL_LOCK
        self._on_evict = on_evict
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Optional[Any] = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def get_many(self, keys) -> list:
        """Batched :meth:`get`: one value (or ``None``) per key, with a
        single method call's overhead for hot loops.

        A *stored* ``None`` is a hit, exactly as in :meth:`get`: absence
        is detected with an internal sentinel, never by comparing the
        value against ``None``, so recency and the hit/miss counters
        stay correct for null-valued entries.
        """
        with self._lock:
            data = self._data
            move = data.move_to_end
            out = []
            hits = 0
            for key in keys:
                value = data.get(key, _MISS)
                if value is _MISS:
                    out.append(None)
                else:
                    move(key)
                    hits += 1
                    out.append(value)
            self.hits += hits
            self.misses += len(out) - hits
            return out

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        evicted = _MISS
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                evicted = self._data.popitem(last=False)
                self.evictions += 1
        if evicted is not _MISS and self._on_evict is not None:
            self._on_evict(*evicted)

    def pop(self, key: Hashable, default: Optional[Any] = None) -> Any:
        """Remove and return ``key``'s value (``default`` when absent).
        Leaves the hit/miss counters untouched: a pop is bookkeeping,
        not a lookup."""
        with self._lock:
            return self._data.pop(key, default)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def items(self):
        """Current ``(key, value)`` pairs, least recently used first."""
        return self._data.items()

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    @property
    def stats(self) -> dict:
        """Counters for diagnostics and benchmark JSON."""
        with self._lock:
            return {
                "size": len(self._data),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
