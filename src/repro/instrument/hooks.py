"""MPI-Jack-style pre/post hook registry.

The paper's MPI-Jack tool [1] exploits PMPI to let arbitrary code run
before and after any intercepted MPI call (paper Figure 3).  Our
runtime's interposition point is the emulator's observer stream: every
I/O, computation and communication primitive emits an
:class:`~repro.sim.trace.EventRecord` on completion.  The registry
dispatches each record to the handlers registered for its operation
kind, giving collection code the same "hook functions" shape as the
paper's Figure 3 (variable id, stage id, tile id, parallel-section id,
measured duration).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, DefaultDict, List

from repro.sim.trace import EventRecord

__all__ = ["HookRegistry"]

Handler = Callable[[EventRecord], None]


class HookRegistry:
    """Dispatch emulator events to registered hooks.

    Use as the ``observer`` of :meth:`ClusterEmulator.run`::

        hooks = HookRegistry()
        hooks.register(Op.READ, record_read_latency)
        hooks.register_all(log_everything)
        emulator.run(distribution, observer=hooks)
    """

    def __init__(self) -> None:
        self._handlers: DefaultDict[str, List[Handler]] = defaultdict(list)
        self._catch_all: List[Handler] = []

    def register(self, op: str, handler: Handler) -> None:
        """Call ``handler`` after every completed operation of kind ``op``."""
        self._handlers[op].append(handler)

    def register_all(self, handler: Handler) -> None:
        """Call ``handler`` after every completed operation."""
        self._catch_all.append(handler)

    def unregister(self, op: str, handler: Handler) -> None:
        """Remove a previously registered handler (no-op if absent)."""
        try:
            self._handlers[op].remove(handler)
        except ValueError:
            pass

    def __call__(self, record: EventRecord) -> None:
        for handler in self._handlers.get(record.op, ()):  # post hooks
            handler(record)
        for handler in self._catch_all:
            handler(record)
