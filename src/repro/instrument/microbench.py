"""Microbenchmarks: cluster parameters measured by probing the machine.

The paper measures "some basic communication costs, such as send and
receive overheads and send latency per byte between nodes" with
microbenchmarks, plus per-node disk seek overheads, and assumes they are
constant in the dedicated environment (Section 4.1).  We do the same
against the emulated hardware: ping-pong message experiments run on the
event engine recover the network parameters, and two-point disk probes
recover each node's seek overhead and per-byte transfer latency.  The
values are *measured through the same interfaces applications use*, not
read out of the configuration objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cluster.cluster import ClusterSpec
from repro.exceptions import InstrumentationError
from repro.sim.disk import DiskModel
from repro.sim.engine import Delay, Engine, Recv, Send
from repro.sim.executor import PREFETCH_ISSUE_OVERHEAD

__all__ = ["NodeDiskBench", "Microbenchmarks", "run_microbenchmarks"]

#: Probe sizes for the two-point linear fits.
_SMALL_BYTES = 64 * 1024
_LARGE_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class NodeDiskBench:
    """Measured disk characteristics of one node."""

    read_seek: float  #: ``rs`` — seconds per read access
    write_seek: float  #: ``ws`` — seconds per write access
    read_byte_latency: float  #: seconds per byte read
    write_byte_latency: float  #: seconds per byte written


@dataclass(frozen=True)
class Microbenchmarks:
    """All microbenchmark results for a cluster."""

    send_overhead: float
    recv_overhead: float
    byte_latency: float  #: network transfer seconds per byte
    fixed_latency: float  #: network per-message latency
    prefetch_issue_overhead: float
    disks: Tuple[NodeDiskBench, ...]

    def transfer_seconds(self, nbytes: float) -> float:
        """Estimated in-flight time for an ``nbytes`` message."""
        return self.fixed_latency + nbytes * self.byte_latency


def _measure_network(cluster: ClusterSpec) -> Tuple[float, float, float, float]:
    """One-way timed sends at two sizes between nodes 0 and 1 recover
    (send_overhead, recv_overhead, byte_latency, fixed_latency)."""
    if cluster.n_nodes < 2:
        # Single-node cluster: communication costs never apply.
        return 0.0, 0.0, 0.0, 0.0
    net = cluster.network
    marks: Dict[str, float] = {}

    def sender(nbytes: float, tag: str):
        t = yield Delay(0.0)
        marks[f"{tag}:send_begin"] = t
        t = yield Delay(net.send_overhead)  # the send call occupies the CPU
        marks[f"{tag}:send_end"] = t
        yield Send(1, tag, transfer=net.transfer_seconds(nbytes))

    def receiver(tag: str):
        result = yield Recv(0, tag)
        marks[f"{tag}:arrival"] = float(result)
        t = yield Delay(net.recv_overhead)
        marks[f"{tag}:recv_done"] = t

    probes: List[Tuple[float, str]] = [
        (_SMALL_BYTES, "small"),
        (_LARGE_BYTES, "large"),
    ]
    for nbytes, tag in probes:
        engine = Engine()
        engine.add_process(sender(nbytes, tag), node=0)
        engine.add_process(receiver(tag), node=1)
        engine.run()

    send_overhead = marks["small:send_end"] - marks["small:send_begin"]
    recv_overhead = marks["small:recv_done"] - marks["small:arrival"]
    flight_small = marks["small:arrival"] - marks["small:send_end"]
    flight_large = marks["large:arrival"] - marks["large:send_end"]
    byte_latency = (flight_large - flight_small) / (_LARGE_BYTES - _SMALL_BYTES)
    fixed_latency = flight_small - _SMALL_BYTES * byte_latency
    if byte_latency < 0 or fixed_latency < -1e-12:
        raise InstrumentationError("network microbenchmark went backwards")
    return send_overhead, recv_overhead, byte_latency, max(fixed_latency, 0.0)


def _measure_disk(node_index: int, cluster: ClusterSpec) -> NodeDiskBench:
    """Two-point cold reads/writes recover seek and per-byte latency."""
    node = cluster.nodes[node_index]
    disk = DiskModel(node, resident_bytes=0.0, cache_enabled=False)
    now = 0.0
    samples = {}
    for kind in ("read", "write"):
        durations = []
        for nbytes in (_SMALL_BYTES, _LARGE_BYTES):
            if kind == "read":
                op = disk.submit_read(now, f"probe-{kind}-{nbytes}", nbytes)
            else:
                op = disk.submit_write(now, f"probe-{kind}-{nbytes}", nbytes)
            durations.append(op.done - op.start)
            now = op.done
        per_byte = (durations[1] - durations[0]) / (_LARGE_BYTES - _SMALL_BYTES)
        seek = durations[0] - _SMALL_BYTES * per_byte
        samples[kind] = (max(seek, 0.0), per_byte)
    return NodeDiskBench(
        read_seek=samples["read"][0],
        write_seek=samples["write"][0],
        read_byte_latency=samples["read"][1],
        write_byte_latency=samples["write"][1],
    )


def run_microbenchmarks(cluster: ClusterSpec) -> Microbenchmarks:
    """Measure all stable cluster parameters MHETA needs."""
    send_oh, recv_oh, byte_lat, fixed_lat = _measure_network(cluster)
    disks = tuple(
        _measure_disk(i, cluster) for i in range(cluster.n_nodes)
    )
    return Microbenchmarks(
        send_overhead=send_oh,
        recv_overhead=recv_oh,
        byte_latency=byte_lat,
        fixed_latency=fixed_lat,
        prefetch_issue_overhead=PREFETCH_ISSUE_OVERHEAD,
        disks=disks,
    )
