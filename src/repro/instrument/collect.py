"""Collect MHETA inputs from one instrumented iteration.

The instrumented iteration runs the real application (on the emulator)
with three changes, matching paper Section 4.1:

* every distributed variable is **forced out of core** so read/write
  latencies exist even for data that happens to fit in memory under the
  instrumented distribution;
* prefetch issues are turned into **blocking reads** and waits into
  no-ops, so both the read latency and the overlap computation ``To``
  can be timed precisely (Figure 5);
* pre/post hooks time every I/O call and every stage (Figure 3).

Timers are not free: every recorded duration is perturbed by a small
multiplicative bias plus an absolute timer overhead
(:class:`MeasurementConfig`).  The paper reports this perturbation costs
MHETA up to ~1% even when predicting the instrumented distribution
itself (Section 5.2.1); the self-prediction benchmark checks ours stays
in that band.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cluster.cluster import ClusterSpec
from repro.distribution.genblock import GenBlock
from repro.exceptions import InstrumentationError
from repro.instrument.hooks import HookRegistry
from repro.instrument.inputs import (
    MhetaInputs,
    NodeCosts,
    StageCost,
    VariableIOCost,
)
from repro.instrument.microbench import Microbenchmarks, run_microbenchmarks
from repro.program.structure import ProgramStructure
from repro.sim.executor import ClusterEmulator
from repro.sim.perturbation import PerturbationConfig
from repro.sim.trace import EventRecord, Op
from repro.util.rng import stream

__all__ = ["MeasurementConfig", "collect_inputs"]


@dataclass(frozen=True)
class MeasurementConfig:
    """How imperfect the instrumentation timers are."""

    relative_bias: float = 0.004  #: timers systematically read slightly long
    relative_sigma: float = 0.003  #: per-measurement jitter
    timer_overhead: float = 2e-6  #: absolute seconds added per measurement

    @classmethod
    def perfect(cls) -> "MeasurementConfig":
        """Idealised timers (used to validate the model equations)."""
        return cls(relative_bias=0.0, relative_sigma=0.0, timer_overhead=0.0)


class _Accumulator:
    """Aggregates hook records into per-node costs."""

    def __init__(self, measurement: MeasurementConfig, rng) -> None:
        self._m = measurement
        self._rng = rng
        # (node, section, stage) -> [total_compute, n_records]
        self.compute: Dict[Tuple[int, str, str], list] = defaultdict(
            lambda: [0.0, 0]
        )
        # (node, var, kind) -> [total_seconds, total_bytes, n_accesses]
        self.io: Dict[Tuple[int, str, str], list] = defaultdict(
            lambda: [0.0, 0.0, 0]
        )

    def _measured(self, true_duration: float) -> float:
        rel = self._m.relative_bias + self._rng.normal(0.0, self._m.relative_sigma)
        return true_duration * (1.0 + rel) + self._m.timer_overhead

    def on_compute(self, record: EventRecord) -> None:
        if record.stage is None:
            return
        cell = self.compute[(record.node, record.section, record.stage)]
        cell[0] += self._measured(record.duration)
        cell[1] += 1

    def on_read(self, record: EventRecord) -> None:
        if record.variable is None:
            return
        cell = self.io[(record.node, record.variable, "read")]
        cell[0] += self._measured(record.duration)
        cell[1] += record.nbytes
        cell[2] += 1

    def on_write(self, record: EventRecord) -> None:
        if record.variable is None:
            return
        cell = self.io[(record.node, record.variable, "write")]
        cell[0] += self._measured(record.duration)
        cell[1] += record.nbytes
        cell[2] += 1


def collect_inputs(
    cluster: ClusterSpec,
    program: ProgramStructure,
    distribution0: GenBlock,
    *,
    perturbation: Optional[PerturbationConfig] = None,
    measurement: Optional[MeasurementConfig] = None,
    micro: Optional[Microbenchmarks] = None,
) -> MhetaInputs:
    """Run the instrumented iteration and return the internal MHETA file.

    ``distribution0`` is the distribution the instrumented iteration uses
    (the paper instruments under ``Blk``).  ``micro`` may be supplied to
    reuse previously measured microbenchmarks.
    """
    if distribution0.n_rows != program.n_rows:
        raise InstrumentationError(
            "instrumented distribution does not cover the program's rows"
        )
    measurement = measurement or MeasurementConfig()
    micro = micro or run_microbenchmarks(cluster)

    rng = stream("measurement", cluster.name, program.name)
    acc = _Accumulator(measurement, rng)
    hooks = HookRegistry()
    hooks.register(Op.COMPUTE, acc.on_compute)
    hooks.register(Op.READ, acc.on_read)
    hooks.register(Op.WRITE, acc.on_write)

    emulator = ClusterEmulator(cluster, program, perturbation)
    emulator.run(
        distribution0, observer=hooks, io_mode="instrumented", iterations=1
    )

    nodes = []
    for rank in range(cluster.n_nodes):
        stages: Dict[str, StageCost] = {}
        for section in program.sections:
            for stage in section.stages:
                total, count = acc.compute.get(
                    (rank, section.name, stage.name), (0.0, 0)
                )
                if count == 0:
                    continue
                overlap = total / count if program.prefetch and count > 1 else 0.0
                stages[NodeCosts.stage_key(section.name, stage.name)] = StageCost(
                    compute_seconds=total,
                    overlap_per_block=overlap,
                    blocks_measured=count,
                )
        io: Dict[str, VariableIOCost] = {}
        disk = micro.disks[rank]
        for variable in program.distributed_variables:
            r_total, r_bytes, r_n = acc.io.get(
                (rank, variable.name, "read"), (0.0, 0.0, 0)
            )
            w_total, w_bytes, w_n = acc.io.get(
                (rank, variable.name, "write"), (0.0, 0.0, 0)
            )
            if r_n == 0 and w_n == 0:
                continue
            read_pb = (
                max(r_total - r_n * disk.read_seek, 0.0) / r_bytes
                if r_bytes > 0
                else 0.0
            )
            write_pb = (
                max(w_total - w_n * disk.write_seek, 0.0) / w_bytes
                if w_bytes > 0
                else 0.0
            )
            io[variable.name] = VariableIOCost(
                read_seconds_per_byte=read_pb,
                write_seconds_per_byte=write_pb,
                bytes_observed=r_bytes + w_bytes,
                accesses_observed=r_n + w_n,
            )
        nodes.append(
            NodeCosts(rows0=distribution0[rank], stages=stages, io=io)
        )

    return MhetaInputs(
        program_name=program.name,
        prefetch=program.prefetch,
        distribution0=tuple(distribution0.counts),
        micro=micro,
        nodes=tuple(nodes),
    )
