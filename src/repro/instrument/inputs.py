"""The "internal MHETA file": everything the model needs to predict.

``MhetaInputs`` bundles the program structure reference, the
microbenchmark results, and the per-node costs measured during the
instrumented iteration (computation per stage, I/O latency per variable,
overlap computation for prefetching).  It serialises to and from JSON so
a collected file can be stored alongside an application, exactly like
the paper's internal MHETA file.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple

from repro.exceptions import ModelError
from repro.instrument.microbench import Microbenchmarks, NodeDiskBench

__all__ = ["StageCost", "VariableIOCost", "NodeCosts", "MhetaInputs"]


@dataclass(frozen=True)
class StageCost:
    """Measured computation for one stage on one node.

    ``compute_seconds`` is the stage's total measured computation at the
    instrumented distribution (``rows0`` rows on this node).
    ``overlap_per_block`` is ``To`` — the computation available to
    overlap one prefetched read, measured with the blocking-read
    transformation of paper Figure 5; zero for non-prefetching programs.
    ``blocks_measured`` is how many ICLA pieces the forced-out-of-core
    instrumented iteration streamed.
    """

    compute_seconds: float
    overlap_per_block: float = 0.0
    blocks_measured: int = 1


@dataclass(frozen=True)
class VariableIOCost:
    """Measured I/O latencies for one variable on one node.

    Per-byte figures, net of the node's seek overheads (the paper keeps
    per-element latencies; byte granularity is equivalent and avoids
    coupling to the element size here).
    """

    read_seconds_per_byte: float
    write_seconds_per_byte: float
    bytes_observed: float = 0.0
    accesses_observed: int = 0


@dataclass(frozen=True)
class NodeCosts:
    """All instrumented measurements for one node."""

    rows0: int  #: rows the instrumented distribution gave this node
    stages: Dict[str, StageCost]  #: key: "section/stage"
    io: Dict[str, VariableIOCost]  #: key: variable name

    @staticmethod
    def stage_key(section: str, stage: str) -> str:
        return f"{section}/{stage}"

    def stage_cost(self, section: str, stage: str) -> Optional[StageCost]:
        return self.stages.get(self.stage_key(section, stage))


@dataclass(frozen=True)
class MhetaInputs:
    """Everything MHETA needs, as measured — the internal MHETA file."""

    program_name: str
    prefetch: bool
    distribution0: Tuple[int, ...]
    micro: Microbenchmarks
    nodes: Tuple[NodeCosts, ...]

    def __post_init__(self) -> None:
        if len(self.nodes) != len(self.distribution0):
            raise ModelError(
                "instrumented costs and distribution cover different "
                f"node counts ({len(self.nodes)} vs {len(self.distribution0)})"
            )

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "program_name": self.program_name,
            "prefetch": self.prefetch,
            "distribution0": list(self.distribution0),
            "micro": asdict(self.micro),
            "nodes": [
                {
                    "rows0": n.rows0,
                    "stages": {k: asdict(v) for k, v in n.stages.items()},
                    "io": {k: asdict(v) for k, v in n.io.items()},
                }
                for n in self.nodes
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MhetaInputs":
        micro_data = dict(data["micro"])
        micro_data["disks"] = tuple(
            NodeDiskBench(**d) for d in micro_data["disks"]
        )
        micro = Microbenchmarks(**micro_data)
        nodes = tuple(
            NodeCosts(
                rows0=n["rows0"],
                stages={k: StageCost(**v) for k, v in n["stages"].items()},
                io={k: VariableIOCost(**v) for k, v in n["io"].items()},
            )
            for n in data["nodes"]
        )
        return cls(
            program_name=data["program_name"],
            prefetch=data["prefetch"],
            distribution0=tuple(data["distribution0"]),
            micro=micro,
            nodes=nodes,
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "MhetaInputs":
        return cls.from_dict(json.loads(text))

    def save(self, path) -> None:
        """Write the internal MHETA file."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path) -> "MhetaInputs":
        """Read an internal MHETA file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
