"""Instrumentation: extracting MHETA's inputs from a single iteration.

The paper obtains MHETA's parameter values from two sources
(Section 4.1):

* **microbenchmarks** for quantities that are stable properties of the
  dedicated cluster — send/receive overheads, per-byte send latency, and
  per-node disk seek overheads (:mod:`repro.instrument.microbench`);
* **one instrumented iteration** of the application for
  application-specific costs — per-stage computation durations and
  per-variable I/O latencies — collected through MPI-Jack-style pre/post
  hooks around the runtime's I/O and communication calls
  (:mod:`repro.instrument.hooks`, :mod:`repro.instrument.collect`).

During the instrumented iteration every distributed variable is forced
to perform I/O (so latencies exist for variables that happen to be in
core under the instrumented distribution), and prefetch issues are
transparently turned into blocking reads with no-op waits so that read
latencies and overlap computation can both be timed (paper Figures 4-5).

The result is a :class:`~repro.instrument.inputs.MhetaInputs` record —
the paper's "internal MHETA file" — consumed by :mod:`repro.core`.
"""

from repro.instrument.hooks import HookRegistry
from repro.instrument.microbench import (
    Microbenchmarks,
    run_microbenchmarks,
)
from repro.instrument.inputs import (
    MhetaInputs,
    StageCost,
    VariableIOCost,
    NodeCosts,
)
from repro.instrument.collect import collect_inputs

__all__ = [
    "HookRegistry",
    "Microbenchmarks",
    "run_microbenchmarks",
    "MhetaInputs",
    "StageCost",
    "VariableIOCost",
    "NodeCosts",
    "collect_inputs",
]
