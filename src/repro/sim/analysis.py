"""Trace analysis: where did the time go?

Given a :class:`~repro.sim.trace.TraceCollector` from an emulated run,
these helpers compute per-node time breakdowns (compute / read / write /
send / receive-wait / idle), per-variable I/O volumes, and a textual
per-node utilisation report — the evidence one needs to understand *why*
a distribution is slow, and the emulator-side counterpart of MHETA's
per-component prediction breakdown.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.executor import RunResult
from repro.sim.trace import Op, TraceCollector
from repro.util.tables import render_table

__all__ = ["NodeBreakdown", "RunAnalysis", "analyse_run"]

#: Operations whose duration is CPU/disk busy time attributable to the
#: category named.
_BUSY_OPS = {
    Op.COMPUTE: "compute",
    Op.READ: "read",
    Op.WRITE: "write",
    Op.SEND: "send",
    Op.PREFETCH_WAIT: "prefetch_wait",
}


@dataclass(frozen=True)
class NodeBreakdown:
    """One node's time composition over a run."""

    node: int
    total_seconds: float
    compute_seconds: float
    read_seconds: float
    write_seconds: float
    send_seconds: float
    recv_seconds: float  #: blocked in receives (incl. overhead)
    prefetch_wait_seconds: float
    idle_seconds: float  #: anything unaccounted (collective skew, queueing)

    @property
    def io_seconds(self) -> float:
        return self.read_seconds + self.write_seconds + self.prefetch_wait_seconds

    @property
    def busy_fraction(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.compute_seconds / self.total_seconds


@dataclass(frozen=True)
class RunAnalysis:
    """Breakdown of a whole emulated run."""

    nodes: Tuple[NodeBreakdown, ...]
    io_bytes_by_variable: Dict[str, float]

    @property
    def bottleneck(self) -> NodeBreakdown:
        """The node carrying the most load (compute + I/O).  Collectives
        synchronise finish times, so the *loaded* node — not the one that
        happens to exit the last broadcast latest — is the useful notion
        of bottleneck."""
        return max(self.nodes, key=lambda n: n.compute_seconds + n.io_seconds)

    @property
    def mean_compute_utilisation(self) -> float:
        return sum(n.busy_fraction for n in self.nodes) / len(self.nodes)

    @property
    def imbalance(self) -> float:
        """Bottleneck compute time over mean compute time (1.0 = perfectly
        balanced computation)."""
        computes = [n.compute_seconds for n in self.nodes]
        mean = sum(computes) / len(computes)
        return max(computes) / mean if mean > 0 else 1.0

    def describe(self) -> str:
        rows = []
        for n in self.nodes:
            rows.append(
                [
                    n.node,
                    n.total_seconds,
                    n.compute_seconds,
                    n.io_seconds,
                    n.recv_seconds,
                    n.idle_seconds,
                    f"{n.busy_fraction:.0%}",
                ]
            )
        table = render_table(
            ["node", "total", "compute", "io", "recv-wait", "idle", "util"],
            rows,
            float_fmt=".3f",
            title=(
                f"Run analysis: bottleneck node {self.bottleneck.node}, "
                f"compute imbalance {self.imbalance:.2f}x, mean "
                f"utilisation {self.mean_compute_utilisation:.0%}"
            ),
        )
        if self.io_bytes_by_variable:
            io_rows = [
                [name, nbytes / 2**20]
                for name, nbytes in sorted(self.io_bytes_by_variable.items())
            ]
            table += "\n" + render_table(
                ["variable", "I/O MiB"], io_rows, float_fmt=".1f"
            )
        return table


def analyse_run(trace: TraceCollector, result: RunResult) -> RunAnalysis:
    """Aggregate a run's trace into per-node breakdowns.

    ``idle`` is the residual: the node's finish time minus every
    accounted duration — time spent blocked in collectives behind other
    nodes, or waiting on the disk queue.
    """
    n_nodes = len(result.per_node_seconds)
    busy: Dict[int, Dict[str, float]] = defaultdict(lambda: defaultdict(float))
    recv: Dict[int, float] = defaultdict(float)
    io_bytes: Dict[str, float] = defaultdict(float)

    for record in trace.records:
        if record.op in _BUSY_OPS:
            busy[record.node][_BUSY_OPS[record.op]] += record.duration
            if record.op in (Op.READ, Op.WRITE) and record.variable:
                io_bytes[record.variable] += record.nbytes
        elif record.op == Op.RECV:
            recv[record.node] += record.duration

    nodes: List[NodeBreakdown] = []
    for node in range(n_nodes):
        total = result.per_node_seconds[node]
        b = busy[node]
        accounted = (
            b["compute"]
            + b["read"]
            + b["write"]
            + b["send"]
            + b["prefetch_wait"]
            + recv[node]
        )
        nodes.append(
            NodeBreakdown(
                node=node,
                total_seconds=total,
                compute_seconds=b["compute"],
                read_seconds=b["read"],
                write_seconds=b["write"],
                send_seconds=b["send"],
                recv_seconds=recv[node],
                prefetch_wait_seconds=b["prefetch_wait"],
                idle_seconds=max(total - accounted, 0.0),
            )
        )
    return RunAnalysis(
        nodes=tuple(nodes), io_bytes_by_variable=dict(io_bytes)
    )
