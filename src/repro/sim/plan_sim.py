"""Compiled emulation plans: specialize the emulator per configuration.

The event-engine emulator re-interprets the program structure — section
loops, tile bounds, disk block streaming, message tags — on every run,
even though for a fixed ``(cluster, program, perturbation, policy)`` the
*shape* of the computation never changes and only the per-segment
durations depend on the candidate distribution.  An
:class:`EmulationPlan` performs that interpretation once and lowers the
fast-forward probe into three reusable artifacts:

1. **Skeleton** — every rank's per-iteration sequence of communication
   operations (sends, receives, iteration ends).  Each message's
   endpoints, tag and in-flight transfer time depend only on the program
   structure and the cluster size, never on row counts (zero-row nodes
   still run every exchange and ``message_bytes`` is a section
   constant), so one skeleton serves every GEN_BLOCK candidate.
2. **Schedule** — a flat, dependency-ordered instruction list over the
   skeleton (computed by an advance-until-blocked sweep), so replaying a
   probe needs no event heap: a send deposits into its channel slot, a
   receive takes a ``max`` with it, and per-node clocks march forward.
3. **Duration profiles** — the local time between consecutive
   communication ops of one rank, obtained by driving the *actual*
   executor node generator standalone (no engine) and accumulating its
   ``Delay`` requests.  Every delay the generator yields is independent
   of absolute time (disk ``free_at`` never exceeds the node clock at a
   yield point), so the standalone drive reproduces the engine's
   durations bit for bit.  Profiles are memoised per ``(rank, rows)`` —
   or per ``(rank, start, stop)`` when sparse row weights make absolute
   positions matter — so candidate populations share them.

Replaying the probe is then a vectorised recurrence over ``(B, P)``
clock arrays (scalar for a single candidate, numpy for a batch, with an
optional numba twin resolved under the same ``REPRO_PLAN_NUMBA`` gate as
the prediction plans), followed by the ordinary
:func:`repro.sim.steady.steady_deltas` convergence check and
closed-form extrapolation in the executor.

Safety: plans engage only where :func:`supports_fast_forward` already
allows the engine fast path, the first compiled candidate is
self-checked against a real event-engine probe to <= 1e-9, and any
broken assumption (skeleton mismatch, unmatched message, deadlocked
schedule) permanently retires the plan so the engine path takes over.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.engine import Delay, Recv, Send
from repro.sim.steady import FastForwardPolicy
from repro.util.lru import LRUCache

__all__ = [
    "EmulationPlan",
    "emulation_plan_key",
    "get_emulation_plan",
    "emulation_numba_active",
]

#: Instruction kinds of the compiled schedule.
_SEND, _RECV, _END = 0, 1, 2

#: Memoised duration profiles kept per plan (one per (rank, rows) seen).
PROFILE_CACHE_ENTRIES = 8192

#: Iterations a profile drive must simulate before the stationarity
#: shortcut may replicate the rest of the probe (one cold pass plus two
#: comparable warm iterations).
_SHORTCUT_DRIVEN = 3

#: Self-check tolerance: the compiled walk must reproduce a real engine
#: probe of the first candidate to this relative accuracy, or the plan
#: retires itself.
_SELF_CHECK_RTOL = 1e-9


class _PlanUnsupported(Exception):
    """Raised internally when a structural assumption breaks; the plan
    is retired and the engine path handles the run."""


# -- optional numba walk ------------------------------------------------------
#
# Same contract as repro.core.plan: strictly optional, resolved once,
# disabled by REPRO_PLAN_NUMBA=0, silent numpy fallback, and the jitted
# walk replays the numpy/scalar recurrence op for op (elementwise adds
# and two-way max), so all three modes return bit-identical clocks.

_numba_walk: Optional[Callable] = None
_numba_tried = False


def _numba_disabled() -> bool:
    return os.environ.get("REPRO_PLAN_NUMBA", "").strip().lower() in (
        "0", "false", "off", "no",
    )


def emulation_numba_active() -> bool:
    """Whether batched emulation walks are currently numba-compiled."""
    return _numba_walk is not None


def _resolve_numba_walk() -> Optional[Callable]:
    """Build (once) the jitted batched walk, or ``None`` when unavailable."""
    global _numba_walk, _numba_tried
    if _numba_tried:
        return _numba_walk
    _numba_tried = True
    if _numba_disabled():
        return None
    try:
        import numba
    except Exception:
        return None
    try:
        @numba.njit(cache=False)
        def _walk_jit(op_rank, op_kind, op_a, op_transfer, durs, P,
                      n_chan, n_iter):  # pragma: no cover - exercised
            # when numba is installed (CI matrix leg); semantics pinned
            # by the numpy twin in EmulationPlan._walk_batch.
            B, N = durs.shape
            clock = np.zeros((B, P))
            deliver = np.zeros((B, n_chan))
            ends = np.zeros((B, P, n_iter))
            for i in range(N):
                r = op_rank[i]
                k = op_kind[i]
                a = op_a[i]
                for b in range(B):
                    c = clock[b, r] + durs[b, i]
                    if k == _SEND:
                        deliver[b, a] = c + op_transfer[i]
                    elif k == _RECV:
                        d = deliver[b, a]
                        if d > c:
                            c = d
                    else:
                        ends[b, r, a] = c
                    clock[b, r] = c
            return ends

        _walk_jit(
            np.zeros(1, np.int64),
            np.full(1, _END, np.int64),
            np.zeros(1, np.int64),
            np.zeros(1),
            np.zeros((1, 1)),
            1, 1, 1,
        )  # warm the dispatcher so the first real walk pays no JIT
        _numba_walk = _walk_jit
    except Exception:
        _numba_walk = None
    return _numba_walk


def _reset_numba_for_tests() -> None:
    global _numba_walk, _numba_tried
    _numba_walk = None
    _numba_tried = False


# -- keys and the shared plan LRU ---------------------------------------------


def emulation_plan_key(cluster, program, perturbation,
                       policy: FastForwardPolicy) -> str:
    """Content key of one emulation plan in the shared plan LRU."""
    from repro.parallel.cache import content_key

    return "emulate:" + content_key(cluster, program, perturbation, policy)


def get_emulation_plan(cluster, program, perturbation,
                       policy: FastForwardPolicy,
                       telemetry=None) -> "EmulationPlan":
    """The process-wide :class:`EmulationPlan` for the configuration,
    compiled on first use and cached in the same LRU (and with the same
    compile telemetry) as the prediction plans."""
    from repro.core.plan import get_plan

    key = emulation_plan_key(cluster, program, perturbation, policy)
    return get_plan(
        None,
        telemetry,
        key=key,
        factory=lambda _model: EmulationPlan(
            cluster, program, perturbation, policy
        ),
    )


# -- the plan -----------------------------------------------------------------


class EmulationPlan:
    """One compiled probe replayer for ``(cluster, program,
    perturbation, policy)``; see the module docstring for the lowering.

    The constructor is cheap: skeleton discovery, schedule compilation
    and the engine self-check happen lazily on the first
    :meth:`probe_ends` call (they need a concrete candidate to drive).
    """

    def __init__(self, cluster, program, perturbation,
                 policy: FastForwardPolicy) -> None:
        self.cluster = cluster
        self.program = program
        self.perturbation = perturbation
        self.policy = policy
        #: Why the plan retired itself, or ``None`` while it is live.
        self.dead: Optional[str] = None
        self._lock = threading.RLock()
        self._compiled = False
        self._emulator = None
        #: (rank, rows[,start,stop]) -> np.ndarray of segment durations.
        self._profiles = LRUCache(PROFILE_CACHE_ENTRIES, threadsafe=True)
        # Absolute row positions only matter when the ground truth
        # weighs rows non-uniformly.
        self._position_dependent = bool(
            perturbation.sparse_weights and program.row_weights is not None
        )
        # Compiled artifacts (filled by _compile).
        self._rank_ops: List[List[tuple]] = []
        self._sched: List[Tuple[int, int, int, int, float]] = []
        self._positions: List[np.ndarray] = []
        self._iter_slices: List[List[Tuple[int, int]]] = []
        self._shortcut_ok: List[bool] = []
        self._n_channels = 0
        self._op_rank = self._op_kind = self._op_a = None
        self._op_transfer = None
        # Diagnostics.
        self.executes = 0
        self.batch_executes = 0
        self.profile_hits = 0
        self.profile_misses = 0
        self.shortcut_drives = 0
        self.full_drives = 0

    # -- public API -----------------------------------------------------------

    @property
    def probe_iterations(self) -> int:
        return self.policy.probe_iterations

    def probe_ends(self, distribution) -> Optional[List[List[float]]]:
        """Replay the probe for one candidate; ``[node][iteration]``
        completion times, or ``None`` when the plan cannot serve it."""
        profs = self._prepare(distribution)
        if profs is None:
            return None
        self.executes += 1
        return self._walk_scalar(profs)

    def probe_ends_batch(self, distributions) -> Optional[np.ndarray]:
        """Replay the probe for a whole population in one pass; a
        ``(B, P, probe_iterations)`` array of completion times, or
        ``None`` when the plan cannot serve the batch."""
        all_profs = []
        for dist in distributions:
            profs = self._prepare(dist)
            if profs is None:
                return None
            all_profs.append(profs)
        if not all_profs:
            return None
        self.batch_executes += 1
        return self._walk_batch(all_profs)

    @property
    def stats(self) -> dict:
        return {
            "dead": self.dead or "",
            "executes": self.executes,
            "batch_executes": self.batch_executes,
            "profiles": len(self._profiles),
            "profile_hits": self.profile_hits,
            "profile_misses": self.profile_misses,
            "shortcut_drives": self.shortcut_drives,
            "full_drives": self.full_drives,
            "schedule_ops": len(self._sched),
            "channels": self._n_channels,
            "numba_active": emulation_numba_active(),
        }

    # -- profiling ------------------------------------------------------------

    def _prepare(self, distribution) -> Optional[List[np.ndarray]]:
        """Compile on first use, then gather the candidate's per-rank
        duration profiles (memoised).  ``None`` retires or skips."""
        if self.dead is not None:
            return None
        if not self._compiled:
            with self._lock:
                if not self._compiled and self.dead is None:
                    try:
                        self._compile(distribution)
                    except _PlanUnsupported as exc:
                        self.dead = str(exc)
                    self._compiled = True
        if self.dead is not None:
            return None
        try:
            return [
                self._rank_profile(rank, distribution)
                for rank in range(self.cluster.n_nodes)
            ]
        except _PlanUnsupported as exc:
            self.dead = str(exc)
            return None

    def _profile_key(self, rank: int, distribution) -> tuple:
        start, stop = distribution.rows_of(rank)
        if self._position_dependent:
            return (rank, start, stop)
        return (rank, stop - start)

    def _rank_profile(self, rank: int, distribution) -> np.ndarray:
        key = self._profile_key(rank, distribution)
        prof = self._profiles.get(key)
        if prof is not None:
            self.profile_hits += 1
            return prof
        self.profile_misses += 1
        ops, durs = self._drive_rank(rank, distribution, shortcut=True)
        if list(ops) != self._rank_ops[rank][: len(ops)]:
            raise _PlanUnsupported(
                f"rank {rank} skeleton changed across candidates"
            )
        prof = self._finish_profile(rank, ops, durs)
        self._profiles.put(key, prof)
        return prof

    def _finish_profile(self, rank: int, ops: list,
                        durs: List[float]) -> np.ndarray:
        """Extend a (possibly shortcut) drive to the full probe length
        by replicating the last driven iteration's durations."""
        skeleton = self._rank_ops[rank]
        if len(ops) == len(skeleton):
            return np.asarray(durs, dtype=np.float64)
        lo, hi = self._iter_slices[rank][_SHORTCUT_DRIVEN - 1]
        cycle = durs[lo : hi + 1]
        out = list(durs)
        while len(out) < len(skeleton):
            out.extend(cycle)
        if len(out) != len(skeleton):
            raise _PlanUnsupported(
                f"rank {rank} shortcut replication misaligned"
            )
        return np.asarray(out, dtype=np.float64)

    def _make_emulator(self):
        if self._emulator is None:
            from repro.sim.executor import ClusterEmulator

            self._emulator = ClusterEmulator(
                self.cluster, self.program, self.perturbation, self.policy
            )
        return self._emulator

    def _drive_rank(self, rank: int, distribution, *,
                    shortcut: bool) -> Tuple[list, List[float]]:
        """Drive one rank's node generator standalone and split its
        timeline into (comm ops, preceding local durations).

        The driver answers every ``Delay`` with the advanced local
        clock and every ``Recv`` with the current clock (as if the
        message were already there) — legitimate because all yielded
        durations are independent of absolute time, so only the
        *segments between* communication points are being measured; the
        cross-node coupling is replayed later by the compiled walk.

        With ``shortcut`` enabled the drive stops after
        ``_SHORTCUT_DRIVEN`` iterations when (a) this rank's skeleton
        repeats structurally, (b) the last two driven iterations have
        bitwise-identical durations, and (c) no disk stream is still
        warming (a cold stream could cross its first-full-pass
        threshold in a later probe iteration and change durations, so
        it forces a full drive — mirroring what the engine probe would
        observe).
        """
        emulator = self._make_emulator()
        label = "x".join(map(str, distribution.counts))
        ctx = emulator._make_context(
            rank, distribution[rank], label, None, False
        )
        # The contexts argument of _node_process is unused by the body;
        # the generator only touches its own ctx and the distribution.
        gen = emulator._node_process(
            ctx, None, distribution, self.probe_iterations, False
        )
        ops: list = []
        durs: List[float] = []
        seg = 0.0
        t = 0.0
        ends_seen = 0
        may_stop = (
            shortcut
            and self._shortcut_ok[rank]
            and self.probe_iterations > _SHORTCUT_DRIVEN
        )
        try:
            req = next(gen)
            while True:
                while len(ctx.iteration_ends) > ends_seen:
                    ops.append(("E", ends_seen))
                    durs.append(seg)
                    seg = 0.0
                    ends_seen += 1
                    if may_stop and ends_seen == _SHORTCUT_DRIVEN:
                        if self._stationary(rank, ctx, durs):
                            gen.close()
                            self.shortcut_drives += 1
                            return ops, durs
                        may_stop = False
                kind = type(req)
                if kind is Delay:
                    seg += req.seconds
                    t += req.seconds
                    req = gen.send(t)
                elif kind is Send:
                    ops.append(("S", ctx.rank, req.dst, req.tag, req.transfer))
                    durs.append(seg)
                    seg = 0.0
                    req = gen.send(t)
                elif kind is Recv:
                    ops.append(("R", req.src, ctx.rank, req.tag))
                    durs.append(seg)
                    seg = 0.0
                    req = gen.send(t)
                else:
                    raise _PlanUnsupported(
                        f"unsupported request {kind.__name__} from rank {rank}"
                    )
        except StopIteration:
            pass
        while len(ctx.iteration_ends) > ends_seen:
            ops.append(("E", ends_seen))
            durs.append(seg)
            seg = 0.0
            ends_seen += 1
        if ends_seen != self.probe_iterations:
            raise _PlanUnsupported(
                f"rank {rank} produced {ends_seen} iteration ends, "
                f"expected {self.probe_iterations}"
            )
        self.full_drives += 1
        return ops, durs

    def _stationary(self, rank: int, ctx, durs: List[float]) -> bool:
        """May the remaining probe iterations be replicated from the
        last driven one?  See :meth:`_drive_rank`."""
        slices = self._iter_slices[rank]
        (lo1, hi1) = slices[_SHORTCUT_DRIVEN - 2]
        (lo2, hi2) = slices[_SHORTCUT_DRIVEN - 1]
        if durs[lo1 : hi1 + 1] != durs[lo2 : hi2 + 1]:
            return False
        disk = ctx.disk
        # Private DiskModel state, same package: a stream that has been
        # touched but is not yet warm may flip mid-probe.
        for name, streamed in disk._streamed.items():
            if streamed > 0 and not disk._warm.get(name, False):
                return False
        return True

    # -- compilation ----------------------------------------------------------

    def _compile(self, distribution) -> None:
        """Discover the skeleton from the first candidate, compile the
        dependency-ordered schedule, and self-check against a real
        engine probe."""
        emulator = self._make_emulator()
        P = self.cluster.n_nodes
        self._shortcut_ok = [False] * P  # no shortcut during discovery
        self._iter_slices = [[] for _ in range(P)]
        rank_ops: List[list] = []
        rank_durs: List[List[float]] = []
        for rank in range(P):
            ops, durs = self._drive_rank(rank, distribution, shortcut=False)
            rank_ops.append(ops)
            rank_durs.append(durs)
        self._rank_ops = rank_ops
        self._iter_slices = [self._slice_iterations(ops) for ops in rank_ops]
        self._shortcut_ok = [
            self._structurally_repeating(rank) for rank in range(P)
        ]
        self._compile_schedule()
        self._self_check(emulator, distribution, rank_durs)
        # The discovery drives double as the first candidate's profiles.
        for rank in range(P):
            self._profiles.put(
                self._profile_key(rank, distribution),
                np.asarray(rank_durs[rank], dtype=np.float64),
            )

    def _slice_iterations(self, ops: list) -> List[Tuple[int, int]]:
        """Per-iteration (first, last) op index ranges (END inclusive)."""
        slices = []
        start = 0
        for i, op in enumerate(ops):
            if op[0] == "E":
                slices.append((start, i))
                start = i + 1
        return slices

    def _iter_signature(self, ops: list, lo: int, hi: int) -> tuple:
        """Tag-free structural signature of one iteration's ops."""
        sig = []
        for op in ops[lo : hi + 1]:
            if op[0] == "S":
                sig.append(("S", op[2], op[4]))  # dst, transfer
            elif op[0] == "R":
                sig.append(("R", op[1]))  # src
            else:
                sig.append(("E",))
        return tuple(sig)

    def _structurally_repeating(self, rank: int) -> bool:
        """Do iterations ``_SHORTCUT_DRIVEN-1 .. probe-1`` share one
        op structure, making duration replication well defined?"""
        if self.probe_iterations <= _SHORTCUT_DRIVEN:
            return False
        ops = self._rank_ops[rank]
        slices = self._iter_slices[rank]
        ref = self._iter_signature(ops, *slices[_SHORTCUT_DRIVEN - 1])
        return all(
            self._iter_signature(ops, *slices[k]) == ref
            for k in range(_SHORTCUT_DRIVEN - 2, len(slices))
        )

    def _compile_schedule(self) -> None:
        """Lower the per-rank skeletons into one dependency-ordered
        instruction list plus dense channel slots."""
        P = len(self._rank_ops)
        channels: Dict[tuple, int] = {}
        sends: set = set()
        recvs: set = set()

        def chan_id(key: tuple) -> int:
            if key not in channels:
                channels[key] = len(channels)
            return channels[key]

        lowered: List[List[Tuple[int, int, float]]] = []
        for rank, ops in enumerate(self._rank_ops):
            row = []
            for op in ops:
                if op[0] == "S":
                    key = (op[1], op[2], op[3])  # (src, dst, tag)
                    if key in sends:
                        raise _PlanUnsupported(f"channel {key} sent twice")
                    sends.add(key)
                    row.append((_SEND, chan_id(key), op[4]))
                elif op[0] == "R":
                    key = (op[1], op[2], op[3])
                    if key in recvs:
                        raise _PlanUnsupported(
                            f"channel {key} received twice"
                        )
                    recvs.add(key)
                    row.append((_RECV, chan_id(key), 0.0))
                else:
                    row.append((_END, op[1], 0.0))
            lowered.append(row)
        if not recvs <= sends:
            raise _PlanUnsupported("receive without a matching send")
        self._n_channels = max(len(channels), 1)

        pos = [0] * P
        delivered: set = set()
        sched: List[Tuple[int, int, int, int, float]] = []
        total = sum(len(row) for row in lowered)
        while len(sched) < total:
            progress = False
            for rank in range(P):
                row = lowered[rank]
                while pos[rank] < len(row):
                    kind, a, transfer = row[pos[rank]]
                    if kind == _RECV and a not in delivered:
                        break
                    sched.append((rank, kind, a, pos[rank], transfer))
                    if kind == _SEND:
                        delivered.add(a)
                    pos[rank] += 1
                    progress = True
            if not progress:
                raise _PlanUnsupported("schedule deadlocked")
        self._sched = sched
        self._op_rank = np.fromiter(
            (s[0] for s in sched), np.int64, len(sched)
        )
        self._op_kind = np.fromiter(
            (s[1] for s in sched), np.int64, len(sched)
        )
        self._op_a = np.fromiter((s[2] for s in sched), np.int64, len(sched))
        self._op_transfer = np.fromiter(
            (s[4] for s in sched), np.float64, len(sched)
        )
        self._positions = [
            np.fromiter(
                (i for i, s in enumerate(sched) if s[0] == rank),
                np.int64,
                len(lowered[rank]),
            )
            for rank in range(P)
        ]

    def _self_check(self, emulator, distribution,
                    rank_durs: List[List[float]]) -> None:
        """Compare the compiled walk against one real engine probe."""
        profs = [np.asarray(d, dtype=np.float64) for d in rank_durs]
        plan_ends = self._walk_scalar(profs)
        engine = emulator._simulate(
            distribution, None, False, self.probe_iterations
        )
        for plan_row, engine_row in zip(plan_ends, engine.iteration_ends):
            if len(plan_row) != len(engine_row):
                raise _PlanUnsupported("self-check: iteration count differs")
            for a, b in zip(plan_row, engine_row):
                scale = max(abs(a), abs(b), 1e-30)
                if abs(a - b) / scale > _SELF_CHECK_RTOL:
                    raise _PlanUnsupported(
                        f"self-check diverged: plan {a!r} vs engine {b!r}"
                    )

    # -- walks ----------------------------------------------------------------

    def _walk_scalar(self, profs: Sequence[np.ndarray]) -> List[List[float]]:
        """Replay the probe for one candidate with plain floats.

        Bit-identical to one lane of :meth:`_walk_batch`: the op
        sequence is the same and every step is an IEEE double add or
        two-way max with no cross-lane interaction.
        """
        P = len(profs)
        durs = [p.tolist() for p in profs]
        clock = [0.0] * P
        deliver = [0.0] * self._n_channels
        ends: List[List[float]] = [
            [0.0] * self.probe_iterations for _ in range(P)
        ]
        for rank, kind, a, idx, transfer in self._sched:
            c = clock[rank] + durs[rank][idx]
            if kind == _SEND:
                deliver[a] = c + transfer
            elif kind == _RECV:
                d = deliver[a]
                if d > c:
                    c = d
            else:
                ends[rank][a] = c
            clock[rank] = c
        return ends

    def _walk_batch(
        self, all_profs: Sequence[Sequence[np.ndarray]]
    ) -> np.ndarray:
        """Replay the probe for ``B`` candidates over ``(B, P)`` clocks."""
        B = len(all_profs)
        P = len(self._positions)
        N = len(self._sched)
        durs = np.empty((B, N), dtype=np.float64)
        for rank in range(P):
            durs[:, self._positions[rank]] = np.stack(
                [all_profs[b][rank] for b in range(B)]
            )
        walk = _resolve_numba_walk()
        if walk is not None:
            return walk(
                self._op_rank, self._op_kind, self._op_a,
                self._op_transfer, durs, P, self._n_channels,
                self.probe_iterations,
            )
        clock = np.zeros((B, P))
        deliver = np.zeros((B, self._n_channels))
        ends = np.zeros((B, P, self.probe_iterations))
        for i, (rank, kind, a, _idx, transfer) in enumerate(self._sched):
            col = clock[:, rank]
            col += durs[:, i]
            if kind == _SEND:
                deliver[:, a] = col + transfer
            elif kind == _RECV:
                np.maximum(col, deliver[:, a], out=col)
            else:
                ends[:, rank, a] = col
        return ends
