"""Execution trace records emitted by the emulator.

The instrumentation layer (:mod:`repro.instrument`) consumes these the
way MPI-Jack consumes PMPI callbacks in the paper: each record carries
the ids of the enclosing parallel section, tile and stage, the variable
involved, and the measured duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = ["Op", "EventRecord", "TraceCollector"]


class Op:
    """Kinds of traced operations (string constants, not an enum, so the
    hot emulator path avoids enum overhead)."""

    COMPUTE = "compute"
    READ = "read"
    WRITE = "write"
    PREFETCH_ISSUE = "prefetch_issue"
    PREFETCH_WAIT = "prefetch_wait"
    SEND = "send"
    RECV = "recv"
    COLLECTIVE = "collective"
    ITERATION_END = "iteration_end"


@dataclass(frozen=True)
class EventRecord:
    """One traced operation."""

    op: str
    node: int
    iteration: int
    section: str
    tile: int
    stage: Optional[str]
    variable: Optional[str]
    start: float
    end: float
    nbytes: float = 0.0
    rows: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


Observer = Callable[[EventRecord], None]


class TraceCollector:
    """An observer that simply stores every record (tests, debugging)."""

    def __init__(self) -> None:
        self.records: List[EventRecord] = []

    def __call__(self, record: EventRecord) -> None:
        self.records.append(record)

    def of_kind(self, op: str) -> List[EventRecord]:
        return [r for r in self.records if r.op == op]

    def for_node(self, node: int) -> List[EventRecord]:
        return [r for r in self.records if r.node == node]

    def for_iteration(self, iteration: int) -> List[EventRecord]:
        return [r for r in self.records if r.iteration == iteration]

    def total(self, op: str, node: Optional[int] = None) -> float:
        """Sum of durations of ``op`` records (optionally one node's)."""
        return sum(
            r.duration
            for r in self.records
            if r.op == op and (node is None or r.node == node)
        )
