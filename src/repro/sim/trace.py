"""Execution trace records emitted by the emulator.

The instrumentation layer (:mod:`repro.instrument`) consumes these the
way MPI-Jack consumes PMPI callbacks in the paper: each record carries
the ids of the enclosing parallel section, tile and stage, the variable
involved, and the measured duration.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = [
    "Op",
    "EventRecord",
    "TraceCollector",
    "PhaseAccumulator",
    "chain_observers",
]


class Op:
    """Kinds of traced operations (string constants, not an enum, so the
    hot emulator path avoids enum overhead)."""

    COMPUTE = "compute"
    READ = "read"
    WRITE = "write"
    PREFETCH_ISSUE = "prefetch_issue"
    PREFETCH_WAIT = "prefetch_wait"
    SEND = "send"
    RECV = "recv"
    COLLECTIVE = "collective"
    ITERATION_END = "iteration_end"


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One traced operation."""

    op: str
    node: int
    iteration: int
    section: str
    tile: int
    stage: Optional[str]
    variable: Optional[str]
    start: float
    end: float
    nbytes: float = 0.0
    rows: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


Observer = Callable[[EventRecord], None]


class TraceCollector:
    """An observer that stores every record (tests, debugging).

    Records are additionally indexed by op kind, node and iteration as
    they arrive, so the accessor methods are O(result) instead of
    rescanning the full trace on every call — instrumentation-heavy
    tests and :mod:`repro.instrument` query these thousands of times.
    """

    def __init__(self) -> None:
        self.records: List[EventRecord] = []
        self._by_op: Dict[str, List[EventRecord]] = defaultdict(list)
        self._by_node: Dict[int, List[EventRecord]] = defaultdict(list)
        self._by_iteration: Dict[int, List[EventRecord]] = defaultdict(list)

    def __call__(self, record: EventRecord) -> None:
        self.records.append(record)
        self._by_op[record.op].append(record)
        self._by_node[record.node].append(record)
        self._by_iteration[record.iteration].append(record)

    def of_kind(self, op: str) -> List[EventRecord]:
        return list(self._by_op.get(op, ()))

    def for_node(self, node: int) -> List[EventRecord]:
        return list(self._by_node.get(node, ()))

    def for_iteration(self, iteration: int) -> List[EventRecord]:
        return list(self._by_iteration.get(iteration, ()))

    def total(self, op: str, node: Optional[int] = None) -> float:
        """Sum of durations of ``op`` records (optionally one node's)."""
        records = self._by_op.get(op, ())
        if node is None:
            return sum(r.end - r.start for r in records)
        return sum(r.end - r.start for r in records if r.node == node)


class PhaseAccumulator:
    """An observer that folds the event stream into per-node phase
    totals instead of storing records.

    Each record adds its duration to the ``(node, op)`` cell —
    constant memory however long the run — and ``ITERATION_END``
    records count completed iterations per node, so per-iteration phase
    means are ``totals[(n, op)] / iterations[n]``.  This is what the
    telemetry layer hangs off :attr:`_NodeCtx.observe`; unlike
    :class:`TraceCollector` it is safe to leave attached to long runs.
    """

    def __init__(self) -> None:
        self.totals: Dict[tuple, float] = defaultdict(float)
        self.counts: Dict[tuple, int] = defaultdict(int)
        self.iterations: Dict[int, int] = defaultdict(int)

    def __call__(self, record: EventRecord) -> None:
        key = (record.node, record.op)
        self.totals[key] += record.end - record.start
        self.counts[key] += 1
        if record.op == Op.ITERATION_END:
            self.iterations[record.node] += 1

    def record_into(self, rec, prefix: str = "sim") -> None:
        """Dump the accumulated phases into a ``repro.obs`` recorder:
        per-node gauges (``sim/node0/read/seconds``), per-op aggregate
        counters, and per-node iteration counts."""
        per_op_seconds: Dict[str, float] = defaultdict(float)
        per_op_events: Dict[str, int] = defaultdict(int)
        for (node, op), seconds in sorted(self.totals.items()):
            events = self.counts[(node, op)]
            rec.set(f"{prefix}/node{node}/{op}/seconds", seconds)
            rec.count(f"{prefix}/node{node}/{op}/events", events)
            per_op_seconds[op] += seconds
            per_op_events[op] += events
        for op, seconds in sorted(per_op_seconds.items()):
            rec.observe(
                f"{prefix}/phase/{op}", seconds, per_op_events[op]
            )
        for node, iters in sorted(self.iterations.items()):
            rec.set(f"{prefix}/node{node}/iterations", iters)


def chain_observers(*observers: Optional[Observer]) -> Optional[Observer]:
    """Compose observers into one callback (``None`` entries dropped);
    returns the single survivor unwrapped, or ``None`` when empty."""
    live = [obs for obs in observers if obs is not None]
    if not live:
        return None
    if len(live) == 1:
        return live[0]

    def chained(record: EventRecord) -> None:
        for obs in live:
            obs(record)

    return chained
