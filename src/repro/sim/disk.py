"""Per-node disk model with an OS page-cache approximation.

Synchronous reads/writes cost a seek plus a bandwidth-proportional
transfer.  The page cache captures the effect the paper observed in
configuration IO ("better than expected I/O performance of the remaining
iterations"): the emulated application memory is capped artificially, but
the *physical* machine still caches file pages, so once a variable's
out-of-core local array has been streamed once, a fraction of subsequent
reads is served from memory.

The cache model is deliberately simple and conservative:

* the first full pass over a variable is always cold;
* on later passes, a fraction ``effectiveness * min(1, cache_share /
  ocla_bytes)`` of each read is served at ``cache_bandwidth`` with no
  seek, where ``cache_share`` is the variable's proportional share of the
  node's page cache after the application's own resident set is
  subtracted (a cyclic scan through an array much larger than the cache
  sees almost no hits, matching LRU behaviour; a nearly-in-core array
  sees most of them);
* writes are write-through and never benefit.

The disk is a single serial device: asynchronous (prefetch) requests
queue behind whatever the disk is already doing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cluster.node import NodeSpec
from repro.exceptions import SimulationError

__all__ = ["DiskModel", "DiskOp"]


@dataclass(frozen=True)
class DiskOp:
    """A scheduled disk operation: done when the clock reaches ``done``."""

    start: float
    done: float
    nbytes: float
    cached_fraction: float


class DiskModel:
    """Serial disk + page cache for one node."""

    #: Bandwidth at which page-cache hits are served (memory copy speed).
    CACHE_BANDWIDTH = 600e6
    #: Fraction of theoretically cacheable bytes that actually hit.
    EFFECTIVENESS = 0.28

    def __init__(
        self,
        node: NodeSpec,
        resident_bytes: float = 0.0,
        cache_enabled: bool = True,
    ) -> None:
        self._node = node
        self._free_at = 0.0
        self._cache_enabled = cache_enabled
        #: Multiplier applied to every operation's service time; the
        #: emulator updates it per iteration when cluster dynamics
        #: degrade disk bandwidth.  Exactly 1.0 leaves durations
        #: untouched (bitwise), preserving static-run outputs.
        self.slowdown = 1.0
        # Page cache left after the application's resident set.
        self._cache_capacity = max(0.0, node.os_cache_bytes - resident_bytes)
        # Per-variable streaming state.
        self._ocla_bytes: Dict[str, float] = {}
        self._streamed: Dict[str, float] = {}
        self._warm: Dict[str, bool] = {}

    # -- configuration --------------------------------------------------------

    def register_variable(self, name: str, ocla_bytes: float) -> None:
        """Declare that ``name`` will be streamed from this disk with an
        out-of-core local array of ``ocla_bytes``."""
        if ocla_bytes < 0:
            raise SimulationError(f"{name}: negative OCLA")
        self._ocla_bytes[name] = ocla_bytes
        self._streamed[name] = 0.0
        self._warm[name] = False

    def cache_share(self, name: str) -> float:
        """Page-cache bytes notionally available to ``name``."""
        total = sum(self._ocla_bytes.values())
        if total <= 0:
            return self._cache_capacity
        return self._cache_capacity * self._ocla_bytes[name] / total

    def hit_fraction(self, name: str) -> float:
        """Fraction of a warm read of ``name`` served from the cache."""
        if not self._cache_enabled or not self._warm.get(name, False):
            return 0.0
        ocla = self._ocla_bytes.get(name, 0.0)
        if ocla <= 0:
            return 0.0
        return self.EFFECTIVENESS * min(1.0, self.cache_share(name) / ocla)

    # -- operations ------------------------------------------------------------

    def _advance_stream(self, name: str, nbytes: float) -> None:
        if name not in self._streamed:
            self.register_variable(name, nbytes)
        self._streamed[name] += nbytes
        ocla = self._ocla_bytes[name]
        if not self._warm[name] and ocla > 0 and self._streamed[name] >= ocla:
            self._warm[name] = True  # first full pass completed

    def read_duration(self, name: str, nbytes: float) -> float:
        """Seconds for a read of ``nbytes`` of ``name`` issued now,
        ignoring queueing (pure service time)."""
        frac = self.hit_fraction(name)
        cold = nbytes * (1.0 - frac)
        hot = nbytes * frac
        seek = self._node.disk_read_seek * (1.0 - frac)
        return seek + cold / self._node.disk_read_bw + hot / self.CACHE_BANDWIDTH

    def write_duration(self, nbytes: float) -> float:
        """Seconds for a write-through of ``nbytes``."""
        return self._node.disk_write_seek + nbytes / self._node.disk_write_bw

    def submit_read(self, now: float, name: str, nbytes: float) -> DiskOp:
        """Queue a read; returns the scheduled operation.  The caller
        blocks until ``op.done`` (synchronous) or continues computing and
        waits later (prefetch)."""
        frac = self.hit_fraction(name)
        duration = self.read_duration(name, nbytes)
        if self.slowdown != 1.0:
            duration *= self.slowdown
        self._advance_stream(name, nbytes)
        start = max(now, self._free_at)
        self._free_at = start + duration
        return DiskOp(
            start=start, done=self._free_at, nbytes=nbytes, cached_fraction=frac
        )

    def submit_write(self, now: float, name: str, nbytes: float) -> DiskOp:
        """Queue a write-through."""
        duration = self.write_duration(nbytes)
        if self.slowdown != 1.0:
            duration *= self.slowdown
        start = max(now, self._free_at)
        self._free_at = start + duration
        return DiskOp(
            start=start, done=self._free_at, nbytes=nbytes, cached_fraction=0.0
        )
