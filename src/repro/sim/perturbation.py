"""Ground-truth effects MHETA does not model.

The paper attributes MHETA's residual error to three inherent
limitations (Section 5.4) plus instrumented-iteration perturbation
(Section 5.2.1).  Each corresponding effect is a separately switchable
knob here, which the ablation benchmark flips one at a time:

* ``compute_noise``  — run-to-run computation jitter (OS scheduling,
  DVFS, TLB state); multiplicative lognormal noise per stage execution.
* ``cache_effects``  — the memory-hierarchy effect: a stage whose working
  set fits lower in the cache hierarchy runs a few percent faster.
  MHETA measures whatever factor the *instrumented* distribution had and
  cannot predict how it changes for other distributions (limitation 1).
* ``os_read_cache``  — handled in :mod:`repro.sim.disk`; the flag here
  enables it.
* ``sparse_weights`` — honour the program's ground-truth ``row_weights``
  (CG's per-row non-zeros).  MHETA scales computation by row count
  (limitation 3).
* ``runtime_overhead`` — the runtime's memory reservation that shifts
  the true in-core boundary away from the model's (limitation 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.cluster.dynamics import LoadTrace
from repro.cluster.node import NodeSpec
from repro.util.rng import stream

__all__ = ["PerturbationConfig", "PerturbationModel"]


@dataclass(frozen=True)
class PerturbationConfig:
    """Which ground-truth effects are active, and how strong they are."""

    compute_noise: bool = True
    noise_sigma: float = 0.004
    cache_effects: bool = True
    cache_amplitude: float = 0.02
    #: Working-set size at which the cache factor crosses neutral.
    cache_knee_bytes: float = 48e6
    os_read_cache: bool = True
    sparse_weights: bool = True
    runtime_overhead: bool = True
    #: Mean fraction of CPU stolen by competing jobs (0 = the paper's
    #: dedicated environment; Section 3.2 defers the non-dedicated case).
    background_load: float = 0.0
    #: Burstiness of the background load (std of its slow random walk).
    background_volatility: float = 0.5
    #: Persistence of the load process between stage executions (AR(1)
    #: coefficient): near 1 = slowly drifting competitor jobs.
    background_persistence: float = 0.9
    seed_label: str = "sim"

    def without(self, **flags: bool) -> "PerturbationConfig":
        """Copy with the given effect flags overridden (ablations)."""
        return replace(self, **flags)

    @classmethod
    def none(cls) -> "PerturbationConfig":
        """All effects off: the emulator then behaves exactly like the
        analytical model (used to validate the model's equations)."""
        return cls(
            compute_noise=False,
            cache_effects=False,
            os_read_cache=False,
            sparse_weights=False,
            runtime_overhead=False,
        )


@dataclass
class PerturbationModel:
    """Stateful sampler bound to one emulated run."""

    config: PerturbationConfig
    run_labels: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self._rng = stream(self.config.seed_label, *self.run_labels)
        # The background-load process samples its own dedicated RNG
        # stream (suffixed "background"), NOT the shared noise stream:
        # otherwise toggling ``compute_noise`` would shift which draws
        # the load process sees and change its trajectory, so noise and
        # load ablations would not compose.
        cfg = self.config
        if cfg.background_load > 0.0:
            trace = LoadTrace(
                mean=cfg.background_load,
                volatility=cfg.background_volatility,
                persistence=cfg.background_persistence,
                seed_label=cfg.seed_label,
            )
            self._load = trace.sampler(*self.run_labels, "background")
        else:
            self._load = None

    # -- computation ------------------------------------------------------

    def compute_factor(self, node: NodeSpec, working_set_bytes: float) -> float:
        """Deterministic speed factor for a stage execution: the
        memory-hierarchy effect.  < 1 means faster than nominal."""
        if not self.config.cache_effects:
            return 1.0
        amp = self.config.cache_amplitude
        knee = self.config.cache_knee_bytes
        ws = max(working_set_bytes, 1.0)
        # Smooth S-curve in log-space: small working sets run up to
        # ``amp`` faster, huge ones up to ``amp`` slower.
        x = (math.log(ws) - math.log(knee)) / math.log(16.0)
        s = math.tanh(x)
        return 1.0 + amp * s

    def noise_factor(self) -> float:
        """Multiplicative run-to-run jitter for one stage execution."""
        if not self.config.compute_noise:
            return 1.0
        sigma = self.config.noise_sigma
        return float(np.exp(self._rng.normal(0.0, sigma)))

    def background_factor(self) -> float:
        """Slowdown from competing jobs on a non-dedicated node.

        The load follows a slowly drifting AR(1) process
        (:class:`~repro.cluster.dynamics.LoadTrace`) around the
        configured mean; a stage that would take ``t`` seconds alone
        takes ``t / (1 - load)`` when a ``load`` fraction of the CPU is
        stolen.  With ``background_load == 0`` (the paper's dedicated
        environment) this is exactly 1 and no RNG draw is made.
        """
        if self._load is None:
            return 1.0
        return self._load.factor()

    # -- convenience -------------------------------------------------------

    def perturb_compute(
        self, node: NodeSpec, nominal_seconds: float, working_set_bytes: float
    ) -> float:
        """Apply cache factor, jitter and background load to a nominal
        compute duration."""
        return (
            nominal_seconds
            * self.compute_factor(node, working_set_bytes)
            * self.noise_factor()
            * self.background_factor()
        )
