"""A minimal generator-based discrete-event engine.

Processes are Python generators that ``yield`` request objects:

* :class:`Delay`  — advance this process's clock by ``seconds``;
* :class:`Send`   — deposit a message for ``(dst, tag)``; the message is
  *delivered* after the in-flight transfer time, but the sender resumes
  immediately (send overhead is charged by the caller as a Delay);
* :class:`Recv`   — block until a matching message has been delivered,
  then resume with the message payload;
* :class:`Spawn`  — start a new process (used for asynchronous I/O).

Every resume sends the process its current simulation time, so helper
sub-generators can track ``now`` without global state.  The engine is
deterministic: ties in the event heap break by insertion sequence.
"""

from __future__ import annotations

import heapq
import inspect
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generator, Iterable, List, Optional, Tuple

from repro.exceptions import SimulationError

__all__ = ["Delay", "Send", "Recv", "Spawn", "Engine"]

Process = Generator[Any, float, None]


@dataclass(frozen=True)
class Delay:
    """Advance the yielding process by ``seconds`` of simulated time."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0 or self.seconds != self.seconds:  # NaN guard
            raise SimulationError(f"invalid delay: {self.seconds}")


@dataclass(frozen=True)
class Send:
    """Deposit a message.

    ``transfer`` is the in-flight time: the message becomes available to
    the receiver at ``now + transfer``.  ``payload`` is handed to the
    matching :class:`Recv`.
    """

    dst: int
    tag: str
    transfer: float = 0.0
    payload: Any = None

    def __post_init__(self) -> None:
        if self.transfer < 0:
            raise SimulationError(f"negative transfer time: {self.transfer}")


@dataclass(frozen=True)
class Recv:
    """Block until a message from ``src`` with ``tag`` is delivered."""

    src: int
    tag: str


@dataclass(frozen=True)
class Spawn:
    """Start ``process`` as a sibling at the current time."""

    process: Process


@dataclass
class _Mailbox:
    """Messages delivered (or in flight) for one (dst, src, tag) channel."""

    queue: Deque[Tuple[float, Any]] = field(default_factory=deque)
    waiter: Optional[int] = None  # pid blocked on this channel


class Engine:
    """Run a set of processes to completion and report the end time.

    Parameters
    ----------
    trace_hook:
        Optional callable ``(time, pid, request)`` invoked for every
        request the engine dispatches; used by tests and debugging.
    """

    def __init__(self, trace_hook=None) -> None:
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self._procs: Dict[int, Process] = {}
        self._mail: Dict[Tuple[int, int, str], _Mailbox] = {}
        self._pid_node: Dict[int, int] = {}
        self._finish_times: Dict[int, float] = {}
        self._next_pid = 0
        self._trace_hook = trace_hook
        self.now = 0.0

    # -- setup ---------------------------------------------------------------

    def add_process(self, process: Process, node: int, start: float = 0.0) -> int:
        """Register ``process`` as belonging to ``node``; it starts at
        ``start`` seconds.  Returns the process id."""
        pid = self._next_pid
        self._next_pid += 1
        self._procs[pid] = process
        self._pid_node[pid] = node
        self._push(start, pid)
        return pid

    def _push(self, time: float, pid: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, pid, None))

    def _push_with_value(self, time: float, pid: int, value: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, pid, value))

    # -- mailboxes -----------------------------------------------------------

    def _box(self, dst: int, src: int, tag: str) -> _Mailbox:
        key = (dst, src, tag)
        box = self._mail.get(key)
        if box is None:
            box = _Mailbox()
            self._mail[key] = box
        return box

    # -- main loop -----------------------------------------------------------

    def run(self) -> float:
        """Dispatch until every process finishes.  Returns the latest
        finish time.  Raises :class:`SimulationError` on deadlock (blocked
        receivers with an empty event heap)."""
        while self._heap:
            time, _, pid, value = heapq.heappop(self._heap)
            if time < self.now - 1e-12:
                raise SimulationError("time went backwards (engine bug)")
            self.now = max(self.now, time)
            proc = self._procs.get(pid)
            if proc is None:
                continue
            self._advance(pid, proc, time, value)
        blocked = [
            key for key, box in self._mail.items() if box.waiter is not None
        ]
        if blocked:
            detail = ", ".join(
                f"node{dst}<-node{src}:{tag}" for dst, src, tag in blocked[:5]
            )
            raise SimulationError(f"deadlock: receivers blocked on {detail}")
        if not self._finish_times:
            return 0.0
        return max(self._finish_times.values())

    def _advance(self, pid: int, proc: Process, time: float, value: Any) -> None:
        """Resume ``proc`` at ``time``, dispatching requests until it
        blocks or finishes."""
        send_value: Any = time if value is None else value
        started = inspect.getgeneratorstate(proc) is not inspect.GEN_CREATED
        while True:
            try:
                if not started:
                    request = next(proc)
                    started = True
                else:
                    request = proc.send(send_value)
            except StopIteration:
                del self._procs[pid]
                self._finish_times[pid] = time
                return
            if self._trace_hook is not None:
                self._trace_hook(time, pid, request)
            if isinstance(request, Delay):
                if request.seconds == 0.0:
                    send_value = time
                    continue
                self._push(time + request.seconds, pid)
                return
            if isinstance(request, Send):
                node = self._pid_node[pid]
                box = self._box(request.dst, node, request.tag)
                deliver = time + request.transfer
                box.queue.append((deliver, request.payload))
                if box.waiter is not None:
                    waiter = box.waiter
                    box.waiter = None
                    d, payload = box.queue.popleft()
                    self._push_with_value(
                        max(d, time), waiter, _RecvResult(max(d, time), payload)
                    )
                send_value = time
                continue
            if isinstance(request, Recv):
                node = self._pid_node[pid]
                box = self._box(node, request.src, request.tag)
                if box.queue:
                    deliver, payload = box.queue.popleft()
                    if deliver <= time:
                        send_value = _RecvResult(time, payload)
                        continue
                    self._push_with_value(
                        deliver, pid, _RecvResult(deliver, payload)
                    )
                    return
                if box.waiter is not None:
                    raise SimulationError(
                        f"two processes receiving on node{node}"
                        f"<-node{request.src}:{request.tag}"
                    )
                box.waiter = pid
                return
            if isinstance(request, Spawn):
                self.add_process(request.process, self._pid_node[pid], time)
                send_value = time
                continue
            raise SimulationError(f"unknown request: {request!r}")


@dataclass(frozen=True)
class _RecvResult:
    """Value sent into a process resuming from a Recv: the current time
    plus the message payload.  Exposed via float conversion so helpers
    that only need the time can treat it like the plain-time resume."""

    time: float
    payload: Any

    def __float__(self) -> float:
        return self.time


def run_processes(processes: Iterable[Tuple[int, Process]]) -> float:
    """Convenience: run ``(node, process)`` pairs to completion."""
    engine = Engine()
    for node, proc in processes:
        engine.add_process(proc, node)
    return engine.run()
