"""A minimal generator-based discrete-event engine.

Processes are Python generators that ``yield`` request objects:

* :class:`Delay`  — advance this process's clock by ``seconds``;
* :class:`Send`   — deposit a message for ``(dst, tag)``; the message is
  *delivered* after the in-flight transfer time, but the sender resumes
  immediately (send overhead is charged by the caller as a Delay);
* :class:`Recv`   — block until a matching message has been delivered,
  then resume with the message payload;
* :class:`Spawn`  — start a new process (used for asynchronous I/O).

Every resume sends the process its current simulation time, so helper
sub-generators can track ``now`` without global state.  The engine is
deterministic: ties in the event heap break by insertion sequence.

The dispatch loop is the emulator's innermost hot path (one call per
yielded request), so it avoids generic-but-slow constructs: requests
dispatch through a type-keyed table instead of an ``isinstance`` chain,
generator startup is tracked with a per-pid flag instead of
``inspect.getgeneratorstate``, and the request/record dataclasses use
``slots``.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generator, Iterable, List, Optional, Set, Tuple

from repro.exceptions import SimulationError

__all__ = ["Delay", "Send", "Recv", "Spawn", "Engine"]

Process = Generator[Any, float, None]


@dataclass(frozen=True, slots=True)
class Delay:
    """Advance the yielding process by ``seconds`` of simulated time."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0 or self.seconds != self.seconds:  # NaN guard
            raise SimulationError(f"invalid delay: {self.seconds}")


@dataclass(frozen=True, slots=True)
class Send:
    """Deposit a message.

    ``transfer`` is the in-flight time: the message becomes available to
    the receiver at ``now + transfer``.  ``payload`` is handed to the
    matching :class:`Recv`.
    """

    dst: int
    tag: str
    transfer: float = 0.0
    payload: Any = None

    def __post_init__(self) -> None:
        if self.transfer < 0:
            raise SimulationError(f"negative transfer time: {self.transfer}")


@dataclass(frozen=True, slots=True)
class Recv:
    """Block until a message from ``src`` with ``tag`` is delivered."""

    src: int
    tag: str


@dataclass(frozen=True, slots=True)
class Spawn:
    """Start ``process`` as a sibling at the current time."""

    process: Process


@dataclass(slots=True)
class _Mailbox:
    """Messages delivered (or in flight) for one (dst, src, tag) channel."""

    queue: Deque[Tuple[float, Any]] = field(default_factory=deque)
    waiter: Optional[int] = None  # pid blocked on this channel


#: Type-keyed request dispatch: exact request classes map to small
#: integer codes checked in the hot loop.  Subclasses are admitted
#: lazily through :func:`_register_request_type` so the common case is
#: one dict lookup.
_DELAY, _SEND, _RECV, _SPAWN = 0, 1, 2, 3
_REQUEST_KIND: Dict[type, int] = {
    Delay: _DELAY,
    Send: _SEND,
    Recv: _RECV,
    Spawn: _SPAWN,
}


def _register_request_type(request: Any) -> Optional[int]:
    """Slow path for request types not yet in the dispatch table:
    subclasses of the four request kinds are registered under their
    concrete type; anything else returns ``None``."""
    for cls, kind in (
        (Delay, _DELAY),
        (Send, _SEND),
        (Recv, _RECV),
        (Spawn, _SPAWN),
    ):
        if isinstance(request, cls):
            _REQUEST_KIND[type(request)] = kind
            return kind
    return None


class Engine:
    """Run a set of processes to completion and report the end time.

    Parameters
    ----------
    trace_hook:
        Optional callable ``(time, pid, request)`` invoked for every
        request the engine dispatches; used by tests and debugging.
    """

    def __init__(self, trace_hook=None) -> None:
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self._procs: Dict[int, Process] = {}
        self._mail: Dict[Tuple[int, int, str], _Mailbox] = {}
        self._pid_node: Dict[int, int] = {}
        self._finish_times: Dict[int, float] = {}
        self._started: Set[int] = set()
        self._next_pid = 0
        self._trace_hook = trace_hook
        self.now = 0.0

    # -- setup ---------------------------------------------------------------

    def add_process(self, process: Process, node: int, start: float = 0.0) -> int:
        """Register ``process`` as belonging to ``node``; it starts at
        ``start`` seconds.  Returns the process id."""
        pid = self._next_pid
        self._next_pid += 1
        self._procs[pid] = process
        self._pid_node[pid] = node
        self._push(start, pid)
        return pid

    def _push(self, time: float, pid: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, pid, None))

    def _push_with_value(self, time: float, pid: int, value: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, pid, value))

    # -- mailboxes -----------------------------------------------------------

    def _box(self, dst: int, src: int, tag: str) -> _Mailbox:
        key = (dst, src, tag)
        box = self._mail.get(key)
        if box is None:
            box = _Mailbox()
            self._mail[key] = box
        return box

    # -- main loop -----------------------------------------------------------

    def run(self) -> float:
        """Dispatch until every process finishes.  Returns the latest
        finish time.  Raises :class:`SimulationError` on deadlock (blocked
        receivers with an empty event heap)."""
        heap = self._heap
        procs = self._procs
        pop = heapq.heappop
        advance = self._advance
        while heap:
            time, _, pid, value = pop(heap)
            if time < self.now - 1e-12:
                raise SimulationError("time went backwards (engine bug)")
            if time > self.now:
                self.now = time
            proc = procs.get(pid)
            if proc is None:
                continue
            advance(pid, proc, time, value)
        blocked = [
            key for key, box in self._mail.items() if box.waiter is not None
        ]
        if blocked:
            detail = ", ".join(
                f"node{dst}<-node{src}:{tag}" for dst, src, tag in blocked[:5]
            )
            raise SimulationError(f"deadlock: receivers blocked on {detail}")
        if not self._finish_times:
            return 0.0
        return max(self._finish_times.values())

    def _advance(self, pid: int, proc: Process, time: float, value: Any) -> None:
        """Resume ``proc`` at ``time``, dispatching requests until it
        blocks or finishes."""
        send_value: Any = time if value is None else value
        started = self._started
        first = pid not in started
        if first:
            started.add(pid)
        trace_hook = self._trace_hook
        kinds = _REQUEST_KIND
        while True:
            try:
                if first:
                    request = next(proc)
                    first = False
                else:
                    request = proc.send(send_value)
            except StopIteration:
                del self._procs[pid]
                started.discard(pid)
                self._finish_times[pid] = time
                return
            if trace_hook is not None:
                trace_hook(time, pid, request)
            kind = kinds.get(request.__class__)
            if kind is None:
                kind = _register_request_type(request)
                if kind is None:
                    raise SimulationError(f"unknown request: {request!r}")
            if kind == _DELAY:
                seconds = request.seconds
                if seconds == 0.0:
                    send_value = time
                    continue
                self._push(time + seconds, pid)
                return
            if kind == _SEND:
                node = self._pid_node[pid]
                box = self._box(request.dst, node, request.tag)
                deliver = time + request.transfer
                box.queue.append((deliver, request.payload))
                if box.waiter is not None:
                    waiter = box.waiter
                    box.waiter = None
                    d, payload = box.queue.popleft()
                    self._push_with_value(
                        max(d, time), waiter, _RecvResult(max(d, time), payload)
                    )
                send_value = time
                continue
            if kind == _RECV:
                node = self._pid_node[pid]
                box = self._box(node, request.src, request.tag)
                if box.queue:
                    deliver, payload = box.queue.popleft()
                    if deliver <= time:
                        send_value = _RecvResult(time, payload)
                        continue
                    self._push_with_value(
                        deliver, pid, _RecvResult(deliver, payload)
                    )
                    return
                if box.waiter is not None:
                    raise SimulationError(
                        f"two processes receiving on node{node}"
                        f"<-node{request.src}:{request.tag}"
                    )
                box.waiter = pid
                return
            # kind == _SPAWN
            self.add_process(request.process, self._pid_node[pid], time)
            send_value = time
            continue


@dataclass(frozen=True, slots=True)
class _RecvResult:
    """Value sent into a process resuming from a Recv: the current time
    plus the message payload.  Exposed via float conversion so helpers
    that only need the time can treat it like the plain-time resume."""

    time: float
    payload: Any

    def __float__(self) -> float:
        return self.time


def run_processes(processes: Iterable[Tuple[int, Process]]) -> float:
    """Convenience: run ``(node, process)`` pairs to completion."""
    engine = Engine()
    for node, proc in processes:
        engine.add_process(proc, node)
    return engine.run()
