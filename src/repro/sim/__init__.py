"""Discrete-event emulator of a heterogeneous cluster ("actual" runs).

The paper measures MHETA against real executions on an emulated
heterogeneous cluster (eight Dell Quad servers, Solaris, LAM-MPI).  This
package is our substitute substrate: a deterministic discrete-event
simulator that executes :class:`~repro.program.ProgramStructure`
applications under a given data distribution on a
:class:`~repro.cluster.ClusterSpec`, with

* per-block disk I/O (seek + transfer) including an OS page-cache model,
* blocking message passing with per-message overheads and transfer time,
* pipelined sections, boundary exchanges, tree reductions, ring
  allgathers,
* one-block-ahead asynchronous prefetching,
* and perturbations MHETA does not model: computation noise,
  memory-hierarchy (cache) effects, runtime memory overhead, and sparse
  row-weight imbalance.

The emulator is deliberately finer-grained than MHETA so that the
model's reported ~98% accuracy — and its failure modes from paper
Section 5.4 — are measured, not assumed.
"""

from repro.sim.engine import Engine, Delay, Send, Recv, Spawn
from repro.sim.disk import DiskModel
from repro.sim.memory import MemoryPlan, VariablePlacement, plan_memory
from repro.sim.perturbation import PerturbationConfig, PerturbationModel
from repro.sim.steady import FastForwardPolicy, supports_fast_forward
from repro.sim.executor import (
    IO_MODES,
    ClusterEmulator,
    RunResult,
    emulate,
    emulate_many,
    fast_forward_default,
    set_fast_forward_default,
)
from repro.sim.plan_sim import EmulationPlan, get_emulation_plan
from repro.sim.analysis import NodeBreakdown, RunAnalysis, analyse_run

__all__ = [
    "Engine",
    "Delay",
    "Send",
    "Recv",
    "Spawn",
    "DiskModel",
    "MemoryPlan",
    "VariablePlacement",
    "plan_memory",
    "PerturbationConfig",
    "PerturbationModel",
    "FastForwardPolicy",
    "supports_fast_forward",
    "IO_MODES",
    "ClusterEmulator",
    "RunResult",
    "emulate",
    "emulate_many",
    "EmulationPlan",
    "get_emulation_plan",
    "fast_forward_default",
    "set_fast_forward_default",
    "NodeBreakdown",
    "RunAnalysis",
    "analyse_run",
]
