"""Steady-state cycle detection and fast-forward for emulated runs.

A deterministic emulated run of an iteration-invariant program settles
into a cycle: after the pipeline fills and the OS page cache warms
(every out-of-core variable has been streamed through once), each
iteration's event schedule is an exact time-shifted copy of the
previous one, so every node's iteration-end times advance by a constant
per-node delta.  Simulating all N iterations through the event loop is
then pure repetition.

The fast path exploits this in two steps:

1. **Probe**: simulate only the first ``warmup + stable + 1``
   iterations through the full event loop.
2. **Detect + extrapolate**: if, past the warmup, the last ``stable``
   iteration-end deltas of *every* node agree within a tight tolerance,
   the remaining iterations are generated closed-form —
   ``end(i) = end(probe) + (i - probe) * delta`` — producing a
   :class:`~repro.sim.executor.RunResult` that matches full simulation
   to within floating-point accumulation error (the golden suite pins
   it at <= 1e-9 relative).

Eligibility is decided *structurally* first
(:func:`supports_fast_forward`): any stochastic perturbation
(computation noise, background load), a non-uniform iteration profile,
an attached observer (which must see every event) or an instrumented
run disqualifies the fast path up front.  Convergence detection is the
second, empirical gate: a workload that passes the structural check but
whose deltas have not settled in the probe window silently falls back
to full simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = [
    "FastForwardPolicy",
    "supports_fast_forward",
    "steady_deltas",
    "extrapolate_ends",
]


@dataclass(frozen=True)
class FastForwardPolicy:
    """Knobs of the cycle detector.

    Parameters
    ----------
    warmup:
        Iteration-end deltas discarded before stability is judged: the
        pipeline-fill and page-cache-warm transient.  (Measured across
        every seed app x cluster combination the transient is at most
        one delta; two adds safety margin.)
    stable:
        Number of consecutive trailing deltas, per node, that must
        agree for the run to count as converged (the paper-scale RNA
        pipeline needs more than one to rule out period-2 cycles).
    rel_tol, abs_tol:
        Tolerance for delta agreement.  Tight by design: the steady
        schedule repeats *exactly* up to floating-point rounding, so a
        loose tolerance would only mask genuine non-convergence.
    """

    warmup: int = 2
    stable: int = 4
    rel_tol: float = 1e-12
    abs_tol: float = 1e-15

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.stable < 2:
            raise ValueError(f"stable must be >= 2, got {self.stable}")

    @property
    def probe_iterations(self) -> int:
        """Iterations the probe must simulate: warmup deltas to discard
        plus ``stable`` deltas to judge (one delta needs two ends)."""
        return self.warmup + self.stable + 1


def supports_fast_forward(program, perturbation, *, observer=None,
                          instrumented: bool = False,
                          dynamics=None) -> bool:
    """Structural eligibility: is this run iteration-invariant and
    unobserved, so that cycle fast-forward *could* apply?

    * An observer must see every event of every iteration; skipping
      iterations would drop records.
    * Instrumented runs are single-iteration measurement passes.
    * A non-uniform ``iteration_profile`` changes the work per
      iteration — the schedule never repeats.
    * Computation noise and background load draw from the run's RNG
      stream on every stage execution: iterations differ by design,
      and skipping them would desynchronise the stream.
    * Cluster dynamics (a truthy
      :class:`~repro.cluster.dynamics.DynamicsSpec`) make node speeds
      a function of the iteration index — the run is non-stationary
      and the steady cycle never forms.
    """
    if observer is not None or instrumented:
        return False
    if program.iteration_profile is not None:
        return False
    if perturbation.compute_noise:
        return False
    if perturbation.background_load > 0.0:
        return False
    if dynamics:
        return False
    return True


def steady_deltas(
    iteration_ends: Sequence[Sequence[float]], policy: FastForwardPolicy
) -> Optional[List[float]]:
    """Per-node steady iteration-end delta, or ``None`` if any node has
    not converged.

    ``iteration_ends`` is the probe's ``[node][iteration]`` completion
    times.  A node converges when its last ``policy.stable`` deltas all
    agree with the final one within ``rel_tol``/``abs_tol``; the final
    delta is the extrapolation slope (it is the one the next full-sim
    iteration would reproduce).
    """
    deltas: List[float] = []
    for ends in iteration_ends:
        if len(ends) < policy.probe_iterations:
            return None
        tail = [
            ends[i] - ends[i - 1]
            for i in range(len(ends) - policy.stable, len(ends))
        ]
        ref = tail[-1]
        if ref < 0.0:  # a simulation clock never runs backwards
            return None
        tol = policy.rel_tol * abs(ref) + policy.abs_tol
        if any(abs(d - ref) > tol for d in tail):
            return None
        deltas.append(ref)
    return deltas


def extrapolate_ends(
    probe_ends: Sequence[float], delta: float, n_iterations: int
) -> List[float]:
    """Extend one node's probe iteration-end times to ``n_iterations``
    closed-form: ``end(k) = end(probe-1) + (k - probe + 1) * delta``."""
    ends = list(probe_ends)
    base = ends[-1]
    n_more = n_iterations - len(ends)
    if n_more > 32:
        # Vectorised tail — bitwise identical to the scalar loop:
        # int64 * float64 and float64 + float64 round exactly like
        # their Python-float counterparts, elementwise.
        import numpy as np

        ends.extend((base + np.arange(1, n_more + 1) * delta).tolist())
    else:
        ends.extend(base + (k + 1) * delta for k in range(n_more))
    return ends
