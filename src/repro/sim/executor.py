"""Execute a program under a distribution on an emulated cluster.

One generator process per node runs the program's parallel sections
iteration by iteration: stages stream out-of-core variables through the
node's disk in ICLA-sized blocks (synchronously or with one-block-ahead
prefetching), and sections close with the emulated communication pattern
(boundary exchange, pipeline, binomial-tree allreduce, ring allgather).

The emulator is the reproduction's stand-in for the paper's real
cluster: its output is the "Actual" series of Figures 9-11.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.cluster.cluster import ClusterSpec
from repro.cluster.dynamics import DynamicsSpec, DynamicsTimeline
from repro.distribution.genblock import GenBlock
from repro.exceptions import SimulationError
from repro.obs.deprecation import warn_once
from repro.placement import MemoryPlan
from repro.program.sections import CommPattern
from repro.program.stages import Stage
from repro.program.structure import ProgramStructure
from repro.sim.disk import DiskModel
from repro.sim.engine import Delay, Engine, Recv, Send
from repro.sim.memory import emulator_plan, plan_memory
from repro.sim.perturbation import PerturbationConfig, PerturbationModel
from repro.sim.steady import (
    FastForwardPolicy,
    extrapolate_ends,
    steady_deltas,
    supports_fast_forward,
)
from repro.sim.trace import (
    EventRecord,
    Observer,
    Op,
    PhaseAccumulator,
    chain_observers,
)

__all__ = [
    "ClusterEmulator",
    "RunResult",
    "emulate",
    "emulate_many",
    "set_fast_forward_default",
    "fast_forward_default",
]

#: CPU cost of issuing one asynchronous read (system-call overhead).
PREFETCH_ISSUE_OVERHEAD = 20e-6

#: Process-wide default for ``ClusterEmulator.run(fast_forward=None)``.
#: The CLI's ``--no-fast-forward`` flips it off for a whole invocation.
_FAST_FORWARD_DEFAULT = True


def set_fast_forward_default(enabled: bool) -> bool:
    """Set the process-wide fast-forward default; returns the previous
    value (so tests can restore it)."""
    global _FAST_FORWARD_DEFAULT
    previous = _FAST_FORWARD_DEFAULT
    _FAST_FORWARD_DEFAULT = bool(enabled)
    return previous


def fast_forward_default() -> bool:
    """The current process-wide fast-forward default."""
    return _FAST_FORWARD_DEFAULT


#: Sentinel distinguishing "not passed" from any real value in the
#: deprecated-keyword shims.
_UNSET = object()

#: Valid ``io_mode`` values for the consolidated emulation API.
IO_MODES = ("auto", "sync", "prefetch", "instrumented")


def _resolve_io_mode(io_mode: str) -> Tuple[bool, Optional[bool]]:
    """``io_mode`` -> ``(instrumented, prefetch_override)``.

    * ``"auto"`` — follow the program (prefetch iff it was built with
      prefetching); the default and the only mode compiled emulation
      plans serve.
    * ``"sync"`` / ``"prefetch"`` — force the streaming style of
      out-of-core stages regardless of how the program was built.
    * ``"instrumented"`` — the paper's measurement iteration: every
      distributed variable forced out of core, prefetches blocking.
    """
    if io_mode not in IO_MODES:
        raise SimulationError(
            f"unknown io_mode {io_mode!r}; choose from {IO_MODES}"
        )
    if io_mode == "instrumented":
        return True, None
    overrides = {"auto": None, "sync": False, "prefetch": True}
    return False, overrides[io_mode]


def _resolve_dynamics(
    cluster: ClusterSpec, dynamics
) -> Optional[DynamicsSpec]:
    """Effective dynamics for a run: an explicit spec wins, ``None``
    falls back to whatever is attached to the cluster, ``False`` forces
    the static path.  Empty (stationary) specs collapse to ``None``."""
    if dynamics is False:
        return None
    spec = cluster.dynamics if dynamics is None else dynamics
    return spec if spec else None


def _tile_bounds(start: int, stop: int, tiles: int, tile: int) -> Tuple[int, int]:
    """Rows of ``[start, stop)`` handled by ``tile`` (even partition)."""
    count = stop - start
    lo = start + (count * tile) // tiles
    hi = start + (count * (tile + 1)) // tiles
    return lo, hi


@dataclass
class RunResult:
    """Outcome of one emulated run."""

    total_seconds: float  #: wall time of the timed iterations, whole job
    per_node_seconds: List[float]  #: each node's own finish time
    iteration_ends: List[List[float]]  #: [node][iteration] completion time
    distribution: GenBlock
    iterations: int
    #: True when the tail of the run was extrapolated from a detected
    #: steady-state cycle instead of simulated event by event.
    fast_forwarded: bool = False

    @property
    def mean_iteration_seconds(self) -> float:
        return self.total_seconds / max(self.iterations, 1)

    def iteration_durations(self, node: int) -> List[float]:
        """Per-iteration durations for ``node``."""
        ends = self.iteration_ends[node]
        outs = []
        prev = 0.0
        for e in ends:
            outs.append(e - prev)
            prev = e
        return outs


def _observe_noop(*_args, **_kwargs) -> None:
    """Stand-in for :meth:`_NodeCtx._observe` on unobserved runs: a
    plain function, so the hot path pays one no-op call instead of an
    attribute check plus record construction."""
    return None


class _NodeCtx:
    """Per-node mutable execution state and generator helpers."""

    __slots__ = (
        "rank",
        "spec",
        "net",
        "disk",
        "plan",
        "now",
        "observer",
        "observe",
        "perturb",
        "replicated_bytes",
        "iteration_ends",
        "dyn_compute",
    )

    def __init__(self, rank, spec, net, disk, plan, observer, perturb, replicated):
        self.rank = rank
        self.spec = spec
        self.net = net
        self.disk = disk
        self.plan: MemoryPlan = plan
        self.now = 0.0
        self.observer: Optional[Observer] = observer
        self.observe = self._observe if observer is not None else _observe_noop
        self.perturb: PerturbationModel = perturb
        self.replicated_bytes = replicated
        self.iteration_ends: List[float] = []
        #: Duration multiplier from cluster dynamics for the current
        #: iteration; exactly 1.0 on static runs (never touched).
        self.dyn_compute = 1.0

    # -- tracing -----------------------------------------------------------

    def _observe(self, op, it, section, tile, stage, variable, start, nbytes=0.0, rows=0):
        self.observer(
            EventRecord(
                op=op,
                node=self.rank,
                iteration=it,
                section=section,
                tile=tile,
                stage=stage,
                variable=variable,
                start=start,
                end=self.now,
                nbytes=nbytes,
                rows=rows,
            )
        )

    # -- primitive generators -------------------------------------------------

    def cpu(self, seconds):
        if seconds > 0.0:
            self.now = float((yield Delay(seconds)))

    def sync_read(self, var, nbytes, it, section, tile, stage, rows=0):
        start = self.now
        op = self.disk.submit_read(self.now, var, nbytes)
        yield from self.cpu(op.done - self.now)
        self.observe(Op.READ, it, section, tile, stage, var, start, nbytes, rows)

    def sync_write(self, var, nbytes, it, section, tile, stage, rows=0):
        start = self.now
        op = self.disk.submit_write(self.now, var, nbytes)
        yield from self.cpu(op.done - self.now)
        self.observe(Op.WRITE, it, section, tile, stage, var, start, nbytes, rows)

    def compute(self, seconds, it, section, tile, stage):
        start = self.now
        yield from self.cpu(seconds)
        self.observe(Op.COMPUTE, it, section, tile, stage, None, start)

    def send_msg(self, dst, tag, nbytes, it, section, disk_source=None):
        # Materialise the message from disk when it lives in an
        # out-of-core array on this node (paper Section 4.2.2).
        if disk_source is not None:
            yield from self.sync_read(
                disk_source, nbytes, it, section, 0, None
            )
        start = self.now
        yield from self.cpu(self.net.send_overhead)
        yield Send(dst, tag, transfer=self.net.transfer_seconds(nbytes))
        self.observe(Op.SEND, it, section, 0, None, None, start, nbytes)

    def recv_msg(self, src, tag, it, section):
        start = self.now
        result = yield Recv(src, tag)
        self.now = float(result)
        yield from self.cpu(self.net.recv_overhead)
        self.observe(Op.RECV, it, section, 0, None, None, start)


class ClusterEmulator:
    """Emulate ``program`` on ``cluster``.

    Parameters
    ----------
    cluster, program:
        What to run and where.
    perturbation:
        Ground-truth effect configuration; defaults to all effects on
        (the honest emulator).  :meth:`PerturbationConfig.none` yields an
        idealised machine that matches MHETA's assumptions exactly.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        program: ProgramStructure,
        perturbation: Optional[PerturbationConfig] = None,
        fast_forward_policy: Optional[FastForwardPolicy] = None,
        dynamics=None,
    ) -> None:
        self.cluster = cluster
        self.program = program
        self.perturbation = (
            perturbation if perturbation is not None else PerturbationConfig()
        )
        self.fast_forward_policy = (
            fast_forward_policy
            if fast_forward_policy is not None
            else FastForwardPolicy()
        )
        #: Effective time-varying behaviour: an explicit spec, the
        #: cluster's attached one, or ``None`` (static).  ``False``
        #: forces static even on a dynamic cluster.
        self.dynamics = _resolve_dynamics(cluster, dynamics)
        # Resolved lazily and pinned: the plan LRU lookup hashes the
        # whole (cluster, program, perturbation) content on every call,
        # which would otherwise dominate a warm plan-served run.
        self._emulation_plan = None

    # -- public API ------------------------------------------------------------

    def run(
        self,
        distribution: GenBlock,
        *,
        iterations: Optional[int] = None,
        io_mode: str = "auto",
        fast_forward: Optional[bool] = None,
        observer: Optional[Observer] = None,
        telemetry=None,
        iteration_offset: int = 0,
        instrumented=_UNSET,
    ) -> RunResult:
        """Run the program and return timing.

        ``io_mode`` selects how out-of-core stages stream (see
        :data:`IO_MODES`): ``"auto"`` follows the program,
        ``"sync"``/``"prefetch"`` force a streaming style, and
        ``"instrumented"`` reproduces the paper's measurement iteration
        — every distributed variable forced out of core, prefetch
        issues turned into blocking reads (paper Figure 5).
        ``iterations`` overrides the program's iteration count (the
        instrumented run uses 1).

        ``fast_forward`` controls the steady-state cycle fast path
        (:mod:`repro.sim.steady`): ``None`` follows the process-wide
        default (on; see :func:`set_fast_forward_default`), ``False``
        forces full event-by-event simulation.  The fast path engages
        only for unobserved, deterministic, iteration-invariant,
        *stationary* runs whose probe converges — everything else
        (including any active cluster dynamics) falls back to full
        simulation automatically.

        ``iteration_offset`` emulates a mid-run segment: iterations
        ``[offset, offset + n)`` of the global schedule.  Dynamics
        factors and iteration profiles are indexed globally, so a
        segment sees exactly the conditions those iterations of a
        continuous run would (modulo cold pipeline/page-cache state at
        the segment boundary).  Offset segments never fast-forward.

        ``telemetry`` takes a :class:`repro.obs.Recorder` and records
        per-node phase totals (a :class:`PhaseAccumulator` chained into
        ``_NodeCtx.observe``) plus the fast-forward decision.  The
        accumulator does not count as an *observer* for fast-forward
        gating — it rides along on whatever iterations are actually
        simulated (the probe, under fast-forward), so enabling
        telemetry never changes the simulated timing or the decision.

        ``instrumented=`` is a deprecated alias for
        ``io_mode="instrumented"`` (warns once per process).
        """
        if instrumented is not _UNSET:
            warn_once(
                "ClusterEmulator.run(instrumented=)",
                'ClusterEmulator.run(io_mode="instrumented")',
            )
            if instrumented:
                io_mode = "instrumented"
        instr, io_override = _resolve_io_mode(io_mode)
        if distribution.n_nodes != self.cluster.n_nodes:
            raise SimulationError(
                f"distribution has {distribution.n_nodes} blocks for "
                f"{self.cluster.n_nodes} nodes"
            )
        if distribution.n_rows != self.program.n_rows:
            raise SimulationError(
                f"distribution covers {distribution.n_rows} rows, program "
                f"has {self.program.n_rows}"
            )
        if iteration_offset < 0:
            raise SimulationError(
                f"iteration_offset must be >= 0, got {iteration_offset}"
            )
        n_iter = iterations if iterations is not None else self.program.iterations

        timeline: Optional[DynamicsTimeline] = None
        if self.dynamics is not None:
            timeline = self.dynamics.compile(
                self.cluster.n_nodes, n_iter, iteration_offset
            )

        phase: Optional[PhaseAccumulator] = None
        sim_observer = observer
        if telemetry:
            phase = PhaseAccumulator()
            sim_observer = chain_observers(phase, observer)

        use_fast = _FAST_FORWARD_DEFAULT if fast_forward is None else fast_forward
        policy = self.fast_forward_policy
        if (
            use_fast
            and iteration_offset == 0
            and n_iter > policy.probe_iterations
            and supports_fast_forward(
                self.program,
                self.perturbation,
                observer=observer,
                instrumented=instr,
                dynamics=self.dynamics,
            )
        ):
            # Compiled-plan replay first: when this configuration's
            # EmulationPlan is live, the probe is a vectorised walk
            # over precompiled schedules instead of an event-engine
            # simulation; the convergence check and extrapolation are
            # the same.  Any plan miss (retired plan, non-converged
            # probe) falls through to the engine probe below.  Plans
            # are compiled for the program's own streaming style, so a
            # forced ``io_mode`` only rides them when it matches.
            if io_override is None or io_override == bool(self.program.prefetch):
                result = self._plan_fast_forward(
                    distribution, n_iter, policy, telemetry
                )
                if result is not None:
                    if telemetry:
                        self._record_run_telemetry(telemetry, phase, result)
                    return result
            # Probe the first few iterations; the probe's prefix is
            # identical to the full run's (messages never cross
            # iteration boundaries and no RNG is drawn), so on
            # convergence the tail extrapolates and on failure we
            # simply simulate from scratch.
            probe = self._simulate(
                distribution, sim_observer, instr,
                policy.probe_iterations, io_override=io_override,
            )
            deltas = steady_deltas(probe.iteration_ends, policy)
            if deltas is not None:
                result = self._fast_forward(probe, deltas, n_iter)
                if telemetry:
                    self._record_run_telemetry(telemetry, phase, result)
                return result
        result = self._simulate(
            distribution, sim_observer, instr, n_iter,
            timeline=timeline, offset=iteration_offset,
            io_override=io_override,
        )
        if telemetry:
            self._record_run_telemetry(telemetry, phase, result)
        return result

    @staticmethod
    def _record_run_telemetry(
        rec, phase: Optional[PhaseAccumulator], result: RunResult
    ) -> None:
        rec.count("sim/runs")
        rec.count(
            "sim/fast_forwarded" if result.fast_forwarded else "sim/full_runs"
        )
        rec.set("sim/iterations", result.iterations)
        rec.set("sim/total_seconds", result.total_seconds)
        if phase is not None:
            simulated = max(phase.iterations.values(), default=0)
            # Under fast-forward only the probe prefix was simulated;
            # phase totals cover those iterations (steady per-iteration
            # means still follow by dividing by this count).
            rec.set("sim/iterations_simulated", simulated)
            phase.record_into(rec)

    def _simulate(
        self,
        distribution: GenBlock,
        observer: Optional[Observer],
        instrumented: bool,
        n_iter: int,
        timeline: Optional[DynamicsTimeline] = None,
        offset: int = 0,
        io_override: Optional[bool] = None,
    ) -> RunResult:
        """Full event-by-event simulation of ``n_iter`` iterations."""
        engine = Engine()
        contexts = self._make_contexts(distribution, observer, instrumented)
        for ctx in contexts:
            engine.add_process(
                self._node_process(
                    ctx, contexts, distribution, n_iter, instrumented,
                    timeline, offset, io_override,
                ),
                node=ctx.rank,
            )
        total = engine.run()
        return RunResult(
            total_seconds=total,
            per_node_seconds=[
                ctx.iteration_ends[-1] if ctx.iteration_ends else 0.0
                for ctx in contexts
            ],
            iteration_ends=[list(ctx.iteration_ends) for ctx in contexts],
            distribution=distribution,
            iterations=n_iter,
        )

    def _fast_forward(
        self, probe: RunResult, deltas: List[float], n_iter: int
    ) -> RunResult:
        """Extend a converged probe to ``n_iter`` iterations closed-form."""
        return self._extrapolated_result(
            probe.distribution, probe.iteration_ends, deltas, n_iter
        )

    def _plan_fast_forward(
        self,
        distribution: GenBlock,
        n_iter: int,
        policy: FastForwardPolicy,
        telemetry=None,
    ) -> Optional[RunResult]:
        """Fast-forward via the compiled :class:`EmulationPlan`, or
        ``None`` when the plan cannot serve this run (the caller then
        takes the event-engine path).  Only called once the structural
        gate (:func:`supports_fast_forward`) has passed."""
        plan = self._emulation_plan
        if plan is None or plan.policy != policy:
            from repro.sim.plan_sim import get_emulation_plan

            plan = get_emulation_plan(
                self.cluster, self.program, self.perturbation, policy,
                telemetry,
            )
            self._emulation_plan = plan
        probe_ends = plan.probe_ends(distribution)
        if probe_ends is None:
            return None
        deltas = steady_deltas(probe_ends, policy)
        if deltas is None:
            return None
        if telemetry:
            telemetry.count("sim/plan_runs")
        return self._extrapolated_result(
            distribution, probe_ends, deltas, n_iter
        )

    def _extrapolated_result(
        self,
        distribution: GenBlock,
        probe_ends: List[List[float]],
        deltas: List[float],
        n_iter: int,
    ) -> RunResult:
        """Closed-form result from converged probe iteration ends."""
        iteration_ends = [
            extrapolate_ends(ends, delta, n_iter)
            for ends, delta in zip(probe_ends, deltas)
        ]
        per_node = [ends[-1] if ends else 0.0 for ends in iteration_ends]
        return RunResult(
            total_seconds=max(per_node) if per_node else 0.0,
            per_node_seconds=per_node,
            iteration_ends=iteration_ends,
            distribution=distribution,
            iterations=n_iter,
            fast_forwarded=True,
        )

    # -- setup -------------------------------------------------------------------

    def _make_context(
        self,
        rank: int,
        rows: int,
        counts_label: str,
        observer: Optional[Observer],
        instrumented: bool,
    ) -> _NodeCtx:
        """Execution state for one node given its row count.

        Everything here depends only on ``(rank, rows)`` (the
        ``counts_label`` only seeds RNG streams, which deterministic
        runs never draw) — the compiled emulation plans
        (:mod:`repro.sim.plan_sim`) rely on this to profile single
        ranks standalone.
        """
        program = self.program
        spec = self.cluster.nodes[rank]
        if self.perturbation.runtime_overhead:
            plan = emulator_plan(
                spec, program, rows, forced_out_of_core=instrumented
            )
        else:
            plan = plan_memory(
                program,
                rows,
                spec.memory_bytes,
                forced_out_of_core=instrumented,
            )
        resident = plan.resident_bytes + program.replicated_bytes
        disk = DiskModel(
            spec,
            resident_bytes=resident,
            cache_enabled=self.perturbation.os_read_cache,
        )
        for name, placement in plan.placements.items():
            if not placement.in_core:
                disk.register_variable(name, placement.ocla_bytes)
        perturb = PerturbationModel(
            self.perturbation,
            run_labels=(
                self.cluster.name,
                program.name,
                counts_label,
                rank,
                "instr" if instrumented else "run",
            ),
        )
        return _NodeCtx(
            rank,
            spec,
            self.cluster.network,
            disk,
            plan,
            observer,
            perturb,
            program.replicated_bytes,
        )

    def _make_contexts(
        self,
        distribution: GenBlock,
        observer: Optional[Observer],
        instrumented: bool,
    ) -> List[_NodeCtx]:
        label = "x".join(map(str, distribution.counts))
        return [
            self._make_context(
                rank, distribution[rank], label, observer, instrumented
            )
            for rank in range(self.cluster.n_nodes)
        ]

    # -- node program ---------------------------------------------------------------

    def _node_process(
        self, ctx, contexts, distribution, n_iter, instrumented,
        timeline=None, offset=0, io_override=None,
    ):
        program = self.program
        for local_it in range(n_iter):
            it = local_it + offset
            if timeline is not None:
                ctx.dyn_compute = timeline.compute_multiplier(ctx.rank, it)
                ctx.disk.slowdown = timeline.disk_slowdown(ctx.rank, it)
            for si, section in enumerate(program.sections):
                yield from self._run_section(
                    ctx, distribution, it, si, section, instrumented,
                    io_override,
                )
            ctx.iteration_ends.append(ctx.now)
            ctx.observe(
                Op.ITERATION_END, it, "", 0, None, None, ctx.now
            )

    def _run_section(
        self, ctx, distribution, it, si, section, instrumented,
        io_override=None,
    ):
        pattern = section.comm.pattern
        rank = ctx.rank
        P = self.cluster.n_nodes

        if pattern is CommPattern.PIPELINE and P > 1:
            nbytes = section.comm.message_bytes
            for tile in range(section.tiles):
                if rank > 0:
                    yield from ctx.recv_msg(
                        rank - 1, f"{it}:{si}:pipe:{tile}", it, section.name
                    )
                yield from self._run_stages(
                    ctx, distribution, it, si, section, tile, instrumented,
                    io_override,
                )
                if rank < P - 1:
                    yield from ctx.send_msg(
                        rank + 1,
                        f"{it}:{si}:pipe:{tile}",
                        nbytes,
                        it,
                        section.name,
                    )
            return

        for tile in range(section.tiles):
            yield from self._run_stages(
                ctx, distribution, it, si, section, tile, instrumented,
                io_override,
            )

        if P == 1 or pattern is CommPattern.NONE:
            return
        if pattern is CommPattern.NEAREST_NEIGHBOR:
            yield from self._nearest_neighbor(ctx, it, si, section)
        elif pattern is CommPattern.REDUCTION:
            yield from self._reduce_bcast(ctx, it, si, section)
        elif pattern is CommPattern.ALLGATHER:
            yield from self._allgather(ctx, it, si, section)
        elif pattern is CommPattern.PIPELINE:
            return  # single node: nothing to pipe to
        else:  # pragma: no cover - exhaustiveness guard
            raise SimulationError(f"unknown pattern {pattern}")

    # -- communication patterns ---------------------------------------------------

    def _nn_disk_source(self, ctx, section) -> Optional[str]:
        """Disk source for boundary messages: the section's source
        variable, when it is out of core on this node."""
        src = section.comm.source_variable
        if src is None:
            return None
        placement = ctx.plan.placements.get(src)
        if placement is not None and not placement.in_core:
            return src
        return None

    def _nearest_neighbor(self, ctx, it, si, section):
        rank, P = ctx.rank, self.cluster.n_nodes
        nbytes = section.comm.message_bytes
        disk_source = self._nn_disk_source(ctx, section)
        neighbors = [r for r in (rank - 1, rank + 1) if 0 <= r < P]
        for nb in neighbors:
            yield from ctx.send_msg(
                nb, f"{it}:{si}:nn", nbytes, it, section.name, disk_source
            )
        for nb in neighbors:
            yield from ctx.recv_msg(nb, f"{it}:{si}:nn", it, section.name)

    def _reduce_bcast(self, ctx, it, si, section):
        """Binomial-tree reduce to node 0, binomial broadcast back."""
        rank, P = ctx.rank, self.cluster.n_nodes
        nbytes = section.comm.message_bytes
        start = ctx.now
        mask = 1
        while mask < P:
            if rank & mask:
                yield from ctx.send_msg(
                    rank - mask, f"{it}:{si}:red:{mask}", nbytes, it, section.name
                )
                break
            partner = rank | mask
            if partner < P:
                yield from ctx.recv_msg(
                    partner, f"{it}:{si}:red:{mask}", it, section.name
                )
            mask <<= 1
        pot = 1
        while pot < P:
            pot <<= 1
        mask = pot >> 1
        while mask > 0:
            if rank % (2 * mask) == 0:
                if rank + mask < P:
                    yield from ctx.send_msg(
                        rank + mask, f"{it}:{si}:bc:{mask}", nbytes, it, section.name
                    )
            elif rank % (2 * mask) == mask:
                yield from ctx.recv_msg(
                    rank - mask, f"{it}:{si}:bc:{mask}", it, section.name
                )
            mask >>= 1
        ctx.observe(
            Op.COLLECTIVE, it, section.name, 0, None, None, start, nbytes
        )

    def _allgather(self, ctx, it, si, section):
        """Ring allgather: P-1 steps, passing a fixed chunk around."""
        rank, P = ctx.rank, self.cluster.n_nodes
        nbytes = section.comm.message_bytes
        start = ctx.now
        right = (rank + 1) % P
        left = (rank - 1) % P
        for step in range(P - 1):
            yield from ctx.send_msg(
                right, f"{it}:{si}:ag:{step}", nbytes, it, section.name
            )
            yield from ctx.recv_msg(left, f"{it}:{si}:ag:{step}", it, section.name)
        ctx.observe(
            Op.COLLECTIVE, it, section.name, 0, None, None, start, nbytes
        )

    # -- stages -------------------------------------------------------------------

    def _stage_compute_seconds(
        self, ctx, it, section, stage, tile_lo, tile_hi, node_rows
    ) -> float:
        """Ground-truth (perturbed) compute seconds for one stage on one
        tile's rows during iteration ``it``.

        The stage's ``fixed_work`` is an aggregate cost distributed with
        the global rows (a zero-row node does none of it), keeping all
        ground-truth work in the row-proportional regime MHETA models.
        """
        program = self.program
        if self.perturbation.sparse_weights and program.row_weights is not None:
            weight = program.weight_of_rows(tile_lo, tile_hi)
        else:
            weight = float(tile_hi - tile_lo)
        row_fraction = (tile_hi - tile_lo) / program.n_rows
        work = stage.work_per_row * weight + stage.fixed_work * row_fraction
        if it < program.iterations:
            work *= program.iteration_multiplier(it)
        nominal = ctx.spec.compute_seconds(work)
        ws = self._working_set_bytes(ctx, stage)
        seconds = ctx.perturb.perturb_compute(ctx.spec, nominal, ws)
        if ctx.dyn_compute != 1.0:
            seconds *= ctx.dyn_compute
        return seconds

    def _working_set_bytes(self, ctx, stage: Stage) -> float:
        ws = float(ctx.replicated_bytes)
        for name in stage.touched:
            placement = ctx.plan.placements.get(name)
            if placement is None:
                continue  # replicated, already counted
            ws += placement.local_bytes if placement.in_core else placement.icla_bytes
        return ws

    def _run_stages(
        self, ctx, distribution, it, si, section, tile, instrumented,
        io_override=None,
    ):
        start_row, stop_row = distribution.rows_of(ctx.rank)
        tile_lo, tile_hi = _tile_bounds(start_row, stop_row, section.tiles, tile)
        node_rows = stop_row - start_row
        for stage in section.stages:
            yield from self._run_stage(
                ctx, it, section, stage, tile, tile_lo, tile_hi, node_rows,
                instrumented, io_override,
            )

    def _run_stage(
        self, ctx, it, section, stage, tile, tile_lo, tile_hi, node_rows,
        instrumented, io_override=None,
    ):
        program = self.program
        total_compute = self._stage_compute_seconds(
            ctx, it, section, stage, tile_lo, tile_hi, node_rows
        )
        var_map = program.variable_map

        def _ooc(name: str) -> bool:
            p = ctx.plan.placements.get(name)
            return p is not None and not p.in_core

        reads_ooc = [v for v in stage.reads if _ooc(v)]
        writes_ooc = [v for v in stage.writes if _ooc(v)]
        primary = reads_ooc[0] if reads_ooc else None
        tile_rows = tile_hi - tile_lo

        # Secondary out-of-core reads: streamed synchronously up front.
        for name in reads_ooc[1:]:
            yield from self._stream_var(
                ctx, name, tile_rows, it, section.name, tile, stage.name, write=False
            )

        if primary is None or tile_rows == 0:
            yield from ctx.compute(
                total_compute, it, section.name, tile, stage.name
            )
        else:
            write_back = primary in stage.writes and var_map[primary].writes_back
            prefetch = (
                program.prefetch if io_override is None else io_override
            )
            use_prefetch = prefetch and not instrumented
            yield from self._primary_loop(
                ctx,
                primary,
                tile_rows,
                total_compute,
                write_back,
                use_prefetch,
                it,
                section.name,
                tile,
                stage.name,
            )

        # Remaining out-of-core writes stream out after the compute
        # (the primary read-write variable was written back block by block).
        for name in writes_ooc:
            if name == primary:
                continue
            yield from self._stream_var(
                ctx, name, tile_rows, it, section.name, tile, stage.name,
                write=True, read=False,
            )

    def _blocks(self, ctx, name: str, tile_rows: int) -> List[int]:
        """Row counts of the ICLA blocks streaming ``tile_rows`` of ``name``."""
        block_rows = ctx.plan.placements[name].block_rows
        blocks = []
        remaining = tile_rows
        while remaining > 0:
            take = min(block_rows, remaining)
            blocks.append(take)
            remaining -= take
        return blocks

    def _stream_var(
        self, ctx, name, tile_rows, it, section, tile, stage, *,
        write: bool, read: bool = True,
    ):
        """Synchronously stream a variable's tile share block by block."""
        if tile_rows == 0:
            return
        row_bytes = self.program.variable(name).row_bytes
        for rows in self._blocks(ctx, name, tile_rows):
            nbytes = rows * row_bytes
            if read:
                yield from ctx.sync_read(name, nbytes, it, section, tile, stage, rows)
            if write:
                yield from ctx.sync_write(name, nbytes, it, section, tile, stage, rows)

    def _primary_loop(
        self, ctx, name, tile_rows, total_compute, write_back, use_prefetch,
        it, section, tile, stage,
    ):
        """Stream the primary variable, interleaving the stage's compute.

        Synchronous: read block, compute its share, write it back.
        Prefetching: the unrolled loop of paper Figure 6 — read block 1,
        then issue the next read asynchronously while computing on the
        current block.
        """
        row_bytes = self.program.variable(name).row_bytes
        blocks = self._blocks(ctx, name, tile_rows)
        shares = [total_compute * b / tile_rows for b in blocks]

        if not use_prefetch or len(blocks) == 1:
            for rows, share in zip(blocks, shares):
                nbytes = rows * row_bytes
                yield from ctx.sync_read(name, nbytes, it, section, tile, stage, rows)
                yield from ctx.compute(share, it, section, tile, stage)
                if write_back:
                    yield from ctx.sync_write(
                        name, nbytes, it, section, tile, stage, rows
                    )
            return

        # Unrolled prefetch loop.
        nbytes0 = blocks[0] * row_bytes
        yield from ctx.sync_read(name, nbytes0, it, section, tile, stage, blocks[0])
        pending = None  # DiskOp for the block being prefetched
        for i in range(1, len(blocks)):
            nbytes = blocks[i] * row_bytes
            issue_start = ctx.now
            yield from ctx.cpu(PREFETCH_ISSUE_OVERHEAD)
            pending = ctx.disk.submit_read(ctx.now, name, nbytes)
            ctx.observe(
                Op.PREFETCH_ISSUE, it, section, tile, stage, name,
                issue_start, nbytes, blocks[i],
            )
            # Overlapping computation on the previous block.
            yield from ctx.compute(shares[i - 1], it, section, tile, stage)
            wait_start = ctx.now
            if pending.done > ctx.now:
                yield from ctx.cpu(pending.done - ctx.now)
            ctx.observe(
                Op.PREFETCH_WAIT, it, section, tile, stage, name,
                wait_start, nbytes, blocks[i],
            )
            if write_back:
                prev_bytes = blocks[i - 1] * row_bytes
                yield from ctx.sync_write(
                    name, prev_bytes, it, section, tile, stage, blocks[i - 1]
                )
        yield from ctx.compute(shares[-1], it, section, tile, stage)
        if write_back:
            last_bytes = blocks[-1] * row_bytes
            yield from ctx.sync_write(
                name, last_bytes, it, section, tile, stage, blocks[-1]
            )


# -- module-level convenience ---------------------------------------------------


def _copy_result(result: RunResult) -> RunResult:
    """Fresh copy with private mutable lists (cache-safe to hand out)."""
    return dataclasses.replace(
        result,
        per_node_seconds=list(result.per_node_seconds),
        iteration_ends=[list(ends) for ends in result.iteration_ends],
    )


def _legacy_emulate_kwargs(entry, io_mode, run_cache, instrumented, cache):
    """Map the deprecated ``instrumented=``/``cache=`` keywords onto the
    consolidated ``io_mode=``/``run_cache=`` ones, warning once each."""
    if instrumented is not _UNSET:
        warn_once(
            f"{entry}(instrumented=)", f'{entry}(io_mode="instrumented")'
        )
        if instrumented:
            io_mode = "instrumented"
    if cache is not _UNSET:
        warn_once(f"{entry}(cache=)", f"{entry}(run_cache=)")
        run_cache = cache
    return io_mode, run_cache


def emulate(
    cluster: ClusterSpec,
    program: ProgramStructure,
    distribution: GenBlock,
    *,
    iterations: Optional[int] = None,
    io_mode: str = "auto",
    perturbation: Optional[PerturbationConfig] = None,
    dynamics=None,
    fast_forward: Optional[bool] = None,
    run_cache: Union[None, bool, "object"] = None,
    telemetry=None,
    observer: Optional[Observer] = None,
    iteration_offset: int = 0,
    instrumented=_UNSET,
    cache=_UNSET,
) -> RunResult:
    """One emulated run, memoised in the shared content-keyed run cache.

    This is the single keyword-driven entry point for emulation (the
    emulator-side mirror of the consolidated ``predict()``):

    * ``io_mode`` — ``"auto"`` | ``"sync"`` | ``"prefetch"`` |
      ``"instrumented"`` (see :meth:`ClusterEmulator.run`);
    * ``dynamics`` — ``None`` honours whatever
      :class:`~repro.cluster.dynamics.DynamicsSpec` is attached to the
      cluster, an explicit spec overrides it, ``False`` forces the
      static path;
    * ``run_cache`` — ``None`` (default) uses the process-wide
      :func:`repro.parallel.cache.default_run_cache`, ``False``
      bypasses caching entirely, any
      :class:`repro.parallel.cache.RunCache` instance is used directly;
    * ``iteration_offset`` — emulate a mid-run segment (global
      iteration indexing; see :meth:`ClusterEmulator.run`).

    An emulated run is a pure function of ``(cluster, program,
    distribution, iterations, perturbation, dynamics, io_mode)`` — even
    the perturbed and dynamic ones, whose RNG streams are seeded from
    those labels — so identical configurations across experiment
    panels, benchmark repetitions and adaptive-runtime rounds share one
    simulation.  Observed runs always bypass the cache (the observer's
    callbacks are the point of the run).  Hits return a defensive copy,
    so callers may mutate the result freely.

    ``telemetry`` takes a :class:`repro.obs.Recorder`: run-cache
    hit/miss counters land under ``sim/run_cache/``, and cache misses
    record the run's phase telemetry (see :meth:`ClusterEmulator.run`).
    A hit performs no simulation, so only the counters move.

    ``instrumented=`` and ``cache=`` are deprecated aliases for
    ``io_mode="instrumented"`` and ``run_cache=`` (each warns once).
    """
    io_mode, run_cache = _legacy_emulate_kwargs(
        "emulate", io_mode, run_cache, instrumented, cache
    )
    instr, _ = _resolve_io_mode(io_mode)
    dyn = _resolve_dynamics(cluster, dynamics)
    # dyn is fully resolved; False stops the emulator's own
    # cluster-attached fallback from re-resolving a None.
    emulator = ClusterEmulator(
        cluster, program, perturbation, dynamics=dyn if dyn is not None else False
    )
    if observer is not None or run_cache is False:
        if telemetry:
            telemetry.count("sim/run_cache/bypasses")
        return emulator.run(
            distribution,
            iterations=iterations,
            io_mode=io_mode,
            fast_forward=fast_forward,
            observer=observer,
            telemetry=telemetry,
            iteration_offset=iteration_offset,
        )

    from repro.parallel.cache import RunCache, default_run_cache

    store = default_run_cache() if run_cache is None else run_cache
    n_iter = iterations if iterations is not None else program.iterations
    use_fast = _FAST_FORWARD_DEFAULT if fast_forward is None else bool(fast_forward)
    key = RunCache.key(
        cluster,
        program,
        distribution,
        n_iter,
        emulator.perturbation,
        instrumented=instr,
        fast_forward=use_fast,
        dynamics=dyn,
        io_mode=io_mode,
        iteration_offset=iteration_offset,
    )
    # The store holds frozen (tuple-field) payloads and thaws on get,
    # so hits hand out private mutable lists without a deep copy.
    hit = store.get(key)
    if hit is not None:
        if telemetry:
            telemetry.count("sim/run_cache/hits")
        return hit
    result = emulator.run(
        distribution,
        iterations=iterations,
        io_mode=io_mode,
        fast_forward=fast_forward,
        telemetry=telemetry,
        iteration_offset=iteration_offset,
    )
    store.put(key, result)
    if telemetry:
        telemetry.count("sim/run_cache/misses")
        stats = store.stats
        telemetry.set("sim/run_cache/size", stats.get("size", 0))
        telemetry.set("sim/run_cache/evictions", stats.get("evictions", 0))
    return result


def emulate_many(
    cluster: ClusterSpec,
    program: ProgramStructure,
    distributions,
    *,
    iterations: Optional[int] = None,
    io_mode: str = "auto",
    perturbation: Optional[PerturbationConfig] = None,
    dynamics=None,
    fast_forward: Optional[bool] = None,
    run_cache: Union[None, bool, "object"] = None,
    telemetry=None,
    iteration_offset: int = 0,
    cache=_UNSET,
) -> List[RunResult]:
    """Emulate a whole population of candidates in one batched pass.

    The results are bit-identical to looping :func:`emulate` over
    ``distributions`` (pinned by the golden batch suite): candidates
    that the compiled :class:`~repro.sim.plan_sim.EmulationPlan` can
    serve share one vectorised ``(B, P)`` probe walk, every other
    candidate falls back to its own :meth:`ClusterEmulator.run` —
    identical gating, convergence checks and extrapolation, only
    amortised differently.

    Keywords mirror :func:`emulate` (``io_mode``, ``dynamics``,
    ``iteration_offset``); dynamic-cluster batches take the
    per-candidate fallback path since the compiled plan assumes a
    stationary iteration.  The run cache is consulted up front
    (duplicates inside the batch are deduplicated too) and all fresh
    results land back in one
    :meth:`~repro.parallel.cache.RunCache.put_many`.  ``run_cache``
    follows :func:`emulate`: ``None`` for the process-wide store,
    ``False`` to bypass, or an explicit
    :class:`~repro.parallel.cache.RunCache`.  ``cache=`` is the
    deprecated alias for ``run_cache=`` (warns once).

    Telemetry: one ``sim/batch/passes`` count per call — the
    coalesced-round invariant the serve verify path asserts — plus
    candidate/hit/fallback counters under ``sim/batch/``.
    """
    io_mode, run_cache = _legacy_emulate_kwargs(
        "emulate_many", io_mode, run_cache, _UNSET, cache
    )
    instr, io_override = _resolve_io_mode(io_mode)
    dyn = _resolve_dynamics(cluster, dynamics)
    distributions = list(distributions)
    emulator = ClusterEmulator(
        cluster, program, perturbation, dynamics=dyn if dyn is not None else False
    )
    n_iter = iterations if iterations is not None else program.iterations
    use_fast = _FAST_FORWARD_DEFAULT if fast_forward is None else bool(fast_forward)

    store = None
    if run_cache is not False:
        from repro.parallel.cache import default_run_cache

        store = default_run_cache() if run_cache is None else run_cache

    results: List[Optional[RunResult]] = [None] * len(distributions)
    keys: List[Optional[str]] = [None] * len(distributions)
    cache_hits = 0
    if store is not None:
        from repro.parallel.cache import RunCache

        base = RunCache.key_base(
            cluster,
            program,
            n_iter,
            emulator.perturbation,
            instrumented=instr,
            fast_forward=use_fast,
            dynamics=dyn,
            io_mode=io_mode,
            iteration_offset=iteration_offset,
        )
        for i, dist in enumerate(distributions):
            keys[i] = RunCache.key_from_base(base, dist.counts)
            hit = store.get(keys[i])
            if hit is not None:
                results[i] = hit
                cache_hits += 1

    # Deduplicate the remaining candidates: identical counts are one
    # emulation (runs are pure functions of their configuration).
    first_index: dict = {}
    pending: List[int] = []
    for i, dist in enumerate(distributions):
        if results[i] is not None:
            continue
        counts = tuple(dist.counts)
        if counts in first_index:
            continue
        first_index[counts] = i
        pending.append(i)

    plan_served = 0
    fallbacks = 0
    if pending:
        policy = emulator.fast_forward_policy
        batch_ends = None
        if (
            use_fast
            and iteration_offset == 0
            and n_iter > policy.probe_iterations
            and (io_override is None or io_override == bool(program.prefetch))
            and supports_fast_forward(
                program, emulator.perturbation, instrumented=instr, dynamics=dyn
            )
        ):
            from repro.sim.plan_sim import get_emulation_plan

            plan = get_emulation_plan(
                cluster, program, emulator.perturbation, policy, telemetry
            )
            batch_ends = plan.probe_ends_batch(
                [distributions[i] for i in pending]
            )
        for b, i in enumerate(pending):
            dist = distributions[i]
            result = None
            if batch_ends is not None:
                probe_ends = batch_ends[b].tolist()
                deltas = steady_deltas(probe_ends, policy)
                if deltas is not None:
                    result = emulator._extrapolated_result(
                        dist, probe_ends, deltas, n_iter
                    )
                    plan_served += 1
            if result is None:
                result = emulator.run(
                    dist,
                    iterations=n_iter,
                    io_mode=io_mode,
                    fast_forward=use_fast,
                    telemetry=telemetry,
                    iteration_offset=iteration_offset,
                )
                fallbacks += 1
            results[i] = result

        if store is not None:
            store.put_many(
                (keys[i], results[i]) for i in pending if keys[i] is not None
            )

    # Fill batch-internal duplicates with private copies.
    for i, dist in enumerate(distributions):
        if results[i] is None:
            results[i] = _copy_result(results[first_index[tuple(dist.counts)]])

    if telemetry:
        telemetry.count("sim/batch/passes")
        telemetry.count("sim/batch/candidates", len(distributions))
        telemetry.count("sim/batch/cache_hits", cache_hits)
        telemetry.count("sim/batch/plan_runs", plan_served)
        telemetry.count("sim/batch/fallbacks", fallbacks)
        if store is not None:
            telemetry.count("sim/run_cache/hits", cache_hits)
            telemetry.count("sim/run_cache/misses", len(pending))
    return results
