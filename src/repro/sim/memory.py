"""Emulator-side memory planning.

Re-exports the shared placement logic and adds the runtime reservation
the emulated runtime system actually makes: communication buffers sized
to the program's largest messages plus a small allocator/bookkeeping
fraction of the node's memory.  MHETA's oracle does not know about this
reservation — that gap is limitation 2 of paper Section 5.4.
"""

from __future__ import annotations

from repro.cluster.node import NodeSpec
from repro.placement import MemoryPlan, VariablePlacement, plan_memory
from repro.program.structure import ProgramStructure

__all__ = [
    "MemoryPlan",
    "VariablePlacement",
    "plan_memory",
    "runtime_reserved_bytes",
]

#: Fixed runtime footprint: allocator metadata, ghost-row buffers, stack.
RUNTIME_FIXED_BYTES = 2 * 1024 * 1024

#: Communication buffers: double-buffered send + receive.
MESSAGE_BUFFER_COPIES = 4

#: Headroom the runtime demands before pinning a secondary variable in
#: core (the misclassification window of MHETA's out-of-core heuristic).
CONSERVATIVE_BYTES = 1024 * 1024


def runtime_reserved_bytes(node: NodeSpec, program: ProgramStructure) -> float:
    """Memory the emulated runtime reserves on ``node`` for ``program``."""
    max_message = max(
        (s.comm.message_bytes for s in program.sections), default=0.0
    )
    return RUNTIME_FIXED_BYTES + MESSAGE_BUFFER_COPIES * max_message


def emulator_plan(
    node: NodeSpec,
    program: ProgramStructure,
    local_rows: int,
    *,
    forced_out_of_core: bool = False,
) -> MemoryPlan:
    """The emulated runtime's (ground-truth) memory plan for one node.

    Differs from MHETA's oracle in three documented ways (limitation 2 of
    paper Section 5.4): its buffer reservation squeezes the ICLA sizes of
    out-of-core variables, it demands extra headroom before pinning a
    secondary (non-largest) variable in core, and it splits leftover
    memory equally among streamed variables (the oracle assumes
    pro-rata).
    """
    return plan_memory(
        program,
        local_rows,
        node.memory_bytes,
        icla_reserved_bytes=runtime_reserved_bytes(node, program),
        conservative_reserved_bytes=CONSERVATIVE_BYTES,
        forced_out_of_core=forced_out_of_core,
        share_policy="equal",
    )
