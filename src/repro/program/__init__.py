"""Program structure: variables, stages, tiles, parallel sections.

The paper's computational model (Section 3.1) describes iterative
scientific applications as a sequence of *parallel sections*, delimited
by nearest-neighbour or reduction communication.  A section contains one
or more *tiles* (pipelined applications have many); a tile contains one
or more *stages*, each of which performs computation and explicit I/O
over the distributed arrays it touches.

:class:`ProgramStructure` is the static description MHETA consumes ("we
currently analyze the application source code manually ... and store this
information in a file read by MHETA"); the same object drives the
discrete-event emulator, so model and ground truth always agree on the
program's shape and differ only in execution fidelity.
"""

from repro.program.variables import Access, Variable
from repro.program.stages import Stage
from repro.program.sections import CommPattern, CommSpec, ParallelSection
from repro.program.structure import ProgramStructure
from repro.program.builder import ProgramBuilder

__all__ = [
    "Access",
    "Variable",
    "Stage",
    "CommPattern",
    "CommSpec",
    "ParallelSection",
    "ProgramStructure",
    "ProgramBuilder",
]
