"""Program variables (arrays) and their distribution/access properties.

The paper distributes data one-dimensionally: each *distributed* variable
is partitioned by rows under a GEN_BLOCK distribution, and a node's share
is its Local Array (LA).  If the LA does not fit in the node's memory it
becomes an Out-of-Core Local Array (OCLA) processed in In-Core Local
Array (ICLA) sized pieces.  *Replicated* variables (read-only inputs,
whole vectors) live fully in every node's memory.

Read-only variables incur only disk reads; read-write variables are
written back after each pass ("Any time the node reads data from disk,
there is a corresponding write to disk if the results ... are stored,
such as in our Jacobi application.  For the Conjugate Gradient and
Lanzcos applications, the array is read-only.").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ProgramStructureError
from repro.util.units import DOUBLE

__all__ = ["Access", "Variable"]


class Access(enum.Enum):
    """How a variable's primary data set is accessed each iteration."""

    READ_ONLY = "read-only"
    READ_WRITE = "read-write"


@dataclass(frozen=True)
class Variable:
    """One program array.

    Parameters
    ----------
    name:
        Unique variable name within the program.
    cols:
        For a distributed variable: elements per distributed row (a row
        of an ``N x N`` dense matrix has ``cols == N``; a vector
        distributed by rows has ``cols == 1``).  For CG's sparse matrix
        this is the *average* stored elements per row — MHETA, like most
        data-distribution systems, has no per-row sparsity information
        (paper Section 5.4).
    distributed:
        True when the variable is partitioned by the data distribution;
        False for replicated variables present in full on every node.
    replicated_elements:
        Total element count of a replicated variable (ignored when
        ``distributed``).
    access:
        Read-only or read-write (controls whether ICLA passes write back).
    element_size:
        Bytes per element (8 for the paper's double-precision data).
    """

    name: str
    cols: float = 1.0
    distributed: bool = True
    replicated_elements: int = 0
    access: Access = Access.READ_ONLY
    element_size: int = DOUBLE

    def __post_init__(self) -> None:
        if not self.name:
            raise ProgramStructureError("variable name must be non-empty")
        if self.element_size <= 0:
            raise ProgramStructureError(
                f"{self.name}: element_size must be positive"
            )
        if self.distributed:
            if self.cols <= 0:
                raise ProgramStructureError(
                    f"{self.name}: distributed variable needs cols > 0"
                )
        else:
            if self.replicated_elements < 0:
                raise ProgramStructureError(
                    f"{self.name}: replicated_elements must be >= 0"
                )

    @property
    def row_bytes(self) -> float:
        """Bytes per distributed row (meaningless for replicated vars)."""
        return self.cols * self.element_size

    def local_bytes(self, rows: int) -> float:
        """Size of this variable's local array on a node owning ``rows``."""
        if self.distributed:
            return rows * self.row_bytes
        return float(self.replicated_elements * self.element_size)

    @property
    def writes_back(self) -> bool:
        """True when out-of-core passes write results back to disk."""
        return self.access is Access.READ_WRITE
