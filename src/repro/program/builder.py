"""Fluent builder for :class:`~repro.program.ProgramStructure`.

The applications in :mod:`repro.apps` declare their structure through
this builder, which keeps the declarations readable and validates eagerly
(unknown variables fail at ``add_section`` time, not at run time).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ProgramStructureError
from repro.program.sections import CommPattern, CommSpec, ParallelSection
from repro.program.stages import Stage
from repro.program.structure import ProgramStructure
from repro.program.variables import Access, Variable

__all__ = ["ProgramBuilder"]


class ProgramBuilder:
    """Build a :class:`ProgramStructure` incrementally.

    Example
    -------
    >>> program = (
    ...     ProgramBuilder("jacobi", n_rows=1024, iterations=100)
    ...     .distributed("grid", cols=1024, access="read-write")
    ...     .section("sweep")
    ...     .stage("update", reads=["grid"], writes=["grid"],
    ...            work_per_row=2e-6)
    ...     .nearest_neighbor(message_bytes=8192, source_variable="grid")
    ...     .section("residual")
    ...     .stage("norm", reads=["grid"], work_per_row=1e-7)
    ...     .reduction(message_bytes=8)
    ...     .build()
    ... )
    >>> program.n_rows
    1024
    """

    def __init__(self, name: str, n_rows: int, iterations: int = 1) -> None:
        self._name = name
        self._n_rows = n_rows
        self._iterations = iterations
        self._variables: list = []
        self._sections: list = []
        self._row_weights: Optional[np.ndarray] = None
        self._iteration_profile: Optional[np.ndarray] = None
        self._prefetch = False
        # current (open) section state
        self._sec_name: Optional[str] = None
        self._sec_stages: list = []
        self._sec_tiles = 1

    # -- variables -----------------------------------------------------------

    def distributed(
        self,
        name: str,
        cols: float,
        access: str = "read-only",
        element_size: int = 8,
    ) -> "ProgramBuilder":
        """Declare a distributed (row-partitioned) variable."""
        self._variables.append(
            Variable(
                name=name,
                cols=cols,
                distributed=True,
                access=Access(access),
                element_size=element_size,
            )
        )
        return self

    def replicated(
        self, name: str, elements: int, element_size: int = 8
    ) -> "ProgramBuilder":
        """Declare a replicated variable held in full on every node."""
        self._variables.append(
            Variable(
                name=name,
                distributed=False,
                replicated_elements=elements,
                element_size=element_size,
            )
        )
        return self

    # -- sections and stages ---------------------------------------------------

    def section(self, name: str, tiles: int = 1) -> "ProgramBuilder":
        """Open a new parallel section (closing any previous one with no
        communication if it was not explicitly closed)."""
        self._close_open_section()
        self._sec_name = name
        self._sec_stages = []
        self._sec_tiles = tiles
        return self

    def stage(
        self,
        name: str,
        reads: Sequence[str] = (),
        writes: Sequence[str] = (),
        work_per_row: float = 0.0,
        fixed_work: float = 0.0,
    ) -> "ProgramBuilder":
        """Add a stage to the open section."""
        if self._sec_name is None:
            raise ProgramStructureError("stage() before section()")
        self._sec_stages.append(
            Stage(
                name=name,
                reads=tuple(reads),
                writes=tuple(writes),
                work_per_row=work_per_row,
                fixed_work=fixed_work,
            )
        )
        return self

    # -- communication closers -------------------------------------------------

    def _close(self, comm: CommSpec) -> "ProgramBuilder":
        if self._sec_name is None:
            raise ProgramStructureError("communication before section()")
        self._sections.append(
            ParallelSection(
                name=self._sec_name,
                stages=tuple(self._sec_stages),
                tiles=self._sec_tiles,
                comm=comm,
            )
        )
        self._sec_name = None
        self._sec_stages = []
        self._sec_tiles = 1
        return self

    def no_comm(self) -> "ProgramBuilder":
        """Close the open section with no communication."""
        return self._close(CommSpec.none())

    def nearest_neighbor(
        self, message_bytes: float, source_variable: Optional[str] = None
    ) -> "ProgramBuilder":
        """Close the open section with a boundary exchange."""
        return self._close(
            CommSpec(
                pattern=CommPattern.NEAREST_NEIGHBOR,
                message_bytes=message_bytes,
                source_variable=source_variable,
            )
        )

    def pipeline(
        self, message_bytes: float, source_variable: Optional[str] = None
    ) -> "ProgramBuilder":
        """Close the open section with per-tile pipelined messages."""
        return self._close(
            CommSpec(
                pattern=CommPattern.PIPELINE,
                message_bytes=message_bytes,
                source_variable=source_variable,
            )
        )

    def reduction(self, message_bytes: float = 8.0) -> "ProgramBuilder":
        """Close the open section with a global (all)reduction."""
        return self._close(
            CommSpec(
                pattern=CommPattern.REDUCTION, message_bytes=message_bytes
            )
        )

    def allgather(self, message_bytes: float) -> "ProgramBuilder":
        """Close the open section with an allgather collective."""
        return self._close(
            CommSpec(
                pattern=CommPattern.ALLGATHER, message_bytes=message_bytes
            )
        )

    # -- global knobs ----------------------------------------------------------

    def weights(self, row_weights: np.ndarray) -> "ProgramBuilder":
        """Attach ground-truth per-row compute weights (emulator only)."""
        self._row_weights = np.asarray(row_weights, dtype=float)
        return self

    def prefetching(self, enabled: bool = True) -> "ProgramBuilder":
        """Enable one-block-ahead asynchronous ICLA reads."""
        self._prefetch = enabled
        return self

    def iteration_profile(self, profile) -> "ProgramBuilder":
        """Attach per-iteration computation multipliers (non-uniform
        iterations, paper Section 3.1's deferred case)."""
        self._iteration_profile = np.asarray(profile, dtype=float)
        return self

    # -- finalisation ------------------------------------------------------------

    def _close_open_section(self) -> None:
        if self._sec_name is not None:
            self._close(CommSpec.none())

    def build(self) -> ProgramStructure:
        """Validate and return the program structure."""
        self._close_open_section()
        return ProgramStructure(
            name=self._name,
            n_rows=self._n_rows,
            variables=tuple(self._variables),
            sections=tuple(self._sections),
            iterations=self._iterations,
            prefetch=self._prefetch,
            row_weights=self._row_weights,
            iteration_profile=self._iteration_profile,
        )
