"""Parallel sections and their communication patterns.

A parallel section is "code in between either a nearest neighbor or
reduction communication pattern, at which point a node can send at most
one message to another node" (paper Section 3.1).  Pipelined sections
contain multiple tiles and interleave per-tile messages with per-tile
computation (paper Section 4.2.2, Equation 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.exceptions import ProgramStructureError
from repro.program.stages import Stage

__all__ = ["CommPattern", "CommSpec", "ParallelSection"]


class CommPattern(enum.Enum):
    """Communication closing a parallel section."""

    #: No communication (purely local section).
    NONE = "none"
    #: Boundary exchange with the adjacent nodes in distribution order
    #: (paper Equation 3/5).
    NEAREST_NEIGHBOR = "nearest-neighbor"
    #: Pipelined flow from node 0 towards node n-1, one message per tile
    #: (paper Equation 4).
    PIPELINE = "pipeline"
    #: Global reduction combining one value (or small vector) from every
    #: node; result available everywhere (modelled in the dissertation,
    #: reconstructed here as a binomial-tree allreduce).
    REDUCTION = "reduction"
    #: Every node contributes ``message_bytes`` and receives all other
    #: contributions (recursive doubling).  Used for the mat-vec gather
    #: in CG and Lanczos.
    ALLGATHER = "allgather"


@dataclass(frozen=True)
class CommSpec:
    """Communication description for one parallel section.

    ``message_bytes`` means, per pattern:

    * ``NEAREST_NEIGHBOR`` — bytes per boundary message, per direction;
    * ``PIPELINE`` — bytes per per-tile message;
    * ``REDUCTION`` — bytes of the reduced value;
    * ``ALLGATHER`` — bytes contributed by each node.

    ``source_variable`` names the array a message is materialised from;
    when that array is out of core on the sender, MHETA charges a disk
    read as part of the send overhead ``os(m)`` (paper Section 4.2.2).
    """

    pattern: CommPattern = CommPattern.NONE
    message_bytes: float = 0.0
    source_variable: Optional[str] = None

    def __post_init__(self) -> None:
        if self.message_bytes < 0:
            raise ProgramStructureError("message_bytes must be non-negative")
        if self.pattern is CommPattern.NONE and self.message_bytes:
            raise ProgramStructureError(
                "a NONE communication pattern cannot carry a message"
            )

    @classmethod
    def none(cls) -> "CommSpec":
        return cls(pattern=CommPattern.NONE)


@dataclass(frozen=True)
class ParallelSection:
    """One parallel section: tiles x stages, closed by communication.

    Per the paper, each of the section's ``tiles`` executes every stage
    over its share of the section's data; a non-pipelined section has a
    single tile.  Stage ground-truth work refers to the *whole* section
    (all tiles combined); the executor divides it evenly among tiles.
    """

    name: str
    stages: Tuple[Stage, ...]
    tiles: int = 1
    comm: CommSpec = field(default_factory=CommSpec.none)

    def __post_init__(self) -> None:
        if not self.name:
            raise ProgramStructureError("section name must be non-empty")
        if not self.stages:
            raise ProgramStructureError(
                f"section {self.name}: needs at least one stage"
            )
        if self.tiles < 1:
            raise ProgramStructureError(
                f"section {self.name}: tiles must be >= 1, got {self.tiles}"
            )
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise ProgramStructureError(
                f"section {self.name}: duplicate stage names"
            )
        if (
            self.comm.pattern is CommPattern.PIPELINE
            and self.tiles < 2
        ):
            raise ProgramStructureError(
                f"section {self.name}: a pipelined section needs >= 2 tiles "
                "(one message per tile)"
            )
        if (
            self.comm.pattern is not CommPattern.PIPELINE
            and self.tiles > 1
        ):
            raise ProgramStructureError(
                f"section {self.name}: multiple tiles are only meaningful "
                "with pipelined communication"
            )
        object.__setattr__(self, "stages", tuple(self.stages))

    @property
    def is_pipelined(self) -> bool:
        return self.comm.pattern is CommPattern.PIPELINE

    @property
    def touched(self) -> Tuple[str, ...]:
        """All variable names referenced by any stage, in first-seen order."""
        seen: list = []
        for stage in self.stages:
            for name in stage.touched:
                if name not in seen:
                    seen.append(name)
        if self.comm.source_variable and self.comm.source_variable not in seen:
            seen.append(self.comm.source_variable)
        return tuple(seen)
