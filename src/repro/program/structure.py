"""Whole-program structural description consumed by MHETA and the emulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ProgramStructureError
from repro.program.sections import ParallelSection
from repro.program.variables import Variable

__all__ = ["ProgramStructure"]


@dataclass(frozen=True)
class ProgramStructure:
    """Static structure of an iterative application.

    Parameters
    ----------
    name:
        Application name (``"jacobi"``).
    n_rows:
        Global row count of the one-dimensional data distribution; every
        distributed variable is partitioned over these rows.
    variables:
        All program arrays.
    sections:
        Parallel sections executed, in order, once per iteration.
    iterations:
        Number of iterations in a full run (paper: Jacobi 100, CG 10,
        Lanczos 5, RNA 10).
    prefetch:
        When True, out-of-core ICLA reads are issued asynchronously one
        block ahead (the unrolled loop of paper Figure 6).
    row_weights:
        Optional ground-truth relative computation weight per global row
        (length ``n_rows``), normalised to mean 1.0 at validation.  Used
        only by the emulator — MHETA scales computation by row *count*,
        which is exactly why sparse CG defeats it (paper Section 5.4).
    iteration_profile:
        Optional per-iteration computation multipliers (length
        ``iterations``).  Paper Section 3.1: "MHETA can support the case
        where iterations take a nonuniform amount of time; however, in
        this paper we discuss only those whose time is uniform".  We
        implement the support: the profile is part of the program
        structure (an adaptive-timestep solver knows its own schedule),
        the emulator executes it, and the model scales each iteration's
        computation by it.  I/O and message sizes stay constant — only
        the work per element varies.
    """

    name: str
    n_rows: int
    variables: Tuple[Variable, ...]
    sections: Tuple[ParallelSection, ...]
    iterations: int = 1
    prefetch: bool = False
    row_weights: Optional[np.ndarray] = field(default=None, repr=False)
    iteration_profile: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.n_rows < 1:
            raise ProgramStructureError("n_rows must be >= 1")
        if self.iterations < 1:
            raise ProgramStructureError("iterations must be >= 1")
        if not self.sections:
            raise ProgramStructureError("a program needs at least one section")
        if not self.variables:
            raise ProgramStructureError("a program needs at least one variable")
        names = [v.name for v in self.variables]
        if len(set(names)) != len(names):
            raise ProgramStructureError("duplicate variable names")
        section_names = [s.name for s in self.sections]
        if len(set(section_names)) != len(section_names):
            raise ProgramStructureError("duplicate section names")
        known = set(names)
        for section in self.sections:
            for var in section.touched:
                if var not in known:
                    raise ProgramStructureError(
                        f"section {section.name} references unknown "
                        f"variable {var!r}"
                    )
        object.__setattr__(self, "variables", tuple(self.variables))
        object.__setattr__(self, "sections", tuple(self.sections))
        if self.row_weights is not None:
            weights = np.asarray(self.row_weights, dtype=float)
            if weights.shape != (self.n_rows,):
                raise ProgramStructureError(
                    f"row_weights must have shape ({self.n_rows},), "
                    f"got {weights.shape}"
                )
            if (weights <= 0).any():
                raise ProgramStructureError("row_weights must be positive")
            weights = weights / weights.mean()
            weights.setflags(write=False)
            object.__setattr__(self, "row_weights", weights)
        if self.iteration_profile is not None:
            profile = np.asarray(self.iteration_profile, dtype=float)
            if profile.shape != (self.iterations,):
                raise ProgramStructureError(
                    f"iteration_profile must have shape ({self.iterations},),"
                    f" got {profile.shape}"
                )
            if (profile <= 0).any():
                raise ProgramStructureError(
                    "iteration_profile must be positive"
                )
            profile.setflags(write=False)
            object.__setattr__(self, "iteration_profile", profile)

    # -- lookups -------------------------------------------------------------

    def variable(self, name: str) -> Variable:
        """Look up a variable by name."""
        for v in self.variables:
            if v.name == name:
                return v
        raise ProgramStructureError(f"{self.name}: no variable {name!r}")

    @property
    def variable_map(self) -> Dict[str, Variable]:
        return {v.name: v for v in self.variables}

    @property
    def distributed_variables(self) -> Tuple[Variable, ...]:
        return tuple(v for v in self.variables if v.distributed)

    @property
    def replicated_variables(self) -> Tuple[Variable, ...]:
        return tuple(v for v in self.variables if not v.distributed)

    # -- sizes ---------------------------------------------------------------

    @property
    def dataset_bytes(self) -> int:
        """Total primary data set size: full distributed arrays plus one
        copy of each replicated array."""
        total = 0.0
        for v in self.variables:
            if v.distributed:
                total += v.local_bytes(self.n_rows)
            else:
                total += v.local_bytes(0)
        return int(total)

    @property
    def replicated_bytes(self) -> int:
        """Memory consumed on *every* node by replicated variables."""
        return int(sum(v.local_bytes(0) for v in self.replicated_variables))

    def distributed_row_bytes(self) -> float:
        """Bytes of distributed data per global row, summed over variables."""
        return float(sum(v.row_bytes for v in self.distributed_variables))

    # -- ground truth helpers (emulator only) --------------------------------

    def weight_of_rows(self, start: int, stop: int) -> float:
        """Ground-truth total compute weight of global rows [start, stop).

        With uniform weights this equals ``stop - start``; with
        ``row_weights`` it is their sum (mean weight is normalised to 1,
        so totals stay comparable to row counts).
        """
        if not 0 <= start <= stop <= self.n_rows:
            raise ProgramStructureError(
                f"row range [{start}, {stop}) outside [0, {self.n_rows})"
            )
        if self.row_weights is None:
            return float(stop - start)
        return float(self.row_weights[start:stop].sum())

    def iteration_multiplier(self, iteration: int) -> float:
        """Computation multiplier for ``iteration`` (1.0 when uniform)."""
        if self.iteration_profile is None:
            return 1.0
        if not 0 <= iteration < self.iterations:
            raise ProgramStructureError(
                f"iteration {iteration} outside [0, {self.iterations})"
            )
        return float(self.iteration_profile[iteration])

    def with_prefetch(self, prefetch: bool = True) -> "ProgramStructure":
        """Return a copy with prefetching switched on or off."""
        import dataclasses

        return dataclasses.replace(self, prefetch=prefetch)

    def with_iterations(self, iterations: int) -> "ProgramStructure":
        """Return a copy running a different number of iterations (any
        non-uniform profile is dropped, since its length would no longer
        match)."""
        import dataclasses

        return dataclasses.replace(
            self, iterations=iterations, iteration_profile=None
        )

    def with_iteration_profile(
        self, profile: np.ndarray
    ) -> "ProgramStructure":
        """Return a copy with per-iteration computation multipliers."""
        import dataclasses

        return dataclasses.replace(
            self, iteration_profile=np.asarray(profile, dtype=float)
        )
