"""Stages: the computation+I/O units inside a tile.

A stage is "bounded explicitly by an outermost loop over a
multidimensional array or implicitly by the end of a tile" (paper
Section 3.1).  Only computation and I/O happen inside a stage; the
communication belongs to the enclosing parallel section.

The ground-truth work parameters (``work_per_row``, ``fixed_work``) are
what the discrete-event emulator executes.  MHETA never reads them — it
only sees the *measured* stage durations from the instrumented iteration,
exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.exceptions import ProgramStructureError

__all__ = ["Stage"]


@dataclass(frozen=True)
class Stage:
    """One stage of computation and explicit I/O.

    Parameters
    ----------
    name:
        Stage label, unique within its parallel section.
    reads:
        Names of variables read.  Distributed read variables that are out
        of core are streamed from disk in ICLA-sized pieces.
    writes:
        Names of variables written.  A distributed variable that is both
        read and written (e.g. Jacobi's grid) incurs a write-back per
        ICLA piece.
    work_per_row:
        Ground-truth computation seconds (at relative CPU power 1.0) per
        distributed row processed by this stage.
    fixed_work:
        Aggregate ground-truth computation seconds for the stage across
        the whole cluster, distributed proportionally to the global rows
        each node owns (so all ground-truth work stays in the
        row-proportional regime MHETA's ``Tc * W'/W`` models).
    """

    name: str
    reads: Tuple[str, ...] = field(default_factory=tuple)
    writes: Tuple[str, ...] = field(default_factory=tuple)
    work_per_row: float = 0.0
    fixed_work: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ProgramStructureError("stage name must be non-empty")
        if self.work_per_row < 0 or self.fixed_work < 0:
            raise ProgramStructureError(
                f"stage {self.name}: work must be non-negative"
            )
        object.__setattr__(self, "reads", tuple(self.reads))
        object.__setattr__(self, "writes", tuple(self.writes))

    @property
    def touched(self) -> Tuple[str, ...]:
        """All variables referenced by the stage (reads first, then
        write-only names), without duplicates."""
        seen = list(self.reads)
        for name in self.writes:
            if name not in seen:
                seen.append(name)
        return tuple(seen)

    def work_seconds(self, rows: int, total_rows: int = 0) -> float:
        """Ground-truth computation seconds at power 1.0 for ``rows`` of
        ``total_rows`` global rows at uniform weight (``total_rows`` 0
        means this node owns everything)."""
        fraction = rows / total_rows if total_rows else 1.0
        return self.fixed_work * fraction + self.work_per_row * rows
