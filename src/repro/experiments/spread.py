"""Best-versus-worst distribution spreads (Section 5.3).

"Given the worst data distributions, the execution times for RNA on DC
and Lanzcos on HY1 are almost 4 and 3 times as slow, respectively, as
when given the best distribution."  This experiment measures those
spreads — the reason picking distributions by guesswork "can result in
a doubling or tripling of execution time".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.cluster.configs import table1_configs
from repro.apps import paper_applications
from repro.experiments.common import SpectrumRun, run_spectrum
from repro.parallel.runner import ParallelRunner
from repro.util.tables import render_table

__all__ = ["SpreadResult", "distribution_spread"]

#: The two spreads the paper calls out explicitly.
PAPER_SPREADS = {("rna", "DC"): 4.0, ("lanczos", "HY1"): 3.0}


@dataclass(frozen=True)
class SpreadResult:
    """Worst/best spreads for every (application, configuration) pair."""

    spreads: Dict[Tuple[str, str], float]
    best_labels: Dict[Tuple[str, str], str]
    worst_labels: Dict[Tuple[str, str], str]

    def spread(self, app: str, config: str) -> float:
        return self.spreads[(app, config)]

    def describe(self) -> str:
        rows = []
        for (app, config), value in sorted(self.spreads.items()):
            paper = PAPER_SPREADS.get((app, config))
            rows.append(
                [
                    app,
                    config,
                    value,
                    self.best_labels[(app, config)],
                    self.worst_labels[(app, config)],
                    f"~{paper:.0f}x" if paper else "",
                ]
            )
        return render_table(
            ["app", "config", "worst/best", "best at", "worst at", "paper"],
            rows,
            float_fmt=".2f",
            title="Best-vs-worst distribution spreads (Section 5.3)",
        )


def _spread_task(spec) -> SpectrumRun:
    """Process-pool task: one (application, configuration) sweep."""
    cluster, program, steps_per_leg = spec
    return run_spectrum(cluster, program, steps_per_leg=steps_per_leg)


def distribution_spread(
    configs: Optional[Sequence[str]] = None,
    steps_per_leg: int = 4,
    scale: float = 1.0,
    jobs: int = 1,
) -> SpreadResult:
    """Measure spreads over the spectrum for each app x configuration.

    ``jobs`` fans the independent (app, configuration) sweeps out over a
    process pool; results are bit-identical to the serial run.
    """
    table = table1_configs()
    names = list(configs) if configs is not None else list(table)
    keys: list = []
    tasks: list = []
    for app in paper_applications(scale):
        for cname in names:
            keys.append((app.name, cname))
            tasks.append((table[cname], app.structure, steps_per_leg))
    runs = ParallelRunner(jobs).map(_spread_task, tasks)
    spreads: Dict[Tuple[str, str], float] = {}
    best: Dict[Tuple[str, str], str] = {}
    worst: Dict[Tuple[str, str], str] = {}
    for key, run in zip(keys, runs):
        spreads[key] = run.spread
        best[key] = run.best_actual.label
        worst[key] = max(run.points, key=lambda p: p.actual_seconds).label
    return SpreadResult(spreads=spreads, best_labels=best, worst_labels=worst)
