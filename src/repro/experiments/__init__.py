"""Experiment harness: one entry point per paper table/figure.

Every artefact of the paper's evaluation section has a function here
that regenerates it (see DESIGN.md's experiment index):

* :func:`~repro.experiments.accuracy.fig9_accuracy` — Figure 9's
  min/avg/max percent-difference bands;
* :func:`~repro.experiments.specific.figure10`,
  :func:`~repro.experiments.specific.figure11` — predicted-vs-actual
  curves for the Table-1 configurations;
* :func:`~repro.experiments.tables.table1` — the configuration table;
* :func:`~repro.experiments.timing.model_evaluation_timing` — the
  ~5.4 ms/evaluation claim;
* :func:`~repro.experiments.spread.distribution_spread` — the 4x/3x
  best-versus-worst spreads of Section 5.3;
* :func:`~repro.experiments.ablation.error_ablation` — which emulator
  effect produces which share of MHETA's error (Section 5.4);
* :func:`~repro.experiments.robustness.dedicated_assumption_study` —
  accuracy degradation on a non-dedicated cluster (why Section 3.2
  assumes dedication).
"""

from repro.experiments.common import SpectrumRun, run_spectrum, build_model
from repro.experiments.accuracy import AccuracyBands, fig9_accuracy
from repro.experiments.specific import ConfigCurves, figure10, figure11, config_curves
from repro.experiments.tables import table1
from repro.experiments.timing import TimingResult, model_evaluation_timing
from repro.experiments.spread import SpreadResult, distribution_spread
from repro.experiments.ablation import AblationResult, error_ablation
from repro.experiments.robustness import (
    RobustnessResult,
    dedicated_assumption_study,
)

__all__ = [
    "SpectrumRun",
    "run_spectrum",
    "build_model",
    "AccuracyBands",
    "fig9_accuracy",
    "ConfigCurves",
    "figure10",
    "figure11",
    "config_curves",
    "table1",
    "TimingResult",
    "model_evaluation_timing",
    "SpreadResult",
    "distribution_spread",
    "AblationResult",
    "error_ablation",
    "RobustnessResult",
    "dedicated_assumption_study",
]
