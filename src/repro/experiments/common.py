"""Shared experiment plumbing: instrument, model, sweep, compare.

The paper's protocol (Section 5.1): instrument one iteration under the
``Blk`` distribution, feed the measurements to MHETA, then run both the
real application (here: the emulator) and MHETA over the candidate
distributions and compare.  Percent difference is "the absolute
difference divided by the minimum of each application's predicted and
actual execution times" (Section 5.2.1).

``run_spectrum`` is the primitive every sweep experiment reduces to.
It deduplicates spectrum points, predicts them in one batched
:meth:`~repro.core.model.MhetaModel.predict` call, optionally fans
the independent emulator runs out over a process pool
(:class:`~repro.parallel.ParallelRunner`) and consults a content-keyed
:class:`~repro.parallel.SweepCache`.  All of that is bit-identical to
the plain serial loop: per-run seeded RNG streams make emulator runs
order- and process-independent, and results are reassembled in point
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.cluster import ClusterSpec
from repro.core.model import MhetaModel
from repro.distribution.factories import block
from repro.distribution.genblock import GenBlock
from repro.distribution.spectrum import spectrum
from repro.exceptions import ExperimentError
from repro.instrument.collect import collect_inputs
from repro.obs import Recorder, as_recorder
from repro.parallel.cache import SweepCache
from repro.parallel.runner import ParallelRunner
from repro.program.structure import ProgramStructure
from repro.sim.executor import emulate
from repro.sim.perturbation import PerturbationConfig

__all__ = ["PointComparison", "SpectrumRun", "build_model", "run_spectrum"]


def percent_difference(actual: float, predicted: float) -> float:
    """The paper's error metric, as a percentage.

    Raises :class:`~repro.exceptions.ExperimentError` when either time
    is non-positive: the metric divides by ``min(actual, predicted)``,
    and a run that took zero (or negative) seconds is degenerate data
    that must not masquerade as a perfect prediction.
    """
    denom = min(actual, predicted)
    if denom <= 0:
        raise ExperimentError(
            "percent_difference needs positive execution times, got "
            f"actual={actual!r}, predicted={predicted!r} (degenerate run)"
        )
    return abs(actual - predicted) / denom * 100.0


@dataclass(frozen=True)
class PointComparison:
    """Actual vs predicted at one spectrum point."""

    label: str
    anchor: str
    position: float
    actual_seconds: float
    predicted_seconds: float

    @property
    def error_percent(self) -> float:
        return percent_difference(self.actual_seconds, self.predicted_seconds)

    @property
    def signed_error_percent(self) -> float:
        """Positive = over-prediction."""
        sign = 1.0 if self.predicted_seconds >= self.actual_seconds else -1.0
        return sign * self.error_percent


@dataclass(frozen=True)
class SpectrumRun:
    """One application on one architecture, swept over the spectrum."""

    app_name: str
    cluster_name: str
    points: Tuple[PointComparison, ...]

    @property
    def mean_error_percent(self) -> float:
        return sum(p.error_percent for p in self.points) / len(self.points)

    @property
    def max_error_percent(self) -> float:
        return max(p.error_percent for p in self.points)

    @property
    def best_actual(self) -> PointComparison:
        return min(self.points, key=lambda p: p.actual_seconds)

    @property
    def best_predicted(self) -> PointComparison:
        return min(self.points, key=lambda p: p.predicted_seconds)

    @property
    def spread(self) -> float:
        """Worst/best actual execution-time ratio over the spectrum."""
        times = [p.actual_seconds for p in self.points]
        return max(times) / min(times)

    def chart(self, height: int = 12, width: int = 64) -> str:
        """ASCII rendering of this run's actual-vs-predicted curves (one
        panel of the paper's Figures 10/11)."""
        from repro.util.ascii_plot import ascii_plot

        return ascii_plot(
            [p.label for p in self.points],
            {
                "actual": [p.actual_seconds for p in self.points],
                "predicted": [p.predicted_seconds for p in self.points],
            },
            height=height,
            width=width,
            title=(
                f"{self.app_name} on {self.cluster_name} (seconds; best "
                f"actual at {self.best_actual.label!r})"
            ),
        )


def build_model(
    cluster: ClusterSpec,
    program: ProgramStructure,
    perturbation: Optional[PerturbationConfig] = None,
    kernel: str = "numpy",
) -> MhetaModel:
    """Instrument one Blk iteration and construct the MHETA model.

    ``kernel`` selects the evaluation path (``"numpy"`` vectorised,
    ``"scalar"`` reference); the two agree to <= 1e-12 relative error.
    """
    d0 = block(cluster, program.n_rows)
    inputs = collect_inputs(cluster, program, d0, perturbation=perturbation)
    return MhetaModel(program, cluster, inputs, kernel=kernel)


def _emulate_task(
    spec: Tuple[ClusterSpec, ProgramStructure, Optional[PerturbationConfig], Tuple[int, ...]]
) -> float:
    """Process-pool task: one independent emulator run (module-level so
    it pickles).  Goes through :func:`repro.sim.emulate`, so identical
    configurations across panels hit the process-wide run cache."""
    cluster, program, perturbation, counts = spec
    return emulate(
        cluster, program, GenBlock(counts), perturbation=perturbation
    ).total_seconds


def run_spectrum(
    cluster: ClusterSpec,
    program: ProgramStructure,
    steps_per_leg: int = 3,
    full_path: bool = False,
    perturbation: Optional[PerturbationConfig] = None,
    model: Optional[MhetaModel] = None,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
    telemetry: Optional[Recorder] = None,
) -> SpectrumRun:
    """Compare actual vs predicted over the distribution spectrum.

    ``jobs`` fans the per-point emulator runs out over a process pool
    (``1`` = serial); ``cache`` memoises ``(actual, predicted)`` pairs
    across calls.  Neither changes the numbers — only the wall clock.
    ``telemetry`` (a :class:`repro.obs.Recorder`) receives sweep-level
    counters plus whatever the model and runner record.
    """
    rec = as_recorder(telemetry)
    points = list(spectrum(cluster, program, steps_per_leg, full_path))

    # Distinct distributions, in first-seen order (legs share endpoints).
    order: List[Tuple[int, ...]] = []
    for point in points:
        key = point.distribution.counts
        if key not in order:
            order.append(key)

    pairs: dict = {}
    pending: List[Tuple[int, ...]] = []
    for key in order:
        hit = (
            cache.lookup(cluster, program, GenBlock(key), perturbation)
            if cache is not None
            else None
        )
        if hit is not None:
            pairs[key] = hit
        else:
            pending.append(key)

    if pending:
        # A fully-cached sweep never needs the model, so even the
        # instrumented iteration behind build_model is skipped.
        if model is None:
            model = build_model(cluster, program, perturbation)
        predicted = model.predict(
            [GenBlock(k) for k in pending],
            batch="serial",
            telemetry=telemetry,
        )
        actual = ParallelRunner(jobs, telemetry=telemetry).map(
            _emulate_task,
            [(cluster, program, perturbation, k) for k in pending],
        )
        for key, a, p in zip(pending, actual, predicted):
            pairs[key] = (a, p)
            if cache is not None:
                cache.store(cluster, program, GenBlock(key), a, p, perturbation)

    if rec:
        rec.count("sweep/runs")
        rec.count("sweep/points", len(points))
        rec.count("sweep/distinct_points", len(order))
        rec.count("sweep/cache_hits", len(order) - len(pending))
        rec.count("sweep/emulated", len(pending))

    comparisons: List[PointComparison] = []
    for point in points:
        a, p = pairs[point.distribution.counts]
        comparisons.append(
            PointComparison(
                label=point.label,
                anchor=point.anchor,
                position=point.position,
                actual_seconds=a,
                predicted_seconds=p,
            )
        )
    return SpectrumRun(
        app_name=program.name,
        cluster_name=cluster.name,
        points=tuple(comparisons),
    )
