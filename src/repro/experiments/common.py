"""Shared experiment plumbing: instrument, model, sweep, compare.

The paper's protocol (Section 5.1): instrument one iteration under the
``Blk`` distribution, feed the measurements to MHETA, then run both the
real application (here: the emulator) and MHETA over the candidate
distributions and compare.  Percent difference is "the absolute
difference divided by the minimum of each application's predicted and
actual execution times" (Section 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.cluster import ClusterSpec
from repro.core.model import MhetaModel
from repro.distribution.factories import block
from repro.distribution.spectrum import spectrum
from repro.instrument.collect import collect_inputs
from repro.program.structure import ProgramStructure
from repro.sim.executor import ClusterEmulator
from repro.sim.perturbation import PerturbationConfig

__all__ = ["PointComparison", "SpectrumRun", "build_model", "run_spectrum"]


def percent_difference(actual: float, predicted: float) -> float:
    """The paper's error metric, as a percentage."""
    denom = min(actual, predicted)
    if denom <= 0:
        return 0.0
    return abs(actual - predicted) / denom * 100.0


@dataclass(frozen=True)
class PointComparison:
    """Actual vs predicted at one spectrum point."""

    label: str
    anchor: str
    position: float
    actual_seconds: float
    predicted_seconds: float

    @property
    def error_percent(self) -> float:
        return percent_difference(self.actual_seconds, self.predicted_seconds)

    @property
    def signed_error_percent(self) -> float:
        """Positive = over-prediction."""
        sign = 1.0 if self.predicted_seconds >= self.actual_seconds else -1.0
        return sign * self.error_percent


@dataclass(frozen=True)
class SpectrumRun:
    """One application on one architecture, swept over the spectrum."""

    app_name: str
    cluster_name: str
    points: Tuple[PointComparison, ...]

    @property
    def mean_error_percent(self) -> float:
        return sum(p.error_percent for p in self.points) / len(self.points)

    @property
    def max_error_percent(self) -> float:
        return max(p.error_percent for p in self.points)

    @property
    def best_actual(self) -> PointComparison:
        return min(self.points, key=lambda p: p.actual_seconds)

    @property
    def best_predicted(self) -> PointComparison:
        return min(self.points, key=lambda p: p.predicted_seconds)

    @property
    def spread(self) -> float:
        """Worst/best actual execution-time ratio over the spectrum."""
        times = [p.actual_seconds for p in self.points]
        return max(times) / min(times)

    def chart(self, height: int = 12, width: int = 64) -> str:
        """ASCII rendering of this run's actual-vs-predicted curves (one
        panel of the paper's Figures 10/11)."""
        from repro.util.ascii_plot import ascii_plot

        return ascii_plot(
            [p.label for p in self.points],
            {
                "actual": [p.actual_seconds for p in self.points],
                "predicted": [p.predicted_seconds for p in self.points],
            },
            height=height,
            width=width,
            title=(
                f"{self.app_name} on {self.cluster_name} (seconds; best "
                f"actual at {self.best_actual.label!r})"
            ),
        )


def build_model(
    cluster: ClusterSpec,
    program: ProgramStructure,
    perturbation: Optional[PerturbationConfig] = None,
) -> MhetaModel:
    """Instrument one Blk iteration and construct the MHETA model."""
    d0 = block(cluster, program.n_rows)
    inputs = collect_inputs(cluster, program, d0, perturbation=perturbation)
    return MhetaModel(program, cluster, inputs)


def run_spectrum(
    cluster: ClusterSpec,
    program: ProgramStructure,
    steps_per_leg: int = 3,
    full_path: bool = False,
    perturbation: Optional[PerturbationConfig] = None,
    model: Optional[MhetaModel] = None,
) -> SpectrumRun:
    """Compare actual vs predicted over the distribution spectrum."""
    emulator = ClusterEmulator(cluster, program, perturbation)
    if model is None:
        model = build_model(cluster, program, perturbation)
    comparisons: List[PointComparison] = []
    seen = {}
    for point in spectrum(cluster, program, steps_per_leg, full_path):
        key = point.distribution.counts
        if key in seen:
            actual, predicted = seen[key]
        else:
            actual = emulator.run(point.distribution).total_seconds
            predicted = model.predict_seconds(point.distribution)
            seen[key] = (actual, predicted)
        comparisons.append(
            PointComparison(
                label=point.label,
                anchor=point.anchor,
                position=point.position,
                actual_seconds=actual,
                predicted_seconds=predicted,
            )
        )
    return SpectrumRun(
        app_name=program.name,
        cluster_name=cluster.name,
        points=tuple(comparisons),
    )
