"""Figure 9: min/avg/max percent difference across architecture suites.

The paper's four Figure-9 panels:

* top-left  — all four applications, seventeen architectures, no
  prefetching;
* top-right — Jacobi with prefetching, twelve architectures;
* bottom-left  — RNA alone (the best case);
* bottom-right — CG alone (the worst case).

Every panel plots, per spectrum position (Blk .. I-C .. I-C/Bal .. Bal
.. Blk), the minimum, average and maximum percent difference between
predicted and actual execution times over all (application,
architecture) pairs in the panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster.cluster import ClusterSpec
from repro.cluster.configs import architecture_suite, prefetch_suite
from repro.apps import paper_applications
from repro.experiments.common import SpectrumRun, run_spectrum
from repro.parallel.cache import SweepCache
from repro.parallel.runner import ParallelRunner
from repro.program.structure import ProgramStructure
from repro.util.tables import render_table

__all__ = ["AccuracyBands", "fig9_accuracy"]


@dataclass(frozen=True)
class AccuracyBands:
    """One Figure-9 panel: error bands per spectrum position."""

    title: str
    labels: Tuple[str, ...]  #: x axis (distribution labels)
    minimum: Tuple[float, ...]
    average: Tuple[float, ...]
    maximum: Tuple[float, ...]
    runs: Tuple[SpectrumRun, ...]

    @property
    def overall_average_percent(self) -> float:
        """The headline accuracy number: average error over every point
        of every run (the paper reports ~2%, i.e. ~98% accuracy)."""
        errors = [p.error_percent for run in self.runs for p in run.points]
        return sum(errors) / len(errors)

    @property
    def overall_accuracy_percent(self) -> float:
        return 100.0 - self.overall_average_percent

    def chart(self, height: int = 10, width: int = 64) -> str:
        """ASCII rendering of the min/avg/max bands (one Figure-9 panel)."""
        from repro.util.ascii_plot import ascii_plot

        return ascii_plot(
            list(self.labels),
            {
                "min": list(self.minimum),
                "avg": list(self.average),
                "max": list(self.maximum),
            },
            height=height,
            width=width,
            title=self.title + " (percent difference)",
        )

    def describe(self) -> str:
        rows = [
            [label, self.minimum[i], self.average[i], self.maximum[i]]
            for i, label in enumerate(self.labels)
        ]
        table = render_table(
            ["distribution", "min %", "avg %", "max %"],
            rows,
            float_fmt=".2f",
            title=self.title,
        )
        return (
            f"{table}\n"
            f"overall: {self.overall_average_percent:.2f}% average "
            f"difference ({self.overall_accuracy_percent:.1f}% accurate) "
            f"over {len(self.runs)} runs"
        )


def _aggregate(title: str, runs: Sequence[SpectrumRun]) -> AccuracyBands:
    if not runs:
        raise ValueError("no runs to aggregate")
    labels = tuple(p.label for p in runs[0].points)
    for run in runs:
        if tuple(p.label for p in run.points) != labels:
            raise ValueError("runs disagree on spectrum labels")
    minimum, average, maximum = [], [], []
    for i in range(len(labels)):
        errs = [run.points[i].error_percent for run in runs]
        minimum.append(min(errs))
        average.append(sum(errs) / len(errs))
        maximum.append(max(errs))
    return AccuracyBands(
        title=title,
        labels=labels,
        minimum=tuple(minimum),
        average=tuple(average),
        maximum=tuple(maximum),
        runs=tuple(runs),
    )


def _panel_task(
    spec: Tuple[ClusterSpec, ProgramStructure, int]
) -> SpectrumRun:
    """Process-pool task: one (architecture, application) spectrum run."""
    cluster, program, steps_per_leg = spec
    return run_spectrum(
        cluster, program, steps_per_leg=steps_per_leg, full_path=True
    )


def fig9_accuracy(
    panel: str = "all",
    *,
    architectures: Optional[Sequence[ClusterSpec]] = None,
    programs: Optional[Sequence[ProgramStructure]] = None,
    steps_per_leg: int = 3,
    scale: float = 1.0,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
) -> AccuracyBands:
    """Regenerate one Figure-9 panel.

    ``panel``: ``"all"`` (top-left), ``"jacobi-prefetch"`` (top-right),
    ``"rna"`` (bottom-left) or ``"cg"`` (bottom-right).  ``scale``
    shrinks the applications for quick runs; ``architectures`` and
    ``programs`` override the suites for testing.  ``jobs`` fans the
    independent (architecture, application) runs out over a process
    pool; results are bit-identical to ``jobs=1``.  ``cache`` memoises
    per-point pairs across invocations (serial path only — workers
    cannot share it).
    """
    apps = {a.name: a for a in paper_applications(scale)}
    if panel == "all":
        if programs is None:
            programs = [app.structure for app in apps.values()]
        suite = architectures or architecture_suite()
        title = (
            "Fig 9 (top-left): % difference, all applications, "
            "no prefetching"
        )
    elif panel == "jacobi-prefetch":
        if programs is None:
            programs = [apps["jacobi"].prefetching()]
        suite = architectures or prefetch_suite()
        title = "Fig 9 (top-right): % difference, Jacobi with prefetching"
    elif panel == "rna":
        if programs is None:
            programs = [apps["rna"].structure]
        suite = architectures or architecture_suite()
        title = "Fig 9 (bottom-left): % difference, RNA"
    elif panel == "cg":
        if programs is None:
            programs = [apps["cg"].structure]
        suite = architectures or architecture_suite()
        title = "Fig 9 (bottom-right): % difference, CG"
    else:
        raise ValueError(f"unknown panel {panel!r}")

    tasks = [
        (cluster, program, steps_per_leg)
        for cluster in suite
        for program in programs
    ]
    if jobs > 1 and cache is None:
        runs = ParallelRunner(jobs).map(_panel_task, tasks)
    else:
        runs = [
            run_spectrum(
                cluster,
                program,
                steps_per_leg=steps,
                full_path=True,
                cache=cache,
            )
            for cluster, program, steps in tasks
        ]
    return _aggregate(title, runs)
