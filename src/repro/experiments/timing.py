"""The ~5.4 ms-per-evaluation claim (Sections 1 and 5).

"Our measurements show that evaluating a single distribution in MHETA
takes about 5.4 ms.  This efficiency is important because we intend to
eventually use it within a new MPI-based runtime system that will choose
a distribution during runtime."

We time ``MhetaModel.predict`` over a mix of spectrum candidates.  Absolute numbers depend on the host (ours is a Python
reimplementation two decades later), so the claim under test is the
usable-on-the-fly property: milliseconds per evaluation, not seconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.cluster import ClusterSpec
from repro.cluster.configs import config_hy1
from repro.core.model import MhetaModel
from repro.distribution.spectrum import spectrum
from repro.experiments.common import build_model
from repro.apps import JacobiApp
from repro.program.structure import ProgramStructure

__all__ = ["TimingResult", "model_evaluation_timing"]

#: The paper's reported cost per evaluation.
PAPER_MILLISECONDS = 5.4


@dataclass(frozen=True)
class TimingResult:
    """Measured evaluation cost."""

    mean_ms: float
    min_ms: float
    max_ms: float
    evaluations: int
    paper_ms: float = PAPER_MILLISECONDS

    @property
    def usable_on_the_fly(self) -> bool:
        """The property the paper's number supports: cheap enough to
        evaluate hundreds of candidates inside a runtime system."""
        return self.mean_ms < 100.0

    def describe(self) -> str:
        return (
            f"MHETA evaluation: mean {self.mean_ms:.2f} ms "
            f"(min {self.min_ms:.2f}, max {self.max_ms:.2f}) over "
            f"{self.evaluations} evaluations; paper reports "
            f"{self.paper_ms} ms"
        )


def model_evaluation_timing(
    cluster: Optional[ClusterSpec] = None,
    program: Optional[ProgramStructure] = None,
    model: Optional[MhetaModel] = None,
    repeats: int = 5,
    kernel: str = "numpy",
) -> TimingResult:
    """Measure per-distribution prediction cost on Jacobi/HY1 (an
    arbitrary representative pair, overridable).  ``kernel`` selects
    the evaluation path when no ``model`` is supplied."""
    if cluster is None:
        cluster = config_hy1()
    if program is None:
        program = JacobiApp.paper().structure
    if model is None:
        model = build_model(cluster, program, kernel=kernel)
    candidates = [
        p.distribution for p in spectrum(cluster, program, steps_per_leg=4)
    ]
    # Warm-up pass (oracle caches, JIT-free but bytecode warm).
    for d in candidates:
        model.predict(d)
    samples: List[float] = []
    for _ in range(repeats):
        for d in candidates:
            t0 = time.perf_counter()
            model.predict(d)
            samples.append((time.perf_counter() - t0) * 1e3)
    return TimingResult(
        mean_ms=sum(samples) / len(samples),
        min_ms=min(samples),
        max_ms=max(samples),
        evaluations=len(samples),
    )
