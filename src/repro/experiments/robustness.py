"""Robustness study: MHETA accuracy under a non-dedicated cluster.

Paper Section 3.2: "At present, we assume a dedicated computing
environment — this is a problem we will consider in the future."  This
experiment quantifies *why* the assumption is load-bearing: the same
accuracy sweep is repeated with increasing background load (competing
jobs stealing a drifting fraction of each node's CPU), and the model's
error grows with the load because one instrumented iteration cannot
anticipate how the competition will drift afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.cluster.cluster import ClusterSpec
from repro.cluster.configs import config_hy2
from repro.experiments.common import run_spectrum
from repro.apps import JacobiApp
from repro.program.structure import ProgramStructure
from repro.sim.perturbation import PerturbationConfig
from repro.util.tables import render_table

__all__ = ["RobustnessResult", "dedicated_assumption_study"]

#: Background-load levels swept (fraction of CPU stolen on average).
DEFAULT_LOADS: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.4)


@dataclass(frozen=True)
class RobustnessResult:
    """Accuracy per background-load level."""

    app_name: str
    cluster_name: str
    mean_error: Dict[float, float]
    max_error: Dict[float, float]

    @property
    def dedicated_error(self) -> float:
        return self.mean_error[min(self.mean_error)]

    @property
    def worst_error(self) -> float:
        return max(self.mean_error.values())

    def describe(self) -> str:
        rows = [
            [f"{load:.0%}", self.mean_error[load], self.max_error[load]]
            for load in sorted(self.mean_error)
        ]
        return render_table(
            ["background load", "mean err %", "max err %"],
            rows,
            float_fmt=".2f",
            title=(
                f"MHETA accuracy vs background load "
                f"({self.app_name} on {self.cluster_name}) — why the paper "
                "assumes a dedicated cluster"
            ),
        )


def dedicated_assumption_study(
    cluster: Optional[ClusterSpec] = None,
    program: Optional[ProgramStructure] = None,
    loads: Sequence[float] = DEFAULT_LOADS,
    steps_per_leg: int = 2,
    scale: float = 1.0,
) -> RobustnessResult:
    """Sweep the accuracy experiment over background-load levels.

    The instrumented iteration runs under the same load regime as the
    measured runs (the competition exists throughout), so the model
    absorbs the *average* slowdown but not its drift.
    """
    if cluster is None:
        cluster = config_hy2()
    if program is None:
        program = JacobiApp.paper(scale).structure
    mean_error: Dict[float, float] = {}
    max_error: Dict[float, float] = {}
    for load in loads:
        perturbation = PerturbationConfig(background_load=load)
        run = run_spectrum(
            cluster,
            program,
            steps_per_leg=steps_per_leg,
            perturbation=perturbation,
        )
        mean_error[load] = run.mean_error_percent
        max_error[load] = run.max_error_percent
    return RobustnessResult(
        app_name=program.name,
        cluster_name=cluster.name,
        mean_error=mean_error,
        max_error=max_error,
    )
