"""Serialising experiment results.

Benchmark artefacts in ``benchmarks/results/`` are rendered text; these
helpers additionally export the underlying numbers as JSON so downstream
analysis (plotting, regression tracking across versions) can consume
them without re-running anything.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.experiments.accuracy import AccuracyBands
from repro.experiments.common import PointComparison, SpectrumRun

__all__ = [
    "spectrum_run_to_dict",
    "spectrum_run_from_dict",
    "accuracy_bands_to_dict",
    "save_json",
    "load_json",
]


def spectrum_run_to_dict(run: SpectrumRun) -> Dict[str, Any]:
    """JSON-ready dictionary for one spectrum sweep."""
    return {
        "kind": "spectrum_run",
        "app": run.app_name,
        "cluster": run.cluster_name,
        "points": [
            {
                "label": p.label,
                "anchor": p.anchor,
                "position": p.position,
                "actual_seconds": p.actual_seconds,
                "predicted_seconds": p.predicted_seconds,
            }
            for p in run.points
        ],
        "summary": {
            "mean_error_percent": run.mean_error_percent,
            "max_error_percent": run.max_error_percent,
            "spread": run.spread,
            "best_actual": run.best_actual.label,
            "best_predicted": run.best_predicted.label,
        },
    }


def spectrum_run_from_dict(data: Dict[str, Any]) -> SpectrumRun:
    """Rebuild a :class:`SpectrumRun` from its exported dictionary."""
    if data.get("kind") != "spectrum_run":
        raise ValueError(f"not a spectrum_run export: {data.get('kind')!r}")
    points = tuple(
        PointComparison(
            label=p["label"],
            anchor=p["anchor"],
            position=p["position"],
            actual_seconds=p["actual_seconds"],
            predicted_seconds=p["predicted_seconds"],
        )
        for p in data["points"]
    )
    return SpectrumRun(
        app_name=data["app"], cluster_name=data["cluster"], points=points
    )


def accuracy_bands_to_dict(bands: AccuracyBands) -> Dict[str, Any]:
    """JSON-ready dictionary for one Figure-9 panel."""
    return {
        "kind": "accuracy_bands",
        "title": bands.title,
        "labels": list(bands.labels),
        "minimum": list(bands.minimum),
        "average": list(bands.average),
        "maximum": list(bands.maximum),
        "overall_average_percent": bands.overall_average_percent,
        "runs": [spectrum_run_to_dict(r) for r in bands.runs],
    }


def save_json(data: Dict[str, Any], path) -> None:
    """Write an export to disk."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2)


def load_json(path) -> Dict[str, Any]:
    """Read an export back."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
