"""Error ablation: where MHETA's residual error comes from.

Section 5.4 attributes MHETA's error to (1) un-modelled memory-hierarchy
effects, (2) the simplistic out-of-core heuristic, and (3) sparse data
sets; Section 5.2.1 adds instrumented-iteration perturbation.  Our
emulator implements each as a switchable effect, so we can measure each
one's contribution directly: run the same accuracy sweep with all
effects on, then with one effect disabled at a time, and report the
error drop.  (This experiment has no figure in the paper — it is the
quantitative backing for Section 5.4's qualitative claims.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.cluster.cluster import ClusterSpec
from repro.cluster.configs import config_io
from repro.experiments.common import run_spectrum
from repro.apps import ConjugateGradientApp
from repro.program.structure import ProgramStructure
from repro.sim.perturbation import PerturbationConfig
from repro.util.tables import render_table

__all__ = ["AblationResult", "error_ablation"]

#: Effect-name -> PerturbationConfig field(s) it controls.
EFFECTS: Dict[str, Dict[str, bool]] = {
    "compute-noise": {"compute_noise": False},
    "cache-effects": {"cache_effects": False},
    "os-read-cache": {"os_read_cache": False},
    "sparse-weights": {"sparse_weights": False},
    "runtime-overhead": {"runtime_overhead": False},
}


@dataclass(frozen=True)
class AblationResult:
    """Mean/max error with all effects on, and with each disabled."""

    app_name: str
    cluster_name: str
    baseline_mean: float
    baseline_max: float
    without: Dict[str, Tuple[float, float]]  #: effect -> (mean, max)

    def contribution(self, effect: str) -> float:
        """Error (mean %) attributable to ``effect``."""
        return self.baseline_mean - self.without[effect][0]

    def describe(self) -> str:
        rows = [["(all effects on)", self.baseline_mean, self.baseline_max, ""]]
        for effect, (mean, mx) in self.without.items():
            rows.append(
                [
                    f"without {effect}",
                    mean,
                    mx,
                    f"{self.baseline_mean - mean:+.2f}",
                ]
            )
        return render_table(
            ["emulator effects", "mean err %", "max err %", "delta mean"],
            rows,
            float_fmt=".2f",
            title=(
                f"Error ablation: {self.app_name} on {self.cluster_name} "
                "(Section 5.4's limitations, measured)"
            ),
        )


def error_ablation(
    cluster: Optional[ClusterSpec] = None,
    program: Optional[ProgramStructure] = None,
    steps_per_leg: int = 3,
    scale: float = 1.0,
) -> AblationResult:
    """Measure each effect's error contribution.

    Defaults to CG on configuration IO — the pair where the paper's
    limitations show most clearly.
    """
    if cluster is None:
        cluster = config_io()
    if program is None:
        program = ConjugateGradientApp.paper(scale).structure
    base = run_spectrum(
        cluster, program, steps_per_leg=steps_per_leg,
        perturbation=PerturbationConfig(),
    )
    without: Dict[str, Tuple[float, float]] = {}
    for effect, flags in EFFECTS.items():
        run = run_spectrum(
            cluster,
            program,
            steps_per_leg=steps_per_leg,
            perturbation=PerturbationConfig().without(**flags),
        )
        without[effect] = (run.mean_error_percent, run.max_error_percent)
    return AblationResult(
        app_name=program.name,
        cluster_name=cluster.name,
        baseline_mean=base.mean_error_percent,
        baseline_max=base.max_error_percent,
        without=without,
    )
