"""Table 1: the four sample configurations, rendered."""

from __future__ import annotations

from repro.cluster.configs import table1_configs
from repro.util.tables import render_table
from repro.util.units import bytes_to_human

__all__ = ["table1"]

_DESCRIPTIONS = {
    "DC": (
        "Two nodes have a lower relative CPU power, and two other nodes "
        "have higher relative CPU power.  The rest are unchanged."
    ),
    "IO": (
        "Half of the nodes have high I/O latency and small memories, but "
        "all nodes have equal relative CPU power."
    ),
    "HY1": (
        "Four nodes have varying relative CPU powers and the other four "
        "have low I/O latencies and small memories."
    ),
    "HY2": (
        "Four nodes have varying relative CPU power and two nodes have "
        "high I/O latencies.  The other two have large memories."
    ),
}


def table1() -> str:
    """Render the paper's Table 1, with the concrete parameters of this
    reproduction's emulated nodes underneath each description."""
    blocks = []
    for name, cluster in table1_configs().items():
        rows = []
        for i, node in enumerate(cluster.nodes):
            rows.append(
                [
                    i,
                    node.cpu_power,
                    bytes_to_human(node.memory_bytes),
                    f"{node.disk_read_bw / 1e6:.1f} MB/s",
                    f"{node.disk_read_seek * 1e3:.0f} ms",
                ]
            )
        table = render_table(
            ["node", "cpu power", "memory", "disk read bw", "seek"],
            rows,
            float_fmt=".2f",
            title=f"{name}: {_DESCRIPTIONS[name]}",
        )
        blocks.append(table)
    return "\n\n".join(blocks)
