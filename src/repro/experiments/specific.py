"""Figures 10 and 11: predicted vs actual curves per configuration.

Each paper panel shows, for one Table-1 configuration and two
applications, the actual and predicted execution times (seconds) across
the distribution spectrum, with the best distribution circled — one
circle when model and reality agree on the winner, an extra dashed
circle when they disagree (as happened for CG in configuration IO).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.cluster.cluster import ClusterSpec
from repro.cluster.configs import table1_configs
from repro.apps import paper_applications
from repro.experiments.common import SpectrumRun, run_spectrum
from repro.parallel.runner import ParallelRunner
from repro.sim.perturbation import PerturbationConfig
from repro.util.tables import render_series

__all__ = ["ConfigCurves", "config_curves", "figure10", "figure11"]


@dataclass(frozen=True)
class ConfigCurves:
    """All four applications' curves on one configuration."""

    config_name: str
    runs: Tuple[SpectrumRun, ...]

    def run(self, app_name: str) -> SpectrumRun:
        for r in self.runs:
            if r.app_name == app_name:
                return r
        raise KeyError(app_name)

    def circles(self) -> Dict[str, Tuple[str, str]]:
        """Per app: (actual-best label, predicted-best label).  Equal
        labels = one circle in the paper's figures; different labels =
        the dashed-circle disagreement."""
        return {
            r.app_name: (r.best_actual.label, r.best_predicted.label)
            for r in self.runs
        }

    def describe(self) -> str:
        blocks = []
        for r in self.runs:
            series = {
                f"{r.app_name}-Actual": [p.actual_seconds for p in r.points],
                f"{r.app_name}-Predicted": [
                    p.predicted_seconds for p in r.points
                ],
            }
            best_a, best_p = (
                r.best_actual.label,
                r.best_predicted.label,
            )
            marker = (
                f"best: {best_a} (model agrees)"
                if best_a == best_p
                else f"best actual: {best_a}; model circles {best_p} (dashed)"
            )
            blocks.append(
                render_series(
                    "distribution",
                    [p.label for p in r.points],
                    series,
                    float_fmt=".2f",
                    title=(
                        f"{self.config_name} / {r.app_name} — {marker}; "
                        f"avg err {r.mean_error_percent:.2f}%"
                    ),
                )
            )
        return "\n\n".join(blocks)


def _curves_task(spec) -> SpectrumRun:
    """Process-pool task: one application's curve on one configuration."""
    cluster, program, steps_per_leg, perturbation = spec
    return run_spectrum(
        cluster,
        program,
        steps_per_leg=steps_per_leg,
        perturbation=perturbation,
    )


def config_curves(
    config_name: str,
    *,
    cluster: Optional[ClusterSpec] = None,
    steps_per_leg: int = 4,
    scale: float = 1.0,
    apps: Optional[Sequence[str]] = None,
    perturbation: Optional[PerturbationConfig] = None,
    jobs: int = 1,
) -> ConfigCurves:
    """Predicted-vs-actual curves for one named configuration.

    ``jobs`` fans the per-application sweeps out over a process pool;
    results are bit-identical to the serial run.
    """
    if cluster is None:
        cluster = table1_configs()[config_name]
    wanted = set(apps) if apps is not None else None
    tasks = [
        (cluster, app.structure, steps_per_leg, perturbation)
        for app in paper_applications(scale)
        if wanted is None or app.name in wanted
    ]
    runs = ParallelRunner(jobs).map(_curves_task, tasks)
    return ConfigCurves(config_name=config_name, runs=tuple(runs))


def figure10(
    steps_per_leg: int = 4, scale: float = 1.0, jobs: int = 1
) -> Tuple[ConfigCurves, ConfigCurves]:
    """Figure 10: configurations DC (top panels) and IO (bottom panels),
    each panel pairing CG+Jacobi (left) and Lanczos+RNA (right)."""
    return (
        config_curves("DC", steps_per_leg=steps_per_leg, scale=scale, jobs=jobs),
        config_curves("IO", steps_per_leg=steps_per_leg, scale=scale, jobs=jobs),
    )


def figure11(
    steps_per_leg: int = 4, scale: float = 1.0, jobs: int = 1
) -> Tuple[ConfigCurves, ConfigCurves]:
    """Figure 11: configurations HY1 (top) and HY2 (bottom)."""
    return (
        config_curves("HY1", steps_per_leg=steps_per_leg, scale=scale, jobs=jobs),
        config_curves("HY2", steps_per_leg=steps_per_leg, scale=scale, jobs=jobs),
    )
