"""GenBlock2D: variable row and column bands over a processor grid.

A 2-D distribution arranges the P nodes in an R x C grid (R * C == P)
and partitions the global N x M array into R variable-height row bands
and C variable-width column bands; node (i, j) owns the intersection of
row band i and column band j.  This is the natural 2-D generalisation of
HPF's GEN_BLOCK, and the decomposition used by 2-D stencil codes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.distribution.genblock import largest_remainder_round
from repro.exceptions import DistributionError

__all__ = ["GenBlock2D", "factor_pairs", "block2d", "balanced2d"]


def factor_pairs(p: int) -> List[Tuple[int, int]]:
    """All (R, C) grid shapes with ``R * C == p``, R and C >= 1."""
    pairs = []
    for r in range(1, p + 1):
        if p % r == 0:
            pairs.append((r, p // r))
    return pairs


@dataclass(frozen=True)
class GenBlock2D:
    """A 2-D block distribution.

    ``row_counts[i]`` rows go to grid row ``i``; ``col_counts[j]``
    columns go to grid column ``j``.  Node rank ``i * C + j`` owns the
    ``row_counts[i] x col_counts[j]`` tile.
    """

    row_counts: Tuple[int, ...]
    col_counts: Tuple[int, ...]

    def __init__(self, row_counts: Sequence[int], col_counts: Sequence[int]):
        rows = tuple(int(x) for x in row_counts)
        cols = tuple(int(x) for x in col_counts)
        if not rows or not cols:
            raise DistributionError("need at least one row and column band")
        if any(x < 0 for x in rows) or any(x < 0 for x in cols):
            raise DistributionError("band sizes must be non-negative")
        object.__setattr__(self, "row_counts", rows)
        object.__setattr__(self, "col_counts", cols)

    # -- structure ------------------------------------------------------------

    @property
    def grid_shape(self) -> Tuple[int, int]:
        return len(self.row_counts), len(self.col_counts)

    @property
    def n_nodes(self) -> int:
        r, c = self.grid_shape
        return r * c

    @property
    def n_rows(self) -> int:
        return int(sum(self.row_counts))

    @property
    def n_cols(self) -> int:
        return int(sum(self.col_counts))

    def coords(self, rank: int) -> Tuple[int, int]:
        """Grid coordinates (i, j) of node ``rank``."""
        r, c = self.grid_shape
        if not 0 <= rank < r * c:
            raise DistributionError(f"rank {rank} outside the {r}x{c} grid")
        return rank // c, rank % c

    def rank(self, i: int, j: int) -> int:
        r, c = self.grid_shape
        if not (0 <= i < r and 0 <= j < c):
            raise DistributionError(f"({i}, {j}) outside the {r}x{c} grid")
        return i * c + j

    def tile(self, rank: int) -> Tuple[int, int]:
        """(rows, cols) of the tile node ``rank`` owns."""
        i, j = self.coords(rank)
        return self.row_counts[i], self.col_counts[j]

    def tile_elements(self, rank: int) -> int:
        rows, cols = self.tile(rank)
        return rows * cols

    def neighbors(self, rank: int) -> List[Tuple[str, int]]:
        """The 4-neighbourhood: (direction, rank) pairs that exist."""
        i, j = self.coords(rank)
        r, c = self.grid_shape
        out = []
        if i > 0:
            out.append(("north", self.rank(i - 1, j)))
        if i < r - 1:
            out.append(("south", self.rank(i + 1, j)))
        if j > 0:
            out.append(("west", self.rank(i, j - 1)))
        if j < c - 1:
            out.append(("east", self.rank(i, j + 1)))
        return out

    def halo_elements(self, rank: int, direction: str) -> int:
        """Elements in the boundary message sent in ``direction``: a row
        of the tile for north/south, a column for east/west."""
        rows, cols = self.tile(rank)
        if direction in ("north", "south"):
            return cols
        if direction in ("east", "west"):
            return rows
        raise DistributionError(f"unknown direction {direction!r}")

    def __str__(self) -> str:
        return (
            f"GenBlock2D(rows={list(self.row_counts)}, "
            f"cols={list(self.col_counts)})"
        )


def block2d(
    n_rows: int, n_cols: int, grid_shape: Tuple[int, int]
) -> GenBlock2D:
    """Even 2-D split over an R x C grid."""
    r, c = grid_shape
    return GenBlock2D(
        largest_remainder_round(np.ones(r), n_rows, minimum=1),
        largest_remainder_round(np.ones(c), n_cols, minimum=1),
    )


def balanced2d(
    cluster: ClusterSpec,
    n_rows: int,
    n_cols: int,
    grid_shape: Tuple[int, int],
) -> GenBlock2D:
    """Load-balance a 2-D split against heterogeneous CPU powers.

    Tile areas should be proportional to node powers, but a rectangular
    grid cannot realise arbitrary area targets: band heights/widths are
    shared along each grid row/column.  We use the separable
    approximation — row band i proportional to the total power of grid
    row i, column band j to the total power of grid column j — which is
    exact whenever the power matrix is rank one (e.g. all heterogeneity
    concentrated along one grid axis).
    """
    r, c = grid_shape
    if r * c != cluster.n_nodes:
        raise DistributionError(
            f"grid {r}x{c} does not cover {cluster.n_nodes} nodes"
        )
    powers = cluster.cpu_powers.reshape(r, c)
    row_weights = powers.sum(axis=1)
    col_weights = powers.sum(axis=0)
    return GenBlock2D(
        largest_remainder_round(row_weights, n_rows, minimum=1),
        largest_remainder_round(col_weights, n_cols, minimum=1),
    )
