"""Quantifying "the search space increases greatly" (paper Section 5.1).

The paper declines 2-D distributions because a runtime search over them
is too expensive.  This experiment makes that argument quantitative:

* a 1-D GEN_BLOCK over P nodes at band-size resolution g (each block a
  multiple of ``n_rows / g``) has ``C(g - 1, P - 1)`` candidates —
  compositions of g units into P positive parts;
* a 2-D GenBlock2D additionally chooses the grid shape (R, C) with
  ``R * C = P`` and *two* independent band vectors, giving
  ``sum over (R, C) of C(g-1, R-1) * C(g-1, C-1)`` candidates.

At the paper's ~5.4 ms per MHETA evaluation (or our measured cost), the
candidate counts translate directly into exhaustive-search times, which
is the comparison :func:`search_space_growth` reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import List, Tuple

from repro.twod.distribution2d import factor_pairs
from repro.util.tables import render_table

__all__ = [
    "one_d_candidates",
    "two_d_candidates",
    "SearchSpaceComparison",
    "search_space_growth",
]


def one_d_candidates(n_nodes: int, granularity: int) -> int:
    """Number of 1-D GEN_BLOCK layouts at band resolution ``granularity``
    (every node gets at least one unit)."""
    if granularity < n_nodes:
        return 0
    return comb(granularity - 1, n_nodes - 1)


def two_d_candidates(n_nodes: int, granularity: int) -> int:
    """Number of 2-D layouts: grid shapes x row bands x column bands."""
    total = 0
    for r, c in factor_pairs(n_nodes):
        rows = one_d_candidates(r, granularity)
        cols = one_d_candidates(c, granularity)
        total += rows * cols
    return total


@dataclass(frozen=True)
class SearchSpaceComparison:
    """Candidate counts and exhaustive-evaluation times per granularity."""

    n_nodes: int
    eval_ms: float
    rows: Tuple[Tuple[int, int, int, float, float], ...]
    #: (granularity, 1-D count, 2-D count, 1-D seconds, 2-D seconds)

    @property
    def worst_blowup(self) -> float:
        return max(two / max(one, 1) for _, one, two, _, _ in self.rows)

    def describe(self) -> str:
        table_rows: List[List] = []
        for g, one, two, t1, t2 in self.rows:
            table_rows.append(
                [
                    g,
                    one,
                    two,
                    f"{two / max(one, 1):,.0f}x",
                    _fmt_time(t1),
                    _fmt_time(t2),
                ]
            )
        return render_table(
            [
                "granularity",
                "1-D layouts",
                "2-D layouts",
                "blow-up",
                "1-D exhaustive",
                "2-D exhaustive",
            ],
            table_rows,
            title=(
                f"Search-space growth, {self.n_nodes} nodes at "
                f"{self.eval_ms:.2f} ms per MHETA evaluation "
                "(paper Section 5.1's argument, quantified)"
            ),
        )


def _fmt_time(seconds: float) -> str:
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.1f} s"
    if seconds < 7200.0:
        return f"{seconds / 60:.1f} min"
    if seconds < 86400.0 * 3:
        return f"{seconds / 3600:.1f} h"
    return f"{seconds / 86400:.1f} days"


def search_space_growth(
    n_nodes: int = 8,
    granularities: Tuple[int, ...] = (8, 16, 32, 64),
    eval_ms: float = 5.4,
) -> SearchSpaceComparison:
    """Build the comparison table.

    ``eval_ms`` defaults to the paper's measured evaluation cost so the
    exhaustive times are the ones the authors would have faced.
    """
    rows = []
    for g in granularities:
        one = one_d_candidates(n_nodes, g)
        two = two_d_candidates(n_nodes, g)
        rows.append(
            (g, one, two, one * eval_ms / 1e3, two * eval_ms / 1e3)
        )
    return SearchSpaceComparison(
        n_nodes=n_nodes, eval_ms=eval_ms, rows=tuple(rows)
    )
