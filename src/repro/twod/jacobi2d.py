"""2-D Jacobi: emulator and MHETA-style model for GenBlock2D layouts.

The 1-D machinery distributes rows only; a 2-D stencil decomposition
owns a ``rows x cols`` tile, exchanges four halos per iteration (north/
south rows, east/west columns) and reduces a residual.  This module
implements that workload twice, exactly like the 1-D core:

* :class:`TwoDEmulator` — a discrete-event execution on the same engine,
  disk model and perturbation layer as :mod:`repro.sim`;
* :class:`TwoDModel` — the analytical mirror, fed by one instrumented
  iteration plus the standard microbenchmarks.

Under ideal conditions (perturbations off, perfect timers) the two agree
exactly, extending the reproduction's central invariant to 2-D — the
support the paper's Section 5.1 asserts exists before declining to use
it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import ClusterSpec
from repro.core.comm import SectionTimeline
from repro.exceptions import ModelError, SimulationError
from repro.instrument.collect import MeasurementConfig
from repro.instrument.microbench import Microbenchmarks, run_microbenchmarks
from repro.sim.disk import DiskModel
from repro.sim.engine import Delay, Engine, Recv, Send
from repro.sim.perturbation import PerturbationConfig, PerturbationModel
from repro.twod.distribution2d import GenBlock2D
from repro.util.rng import stream
from repro.util.units import DOUBLE

__all__ = ["Jacobi2DSpec", "TwoDEmulator", "TwoDModel", "build_2d_model"]

#: Direction order for halo sends/receives (fixed, mirrored by the model).
DIRECTIONS = ("north", "south", "west", "east")
_OPPOSITE = {"north": "south", "south": "north", "west": "east", "east": "west"}


@dataclass(frozen=True)
class Jacobi2DSpec:
    """The 2-D Jacobi workload: an N x M read-write grid of doubles."""

    n_rows: int
    n_cols: int
    iterations: int = 100
    work_per_element: float = 60e-9
    element_size: int = DOUBLE

    def tile_bytes(self, rows: int, cols: int) -> float:
        return rows * cols * self.element_size


class TwoDEmulator:
    """Discrete-event execution of 2-D Jacobi under a GenBlock2D."""

    def __init__(
        self,
        cluster: ClusterSpec,
        spec: Jacobi2DSpec,
        perturbation: Optional[PerturbationConfig] = None,
    ) -> None:
        self.cluster = cluster
        self.spec = spec
        self.perturbation = (
            perturbation if perturbation is not None else PerturbationConfig()
        )

    # -- placement ---------------------------------------------------------

    def _block_rows(self, rank: int, dist: GenBlock2D, forced: bool) -> Tuple[bool, int]:
        """(in_core, rows per ICLA chunk) for the node's tile."""
        rows, cols = dist.tile(rank)
        node = self.cluster[rank]
        tile = self.spec.tile_bytes(rows, cols)
        row_bytes = cols * self.spec.element_size
        if not forced and tile <= node.memory_bytes:
            return True, max(rows, 1)
        budget = node.memory_bytes if not forced else max(tile / 2, row_bytes)
        chunk = max(1, int(budget // max(row_bytes, 1e-12)))
        if forced:
            chunk = max(1, min(chunk, rows // 2 or 1))
        return False, min(chunk, max(rows, 1))

    # -- execution ------------------------------------------------------------

    def run(
        self,
        dist: GenBlock2D,
        *,
        iterations: Optional[int] = None,
        instrumented: bool = False,
        collector: Optional["_TwoDCollector"] = None,
    ) -> float:
        if dist.n_nodes != self.cluster.n_nodes:
            raise SimulationError("grid shape does not cover the cluster")
        if dist.n_rows != self.spec.n_rows or dist.n_cols != self.spec.n_cols:
            raise SimulationError("distribution does not cover the array")
        n_iter = iterations if iterations is not None else self.spec.iterations
        engine = Engine()
        for rank in range(dist.n_nodes):
            engine.add_process(
                self._node(rank, dist, n_iter, instrumented, collector),
                node=rank,
            )
        return engine.run()

    def _node(self, rank, dist, n_iter, instrumented, collector):
        spec = self.spec
        node = self.cluster[rank]
        net = self.cluster.network
        rows, cols = dist.tile(rank)
        in_core, chunk_rows = self._block_rows(rank, dist, instrumented)
        row_bytes = cols * spec.element_size
        tile_bytes = spec.tile_bytes(rows, cols)
        disk = DiskModel(
            node,
            resident_bytes=(tile_bytes if in_core else chunk_rows * row_bytes),
            cache_enabled=self.perturbation.os_read_cache,
        )
        if not in_core:
            disk.register_variable("grid2d", tile_bytes)
        perturb = PerturbationModel(
            self.perturbation,
            run_labels=(
                "2d",
                self.cluster.name,
                f"{dist.row_counts}x{dist.col_counts}",
                rank,
                "instr" if instrumented else "run",
            ),
        )
        now = 0.0

        def cpu(seconds):
            nonlocal now
            if seconds > 0:
                now = float((yield Delay(seconds)))

        neighbors = dist.neighbors(rank)
        for it in range(n_iter):
            # -- stage: sweep the tile (streaming if out of core) ----------
            work = rows * cols * spec.work_per_element
            nominal = node.compute_seconds(work)
            ws = chunk_rows * row_bytes if not in_core else tile_bytes
            compute_total = perturb.perturb_compute(node, nominal, ws)
            compute_done = 0.0
            if in_core:
                start = now
                yield from cpu(compute_total)
                compute_done = compute_total
                if collector is not None:
                    collector.on_compute(rank, it, compute_total)
            else:
                remaining = rows
                while remaining > 0:
                    take = min(chunk_rows, remaining)
                    nbytes = take * row_bytes
                    op = disk.submit_read(now, "grid2d", nbytes)
                    read_dur = op.done - now
                    yield from cpu(read_dur)
                    if collector is not None:
                        collector.on_read(rank, read_dur, nbytes)
                    share = compute_total * take / rows
                    yield from cpu(share)
                    compute_done += share
                    if collector is not None:
                        collector.on_compute(rank, it, share)
                    wop = disk.submit_write(now, "grid2d", nbytes)
                    write_dur = wop.done - now
                    yield from cpu(write_dur)
                    if collector is not None:
                        collector.on_write(rank, write_dur, nbytes)
                    remaining -= take
            # -- halo exchange (sends in fixed order, then receives) -------
            for direction, other in neighbors:
                nbytes = dist.halo_elements(rank, direction) * spec.element_size
                if not in_core:
                    op = disk.submit_read(now, "grid2d", nbytes)
                    dur = op.done - now
                    yield from cpu(dur)
                    if collector is not None:
                        collector.on_read(rank, dur, nbytes)
                yield from cpu(net.send_overhead)
                yield Send(
                    other,
                    f"{it}:halo:{direction}",
                    transfer=net.transfer_seconds(nbytes),
                )
            for direction, other in neighbors:
                result = yield Recv(other, f"{it}:halo:{_OPPOSITE[direction]}")
                now = float(result)
                yield from cpu(net.recv_overhead)
            # -- residual allreduce (binomial reduce + broadcast) -----------
            yield from self._allreduce(rank, dist.n_nodes, it, net, cpu)

    def _allreduce(self, rank, P, it, net, cpu):
        nbytes = 8.0
        mask = 1
        while mask < P:
            if rank & mask:
                yield from cpu(net.send_overhead)
                yield Send(
                    rank - mask,
                    f"{it}:red:{mask}",
                    transfer=net.transfer_seconds(nbytes),
                )
                break
            partner = rank | mask
            if partner < P:
                result = yield Recv(partner, f"{it}:red:{mask}")
                yield from cpu(net.recv_overhead)
            mask <<= 1
        pot = 1
        while pot < P:
            pot <<= 1
        mask = pot >> 1
        while mask > 0:
            if rank % (2 * mask) == 0:
                if rank + mask < P:
                    yield from cpu(net.send_overhead)
                    yield Send(
                        rank + mask,
                        f"{it}:bc:{mask}",
                        transfer=net.transfer_seconds(nbytes),
                    )
            elif rank % (2 * mask) == mask:
                result = yield Recv(rank - mask, f"{it}:bc:{mask}")
                yield from cpu(net.recv_overhead)
            mask >>= 1


class _TwoDCollector:
    """Instrumented-iteration measurements for the 2-D model."""

    def __init__(self, measurement: MeasurementConfig, rng) -> None:
        self._m = measurement
        self._rng = rng
        self.compute: Dict[int, float] = defaultdict(float)
        self.read_seconds: Dict[int, float] = defaultdict(float)
        self.read_bytes: Dict[int, float] = defaultdict(float)
        self.read_ops: Dict[int, int] = defaultdict(int)
        self.write_seconds: Dict[int, float] = defaultdict(float)
        self.write_bytes: Dict[int, float] = defaultdict(float)
        self.write_ops: Dict[int, int] = defaultdict(int)

    def _measured(self, duration: float) -> float:
        rel = self._m.relative_bias + self._rng.normal(
            0.0, self._m.relative_sigma
        )
        return duration * (1.0 + rel) + self._m.timer_overhead

    def on_compute(self, rank, it, duration):
        self.compute[rank] += self._measured(duration)

    def on_read(self, rank, duration, nbytes):
        self.read_seconds[rank] += self._measured(duration)
        self.read_bytes[rank] += nbytes
        self.read_ops[rank] += 1

    def on_write(self, rank, duration, nbytes):
        self.write_seconds[rank] += self._measured(duration)
        self.write_bytes[rank] += nbytes
        self.write_ops[rank] += 1


@dataclass(frozen=True)
class TwoDInputs:
    """The 2-D analogue of the internal MHETA file."""

    distribution0: GenBlock2D
    compute_seconds: Tuple[float, ...]  #: per node, at d0's tile areas
    read_per_byte: Tuple[float, ...]
    write_per_byte: Tuple[float, ...]
    micro: Microbenchmarks


class TwoDModel:
    """The MHETA equations over 2-D tiles."""

    def __init__(
        self, cluster: ClusterSpec, spec: Jacobi2DSpec, inputs: TwoDInputs
    ) -> None:
        self.cluster = cluster
        self.spec = spec
        self.inputs = inputs
        self._timeline = SectionTimeline(inputs.micro, cluster.n_nodes)

    # -- per-node stage time ----------------------------------------------------

    def _stage_seconds(self, rank: int, dist: GenBlock2D) -> float:
        spec = self.spec
        rows, cols = dist.tile(rank)
        area = rows * cols
        area0 = self.inputs.distribution0.tile_elements(rank)
        if area0 <= 0:
            raise ModelError(f"node {rank}: empty instrumented tile")
        compute = self.inputs.compute_seconds[rank] * (area / area0)
        node = self.cluster[rank]
        tile_bytes = spec.tile_bytes(rows, cols)
        if tile_bytes <= node.memory_bytes:
            return compute
        disk = self.inputs.micro.disks[rank]
        row_bytes = cols * spec.element_size
        chunk_rows = max(1, int(node.memory_bytes // max(row_bytes, 1e-12)))
        chunk_rows = min(chunk_rows, rows)
        n_io = -(-rows // chunk_rows)
        io = n_io * (disk.read_seek + disk.write_seek) + tile_bytes * (
            self.inputs.read_per_byte[rank] + self.inputs.write_per_byte[rank]
        )
        return compute + io

    def _halo_read_seconds(self, rank: int, dist: GenBlock2D, nbytes: float) -> float:
        rows, cols = dist.tile(rank)
        node = self.cluster[rank]
        if self.spec.tile_bytes(rows, cols) <= node.memory_bytes:
            return 0.0
        disk = self.inputs.micro.disks[rank]
        return disk.read_seek + nbytes * self.inputs.read_per_byte[rank]

    # -- prediction ------------------------------------------------------------

    def predict_seconds(
        self, dist: GenBlock2D, iterations: Optional[int] = None
    ) -> float:
        if dist.n_nodes != self.cluster.n_nodes:
            raise ModelError("grid shape does not cover the cluster")
        n_iter = iterations if iterations is not None else self.spec.iterations
        P = self.cluster.n_nodes
        net = self.inputs.micro
        stage = [self._stage_seconds(rank, dist) for rank in range(P)]

        clocks = [0.0] * P
        prev_steady = None
        ends: List[List[float]] = []
        simulate = 0
        while simulate < n_iter:
            clocks = self._iterate(dist, stage, clocks, net)
            ends.append(list(clocks))
            simulate += 1
            if len(ends) >= 2:
                steady = [ends[-1][n] - ends[-2][n] for n in range(P)]
                if prev_steady is not None and all(
                    abs(a - b) <= 1e-12 + 1e-9 * abs(b)
                    for a, b in zip(steady, prev_steady)
                ):
                    break
                prev_steady = steady
        if n_iter == 1 or len(ends) < 2:
            return max(ends[0])
        steady = [ends[-1][n] - ends[-2][n] for n in range(P)]
        return max(
            ends[-1][n] + steady[n] * (n_iter - simulate) for n in range(P)
        )

    def _iterate(self, dist, stage, start, net):
        """One iteration's max-plus mirror: stage, halos, allreduce."""
        P = len(start)
        os_ = net.send_overhead
        or_ = net.recv_overhead
        # Halo exchange: sends in DIRECTIONS order, then receives.
        deliver: Dict[Tuple[int, str], float] = {}
        ready = [0.0] * P
        for rank in range(P):
            t = start[rank] + stage[rank]
            for direction, _other in dist.neighbors(rank):
                nbytes = dist.halo_elements(rank, direction) * self.spec.element_size
                t += self._halo_read_seconds(rank, dist, nbytes)
                t += os_
                deliver[(rank, direction)] = t + net.transfer_seconds(nbytes)
            ready[rank] = t
        after_halo = list(ready)
        for rank in range(P):
            t = ready[rank]
            for direction, other in dist.neighbors(rank):
                t = max(t, deliver[(other, _OPPOSITE[direction])]) + or_
            after_halo[rank] = t
        # Residual allreduce: reuse the 1-D reduction mirror.
        from repro.program.sections import CommPattern

        return self._timeline.advance(
            CommPattern.REDUCTION,
            after_halo,
            [[0.0]] * P,
            8.0,
            [0.0] * P,
        )


def build_2d_model(
    cluster: ClusterSpec,
    spec: Jacobi2DSpec,
    d0: GenBlock2D,
    perturbation: Optional[PerturbationConfig] = None,
    measurement: Optional[MeasurementConfig] = None,
    micro: Optional[Microbenchmarks] = None,
) -> TwoDModel:
    """Instrument one 2-D iteration under ``d0`` and build the model."""
    measurement = measurement or MeasurementConfig()
    micro = micro or run_microbenchmarks(cluster)
    rng = stream("2d-measurement", cluster.name, spec.n_rows, spec.n_cols)
    collector = _TwoDCollector(measurement, rng)
    emulator = TwoDEmulator(cluster, spec, perturbation)
    emulator.run(d0, iterations=1, instrumented=True, collector=collector)
    P = cluster.n_nodes
    read_pb = []
    write_pb = []
    for rank in range(P):
        disk = micro.disks[rank]
        rb = collector.read_bytes[rank]
        wb = collector.write_bytes[rank]
        read_pb.append(
            max(collector.read_seconds[rank] - collector.read_ops[rank] * disk.read_seek, 0.0) / rb
            if rb > 0
            else disk.read_byte_latency
        )
        write_pb.append(
            max(collector.write_seconds[rank] - collector.write_ops[rank] * disk.write_seek, 0.0) / wb
            if wb > 0
            else disk.write_byte_latency
        )
    inputs = TwoDInputs(
        distribution0=d0,
        compute_seconds=tuple(collector.compute[r] for r in range(P)),
        read_per_byte=tuple(read_pb),
        write_per_byte=tuple(write_pb),
        micro=micro,
    )
    return TwoDModel(cluster, spec, inputs)
