"""2-D Jacobi: emulator and MHETA-style model for GenBlock2D layouts.

The 1-D machinery distributes rows only; a 2-D stencil decomposition
owns a ``rows x cols`` tile, exchanges four halos per iteration (north/
south rows, east/west columns) and reduces a residual.  This module
implements that workload twice, exactly like the 1-D core:

* :class:`TwoDEmulator` — a discrete-event execution on the same engine,
  disk model and perturbation layer as :mod:`repro.sim`;
* :class:`TwoDModel` — the analytical mirror, fed by one instrumented
  iteration plus the standard microbenchmarks.

Under ideal conditions (perturbations off, perfect timers) the two agree
exactly, extending the reproduction's central invariant to 2-D — the
support the paper's Section 5.1 asserts exists before declining to use
it.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.core.comm import SectionTimeline
from repro.core.model import KERNELS
from repro.exceptions import ModelError, SimulationError
from repro.instrument.collect import MeasurementConfig
from repro.instrument.microbench import Microbenchmarks, run_microbenchmarks
from repro.obs import Recorder, as_recorder, warn_once
from repro.sim.disk import DiskModel
from repro.sim.engine import Delay, Engine, Recv, Send
from repro.sim.perturbation import PerturbationConfig, PerturbationModel
from repro.sim.steady import (
    FastForwardPolicy,
    extrapolate_ends,
    steady_deltas,
    supports_fast_forward,
)
from repro.twod.distribution2d import GenBlock2D
from repro.util.rng import stream
from repro.util.units import DOUBLE

__all__ = [
    "Jacobi2DSpec",
    "TwoDEmulator",
    "TwoDModel",
    "TwoDReport",
    "TwoDNodeReport",
    "build_2d_model",
]

#: Direction order for halo sends/receives (fixed, mirrored by the model).
DIRECTIONS = ("north", "south", "west", "east")
_OPPOSITE = {"north": "south", "south": "north", "west": "east", "east": "west"}


@dataclass(frozen=True)
class Jacobi2DSpec:
    """The 2-D Jacobi workload: an N x M read-write grid of doubles."""

    n_rows: int
    n_cols: int
    iterations: int = 100
    work_per_element: float = 60e-9
    element_size: int = DOUBLE

    #: Every 2-D iteration sweeps the same tile — there is no per-
    #: iteration work profile.  A plain class attribute (not a field)
    #: so :func:`repro.sim.steady.supports_fast_forward` applies its
    #: 1-D gating rules to the 2-D workload unchanged.
    iteration_profile = None

    def tile_bytes(self, rows: int, cols: int) -> float:
        return rows * cols * self.element_size


class TwoDEmulator:
    """Discrete-event execution of 2-D Jacobi under a GenBlock2D."""

    def __init__(
        self,
        cluster: ClusterSpec,
        spec: Jacobi2DSpec,
        perturbation: Optional[PerturbationConfig] = None,
        dynamics=None,
    ) -> None:
        from repro.sim.executor import _resolve_dynamics

        self.cluster = cluster
        self.spec = spec
        self.perturbation = (
            perturbation if perturbation is not None else PerturbationConfig()
        )
        #: Resolved cluster dynamics (``None`` = static), following the
        #: 1-D emulator: ``None`` honours ``cluster.dynamics``, an
        #: explicit spec overrides it, ``False`` forces static.
        self.dynamics = _resolve_dynamics(cluster, dynamics)

    # -- placement ---------------------------------------------------------

    def _block_rows(self, rank: int, dist: GenBlock2D, forced: bool) -> Tuple[bool, int]:
        """(in_core, rows per ICLA chunk) for the node's tile."""
        rows, cols = dist.tile(rank)
        node = self.cluster[rank]
        tile = self.spec.tile_bytes(rows, cols)
        row_bytes = cols * self.spec.element_size
        if not forced and tile <= node.memory_bytes:
            return True, max(rows, 1)
        budget = node.memory_bytes if not forced else max(tile / 2, row_bytes)
        chunk = max(1, int(budget // max(row_bytes, 1e-12)))
        if forced:
            chunk = max(1, min(chunk, rows // 2 or 1))
        return False, min(chunk, max(rows, 1))

    # -- execution ------------------------------------------------------------

    def run(
        self,
        dist: GenBlock2D,
        *,
        iterations: Optional[int] = None,
        io_mode: str = "auto",
        fast_forward: Optional[bool] = None,
        observer: Optional["_TwoDCollector"] = None,
        telemetry: Optional[Recorder] = None,
        iteration_offset: int = 0,
        policy: Optional[FastForwardPolicy] = None,
        instrumented=None,
        collector=None,
    ) -> float:
        """Total emulated seconds of ``n_iter`` 2-D Jacobi iterations.

        The keyword surface mirrors :meth:`ClusterEmulator.run`
        (``io_mode``, ``observer``, ``iteration_offset``); the 2-D
        kernel streams synchronously, so ``io_mode="prefetch"`` is
        rejected.  ``instrumented=``/``collector=`` are deprecated
        aliases for ``io_mode="instrumented"``/``observer=`` (each
        warns once).

        Fast-forward follows the 1-D emulator exactly: structurally
        eligible runs (:func:`supports_fast_forward` — an observer or
        attached cluster dynamics disqualify) simulate only the probe
        window, and if every rank's iteration-end deltas have settled
        the rest is extrapolated closed-form; anything else falls back
        to the full event loop, bit for bit.
        """
        if instrumented is not None:
            warn_once(
                "TwoDEmulator.run(instrumented=)",
                'TwoDEmulator.run(io_mode="instrumented")',
            )
            if instrumented:
                io_mode = "instrumented"
        if collector is not None:
            warn_once(
                "TwoDEmulator.run(collector=)", "TwoDEmulator.run(observer=)"
            )
            observer = collector
        from repro.sim.executor import _resolve_io_mode

        instr, io_override = _resolve_io_mode(io_mode)
        if io_override:  # the 2-D kernel has no prefetch pipeline
            raise SimulationError(
                'TwoDEmulator has no prefetch path; use io_mode="auto" '
                'or "sync"'
            )
        if dist.n_nodes != self.cluster.n_nodes:
            raise SimulationError("grid shape does not cover the cluster")
        if dist.n_rows != self.spec.n_rows or dist.n_cols != self.spec.n_cols:
            raise SimulationError("distribution does not cover the array")
        if iteration_offset < 0:
            raise SimulationError(
                f"iteration_offset must be >= 0, got {iteration_offset}"
            )
        n_iter = iterations if iterations is not None else self.spec.iterations
        if fast_forward is None:
            from repro.sim.executor import fast_forward_default

            fast_forward = fast_forward_default()
        policy = policy if policy is not None else FastForwardPolicy()
        timeline = None
        if self.dynamics is not None:
            timeline = self.dynamics.compile(
                self.cluster.n_nodes, n_iter, iteration_offset
            )
        rec = as_recorder(telemetry)
        if (
            fast_forward
            and iteration_offset == 0
            and n_iter > policy.probe_iterations
            and supports_fast_forward(
                self.spec,
                self.perturbation,
                observer=observer,
                instrumented=instr,
                dynamics=self.dynamics,
            )
        ):
            ends: List[List[float]] = [[] for _ in range(dist.n_nodes)]
            with rec.span("sim/twod/run"):
                self._engine_run(
                    dist, policy.probe_iterations, instr,
                    observer, ends,
                )
                deltas = steady_deltas(ends, policy)
                if deltas is not None:
                    seconds = max(
                        extrapolate_ends(ends[r], deltas[r], n_iter)[-1]
                        for r in range(dist.n_nodes)
                    )
                    if rec:
                        rec.count("sim/twod/runs")
                        rec.count("sim/twod/fast_forwards")
                        rec.set("sim/twod/nodes", dist.n_nodes)
                        rec.set("sim/twod/iterations", n_iter)
                        rec.observe("sim/twod/seconds", seconds)
                    return seconds
                # Non-converging probe: fall back to an untouched full
                # simulation (probe state is discarded entirely).
                seconds = self._engine_run(
                    dist, n_iter, instr, observer, None,
                    timeline=timeline, offset=iteration_offset,
                )
        else:
            with rec.span("sim/twod/run"):
                seconds = self._engine_run(
                    dist, n_iter, instr, observer, None,
                    timeline=timeline, offset=iteration_offset,
                )
        if rec:
            rec.count("sim/twod/runs")
            rec.set("sim/twod/nodes", dist.n_nodes)
            rec.set("sim/twod/iterations", n_iter)
            rec.observe("sim/twod/seconds", seconds)
        return seconds

    def _engine_run(self, dist, n_iter, instrumented, collector, ends,
                    timeline=None, offset=0):
        engine = Engine()
        for rank in range(dist.n_nodes):
            engine.add_process(
                self._node(rank, dist, n_iter, instrumented, collector, ends,
                           timeline=timeline, offset=offset),
                node=rank,
            )
        return engine.run()

    def _node(self, rank, dist, n_iter, instrumented, collector, ends=None,
              timeline=None, offset=0):
        spec = self.spec
        node = self.cluster[rank]
        net = self.cluster.network
        rows, cols = dist.tile(rank)
        in_core, chunk_rows = self._block_rows(rank, dist, instrumented)
        row_bytes = cols * spec.element_size
        tile_bytes = spec.tile_bytes(rows, cols)
        disk = DiskModel(
            node,
            resident_bytes=(tile_bytes if in_core else chunk_rows * row_bytes),
            cache_enabled=self.perturbation.os_read_cache,
        )
        if not in_core:
            disk.register_variable("grid2d", tile_bytes)
        perturb = PerturbationModel(
            self.perturbation,
            run_labels=(
                "2d",
                self.cluster.name,
                f"{dist.row_counts}x{dist.col_counts}",
                rank,
                "instr" if instrumented else "run",
            ),
        )
        now = 0.0

        def cpu(seconds):
            nonlocal now
            if seconds > 0:
                now = float((yield Delay(seconds)))

        neighbors = dist.neighbors(rank)
        for local_it in range(n_iter):
            it = local_it + offset
            if timeline is not None:
                dyn_compute = timeline.compute_multiplier(rank, it)
                disk.slowdown = timeline.disk_slowdown(rank, it)
            else:
                dyn_compute = 1.0
            # -- stage: sweep the tile (streaming if out of core) ----------
            work = rows * cols * spec.work_per_element
            nominal = node.compute_seconds(work)
            ws = chunk_rows * row_bytes if not in_core else tile_bytes
            compute_total = perturb.perturb_compute(node, nominal, ws)
            if dyn_compute != 1.0:
                compute_total *= dyn_compute
            compute_done = 0.0
            if in_core:
                start = now
                yield from cpu(compute_total)
                compute_done = compute_total
                if collector is not None:
                    collector.on_compute(rank, it, compute_total)
            else:
                remaining = rows
                while remaining > 0:
                    take = min(chunk_rows, remaining)
                    nbytes = take * row_bytes
                    op = disk.submit_read(now, "grid2d", nbytes)
                    read_dur = op.done - now
                    yield from cpu(read_dur)
                    if collector is not None:
                        collector.on_read(rank, read_dur, nbytes)
                    share = compute_total * take / rows
                    yield from cpu(share)
                    compute_done += share
                    if collector is not None:
                        collector.on_compute(rank, it, share)
                    wop = disk.submit_write(now, "grid2d", nbytes)
                    write_dur = wop.done - now
                    yield from cpu(write_dur)
                    if collector is not None:
                        collector.on_write(rank, write_dur, nbytes)
                    remaining -= take
            # -- halo exchange (sends in fixed order, then receives) -------
            for direction, other in neighbors:
                nbytes = dist.halo_elements(rank, direction) * spec.element_size
                if not in_core:
                    op = disk.submit_read(now, "grid2d", nbytes)
                    dur = op.done - now
                    yield from cpu(dur)
                    if collector is not None:
                        collector.on_read(rank, dur, nbytes)
                yield from cpu(net.send_overhead)
                yield Send(
                    other,
                    f"{it}:halo:{direction}",
                    transfer=net.transfer_seconds(nbytes),
                )
            for direction, other in neighbors:
                result = yield Recv(other, f"{it}:halo:{_OPPOSITE[direction]}")
                now = float(result)
                yield from cpu(net.recv_overhead)
            # -- residual allreduce (binomial reduce + broadcast) -----------
            yield from self._allreduce(rank, dist.n_nodes, it, net, cpu)
            if ends is not None:
                ends[rank].append(now)

    def _allreduce(self, rank, P, it, net, cpu):
        nbytes = 8.0
        mask = 1
        while mask < P:
            if rank & mask:
                yield from cpu(net.send_overhead)
                yield Send(
                    rank - mask,
                    f"{it}:red:{mask}",
                    transfer=net.transfer_seconds(nbytes),
                )
                break
            partner = rank | mask
            if partner < P:
                result = yield Recv(partner, f"{it}:red:{mask}")
                yield from cpu(net.recv_overhead)
            mask <<= 1
        pot = 1
        while pot < P:
            pot <<= 1
        mask = pot >> 1
        while mask > 0:
            if rank % (2 * mask) == 0:
                if rank + mask < P:
                    yield from cpu(net.send_overhead)
                    yield Send(
                        rank + mask,
                        f"{it}:bc:{mask}",
                        transfer=net.transfer_seconds(nbytes),
                    )
            elif rank % (2 * mask) == mask:
                result = yield Recv(rank - mask, f"{it}:bc:{mask}")
                yield from cpu(net.recv_overhead)
            mask >>= 1


class _TwoDCollector:
    """Instrumented-iteration measurements for the 2-D model."""

    def __init__(self, measurement: MeasurementConfig, rng) -> None:
        self._m = measurement
        self._rng = rng
        self.compute: Dict[int, float] = defaultdict(float)
        self.read_seconds: Dict[int, float] = defaultdict(float)
        self.read_bytes: Dict[int, float] = defaultdict(float)
        self.read_ops: Dict[int, int] = defaultdict(int)
        self.write_seconds: Dict[int, float] = defaultdict(float)
        self.write_bytes: Dict[int, float] = defaultdict(float)
        self.write_ops: Dict[int, int] = defaultdict(int)

    def _measured(self, duration: float) -> float:
        rel = self._m.relative_bias + self._rng.normal(
            0.0, self._m.relative_sigma
        )
        return duration * (1.0 + rel) + self._m.timer_overhead

    def on_compute(self, rank, it, duration):
        self.compute[rank] += self._measured(duration)

    def on_read(self, rank, duration, nbytes):
        self.read_seconds[rank] += self._measured(duration)
        self.read_bytes[rank] += nbytes
        self.read_ops[rank] += 1

    def on_write(self, rank, duration, nbytes):
        self.write_seconds[rank] += self._measured(duration)
        self.write_bytes[rank] += nbytes
        self.write_ops[rank] += 1


@dataclass(frozen=True)
class TwoDInputs:
    """The 2-D analogue of the internal MHETA file."""

    distribution0: GenBlock2D
    compute_seconds: Tuple[float, ...]  #: per node, at d0's tile areas
    read_per_byte: Tuple[float, ...]
    write_per_byte: Tuple[float, ...]
    micro: Microbenchmarks


@dataclass(frozen=True)
class TwoDNodeReport:
    """Per-rank slice of a 2-D prediction."""

    rank: int
    grid_coords: Tuple[int, int]
    tile: Tuple[int, int]
    total_seconds: float


@dataclass(frozen=True)
class TwoDReport:
    """Full 2-D prediction: the total plus every rank's clock total."""

    distribution: GenBlock2D
    total_seconds: float
    nodes: Tuple[TwoDNodeReport, ...]


class TwoDModel:
    """The MHETA equations over 2-D tiles.

    Mirrors :class:`repro.core.model.MhetaModel`'s surface: the
    consolidated :meth:`predict` entry point (scalar, ``report=True``,
    ``batch=True``/``"serial"``), the ``kernel="scalar"|"numpy"|"plan"``
    knob, a content :attr:`fingerprint`, and compiled plans shared
    through the process-wide plan LRU (``kernel="plan"``).  The scalar
    kernel is the per-rank reference loop; the numpy and plan kernels
    score whole candidate populations through the max-plus iteration
    matrices of :mod:`repro.twod.plan2d`.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        spec: Jacobi2DSpec,
        inputs: TwoDInputs,
        *,
        kernel: str = "numpy",
    ) -> None:
        if kernel not in KERNELS:
            raise ModelError(
                f"unknown kernel {kernel!r}; choose from {KERNELS}"
            )
        self.cluster = cluster
        self.spec = spec
        self.inputs = inputs
        self.kernel = kernel
        self._timeline = SectionTimeline(inputs.micro, cluster.n_nodes)
        self._fingerprint: Optional[str] = None
        # grid shape -> plan.  ``kernel="plan"`` entries come from the
        # process-wide plan LRU; ``kernel="numpy"`` builds private ones
        # (vectorized, but no numba and no cross-model sharing).
        self._plans: Dict[Tuple[int, int], object] = {}

    @property
    def n_nodes(self) -> int:
        return self.cluster.n_nodes

    @property
    def fingerprint(self) -> str:
        """Content hash of the (workload spec, cluster, instrumented
        inputs) triple; compiled 2-D plans are shared process-wide under
        this key qualified by the grid shape."""
        if self._fingerprint is None:
            h = hashlib.sha256()
            d0 = self.inputs.distribution0
            h.update(
                repr(
                    (
                        self.cluster.name,
                        tuple(self.cluster.cpu_powers),
                        tuple(self.cluster.memory_bytes),
                        self.spec,
                        d0.row_counts,
                        d0.col_counts,
                        self.inputs.compute_seconds,
                        self.inputs.read_per_byte,
                        self.inputs.write_per_byte,
                        self.inputs.micro,
                    )
                ).encode()
            )
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    # -- compiled plans ---------------------------------------------------------

    def ensure_plan(
        self,
        grid_shape: Optional[Tuple[int, int]] = None,
        telemetry: Optional[Recorder] = None,
    ):
        """Resolve the evaluation plan for ``grid_shape`` (default: the
        instrumented baseline's shape) under the current kernel."""
        if grid_shape is None:
            grid_shape = self.inputs.distribution0.grid_shape
        plan = self._plans.get(grid_shape)
        if plan is None:
            from repro.twod.plan2d import EvaluationPlan2D, get_plan2d

            if self.kernel == "plan":
                plan = get_plan2d(self, grid_shape, telemetry)
            else:
                plan = EvaluationPlan2D(self, grid_shape)
            self._plans[grid_shape] = plan
        return plan

    def release_plans(self) -> None:
        """Drop this model's plans (and, for ``kernel="plan"``, their
        process-wide LRU entries)."""
        if self.kernel == "plan" and self._plans:
            from repro.core.plan import discard_plan

            for plan in self._plans.values():
                discard_plan(plan.fingerprint)
        self._plans = {}

    def __getstate__(self) -> dict:
        # Plans hold scratch and memo buffers; workers recompile (or hit
        # their own process's plan LRU) lazily after unpickling.
        state = self.__dict__.copy()
        state["_plans"] = {}
        return state

    # -- per-node stage time ----------------------------------------------------

    def _stage_seconds(self, rank: int, dist: GenBlock2D) -> float:
        spec = self.spec
        rows, cols = dist.tile(rank)
        area = rows * cols
        area0 = self.inputs.distribution0.tile_elements(rank)
        if area0 <= 0:
            raise ModelError(f"node {rank}: empty instrumented tile")
        compute = self.inputs.compute_seconds[rank] * (area / area0)
        node = self.cluster[rank]
        tile_bytes = spec.tile_bytes(rows, cols)
        if tile_bytes <= node.memory_bytes:
            return compute
        disk = self.inputs.micro.disks[rank]
        row_bytes = cols * spec.element_size
        chunk_rows = max(1, int(node.memory_bytes // max(row_bytes, 1e-12)))
        chunk_rows = min(chunk_rows, rows)
        n_io = -(-rows // chunk_rows)
        io = n_io * (disk.read_seek + disk.write_seek) + tile_bytes * (
            self.inputs.read_per_byte[rank] + self.inputs.write_per_byte[rank]
        )
        return compute + io

    def _halo_read_seconds(self, rank: int, dist: GenBlock2D, nbytes: float) -> float:
        rows, cols = dist.tile(rank)
        node = self.cluster[rank]
        if self.spec.tile_bytes(rows, cols) <= node.memory_bytes:
            return 0.0
        disk = self.inputs.micro.disks[rank]
        return disk.read_seek + nbytes * self.inputs.read_per_byte[rank]

    # -- prediction ------------------------------------------------------------

    def predict(
        self,
        distribution,
        iterations: Optional[int] = None,
        *,
        batch=False,
        report: bool = False,
        telemetry: Optional[Recorder] = None,
    ):
        """The consolidated 2-D prediction entry point.

        ``predict(dist)``
            predicted total seconds (``float``).
        ``predict(dist, report=True)``
            a :class:`TwoDReport` with per-rank clock totals.
        ``predict(dists, batch=True)``
            an ``np.ndarray`` scoring a whole candidate population in
            one vectorized pass per grid shape (``<= 1e-12`` relative
            vs. the serial path).
        ``predict(dists, batch="serial")``
            a ``List[float]`` from the per-candidate loop.
        """
        rec = as_recorder(telemetry)
        if batch:
            if report:
                raise ModelError(
                    "report=True is only available for single predictions"
                )
            dists = list(distribution)
            if batch == "serial":
                out = [self._predict_one(d, iterations) for d in dists]
            else:
                out = self._predict_batch(dists, iterations, telemetry=rec)
            if rec:
                rec.count("model/predictions", len(dists))
                rec.count("model/batch_predictions")
                rec.observe("model/batch_size", len(dists))
                self._record_plan_gauges(rec)
            return out
        if report:
            result = self._report(distribution, iterations)
        else:
            result = self._predict_one(distribution, iterations)
        if rec:
            rec.count("model/predictions")
            self._record_plan_gauges(rec)
        return result

    def predict_seconds(
        self, dist: GenBlock2D, iterations: Optional[int] = None
    ) -> float:
        """Deprecated alias for :meth:`predict`."""
        warn_once(
            "TwoDModel.predict_seconds", "TwoDModel.predict(distribution)"
        )
        return self.predict(dist, iterations)

    def _record_plan_gauges(self, rec: Recorder) -> None:
        if self.kernel == "plan":
            from repro.core.plan import plan_cache_stats

            stats = plan_cache_stats()
            rec.set("model/plan_cache/size", stats["size"])
            rec.set("model/plan_cache/hits", stats["hits"])
            rec.set("model/plan_cache/misses", stats["misses"])
            rec.set("model/plan_cache/compiles", stats["compiles"])

    def _validate(self, dist: GenBlock2D) -> None:
        if dist.n_nodes != self.cluster.n_nodes:
            raise ModelError("grid shape does not cover the cluster")

    def _predict_one(
        self, dist: GenBlock2D, iterations: Optional[int]
    ) -> float:
        if self.kernel == "scalar":
            return max(self._scalar_totals(dist, iterations))
        # Batch of one: bitwise equal to that candidate's batch row.
        return float(self._predict_batch([dist], iterations)[0])

    def _report(
        self, dist: GenBlock2D, iterations: Optional[int]
    ) -> TwoDReport:
        if self.kernel == "scalar":
            totals = self._scalar_totals(dist, iterations)
        else:
            self._validate(dist)
            n_iter = (
                iterations if iterations is not None else self.spec.iterations
            )
            plan = self.ensure_plan(dist.grid_shape)
            rowc = np.asarray([dist.row_counts], dtype=np.int64)
            colc = np.asarray([dist.col_counts], dtype=np.int64)
            totals = plan.execute(
                rowc,
                colc,
                n_iter,
                allow_numba=self.kernel == "plan",
                reduce=False,
            )[0]
        nodes = tuple(
            TwoDNodeReport(
                rank=r,
                grid_coords=dist.coords(r),
                tile=dist.tile(r),
                total_seconds=float(totals[r]),
            )
            for r in range(self.cluster.n_nodes)
        )
        return TwoDReport(
            distribution=dist,
            total_seconds=float(max(totals)),
            nodes=nodes,
        )

    def _predict_batch(
        self,
        dists: Sequence[GenBlock2D],
        iterations: Optional[int] = None,
        telemetry: Optional[Recorder] = None,
    ) -> np.ndarray:
        """Score a candidate population, one vectorized pass per grid
        shape (populations may mix shapes; results come back in input
        order)."""
        n_iter = iterations if iterations is not None else self.spec.iterations
        out = np.empty(len(dists))
        if self.kernel == "scalar":
            for i, d in enumerate(dists):
                out[i] = max(self._scalar_totals(d, iterations))
            return out
        groups: Dict[Tuple[int, int], List[int]] = {}
        for i, d in enumerate(dists):
            self._validate(d)
            groups.setdefault(d.grid_shape, []).append(i)
        for shape, idxs in groups.items():
            plan = self.ensure_plan(shape, telemetry)
            rowc = np.asarray(
                [dists[i].row_counts for i in idxs], dtype=np.int64
            )
            colc = np.asarray(
                [dists[i].col_counts for i in idxs], dtype=np.int64
            )
            out[idxs] = plan.execute(
                rowc, colc, n_iter, allow_numba=self.kernel == "plan"
            )
        return out

    def _scalar_totals(
        self, dist: GenBlock2D, iterations: Optional[int] = None
    ) -> List[float]:
        """The per-rank reference loop: every rank's predicted clock
        total (the scalar prediction is their max)."""
        self._validate(dist)
        n_iter = iterations if iterations is not None else self.spec.iterations
        P = self.cluster.n_nodes
        net = self.inputs.micro
        stage = [self._stage_seconds(rank, dist) for rank in range(P)]

        clocks = [0.0] * P
        prev_steady = None
        ends: List[List[float]] = []
        simulate = 0
        while simulate < n_iter:
            clocks = self._iterate(dist, stage, clocks, net)
            ends.append(list(clocks))
            simulate += 1
            if len(ends) >= 2:
                steady = [ends[-1][n] - ends[-2][n] for n in range(P)]
                if prev_steady is not None and all(
                    abs(a - b) <= 1e-12 + 1e-9 * abs(b)
                    for a, b in zip(steady, prev_steady)
                ):
                    break
                prev_steady = steady
        if n_iter == 1 or len(ends) < 2:
            return list(ends[0])
        steady = [ends[-1][n] - ends[-2][n] for n in range(P)]
        return [
            ends[-1][n] + steady[n] * (n_iter - simulate) for n in range(P)
        ]

    def _iterate(self, dist, stage, start, net):
        """One iteration's max-plus mirror: stage, halos, allreduce."""
        P = len(start)
        os_ = net.send_overhead
        or_ = net.recv_overhead
        # Halo exchange: sends in DIRECTIONS order, then receives.
        deliver: Dict[Tuple[int, str], float] = {}
        ready = [0.0] * P
        for rank in range(P):
            t = start[rank] + stage[rank]
            for direction, _other in dist.neighbors(rank):
                nbytes = dist.halo_elements(rank, direction) * self.spec.element_size
                t += self._halo_read_seconds(rank, dist, nbytes)
                t += os_
                deliver[(rank, direction)] = t + net.transfer_seconds(nbytes)
            ready[rank] = t
        after_halo = list(ready)
        for rank in range(P):
            t = ready[rank]
            for direction, other in dist.neighbors(rank):
                t = max(t, deliver[(other, _OPPOSITE[direction])]) + or_
            after_halo[rank] = t
        # Residual allreduce: reuse the 1-D reduction mirror.
        from repro.program.sections import CommPattern

        return self._timeline.advance(
            CommPattern.REDUCTION,
            after_halo,
            [[0.0]] * P,
            8.0,
            [0.0] * P,
        )


def build_2d_model(
    cluster: ClusterSpec,
    spec: Jacobi2DSpec,
    d0: GenBlock2D,
    perturbation: Optional[PerturbationConfig] = None,
    measurement: Optional[MeasurementConfig] = None,
    micro: Optional[Microbenchmarks] = None,
    kernel: str = "numpy",
) -> TwoDModel:
    """Instrument one 2-D iteration under ``d0`` and build the model."""
    measurement = measurement or MeasurementConfig()
    micro = micro or run_microbenchmarks(cluster)
    rng = stream("2d-measurement", cluster.name, spec.n_rows, spec.n_cols)
    collector = _TwoDCollector(measurement, rng)
    emulator = TwoDEmulator(cluster, spec, perturbation)
    emulator.run(d0, iterations=1, io_mode="instrumented", observer=collector)
    P = cluster.n_nodes
    read_pb = []
    write_pb = []
    for rank in range(P):
        disk = micro.disks[rank]
        rb = collector.read_bytes[rank]
        wb = collector.write_bytes[rank]
        read_pb.append(
            max(collector.read_seconds[rank] - collector.read_ops[rank] * disk.read_seek, 0.0) / rb
            if rb > 0
            else disk.read_byte_latency
        )
        write_pb.append(
            max(collector.write_seconds[rank] - collector.write_ops[rank] * disk.write_seek, 0.0) / wb
            if wb > 0
            else disk.write_byte_latency
        )
    inputs = TwoDInputs(
        distribution0=d0,
        compute_seconds=tuple(collector.compute[r] for r in range(P)),
        read_per_byte=tuple(read_pb),
        write_per_byte=tuple(write_pb),
        micro=micro,
    )
    return TwoDModel(cluster, spec, inputs, kernel=kernel)
