"""Two-dimensional data distributions (the paper's §5.1 extension).

"The MHETA model extends to two-dimensional data distributions, but
such distributions are problematic for run-time data distribution
systems because the search space increases greatly.  Hence, we focus in
this paper on only one-dimensional distributions."  (Section 5.1.)

This package implements the extension the paper describes and then
declines, for the stencil workload where 2-D decomposition matters
(Jacobi):

* :mod:`repro.twod.distribution2d` — ``GenBlock2D``: an R x C processor
  grid with variable row bands and column bands (the 2-D analogue of
  GEN_BLOCK);
* :mod:`repro.twod.jacobi2d` — a 2-D Jacobi emulator (built directly on
  the discrete-event engine: four-neighbour halo exchanges, out-of-core
  row-band streaming) and its MHETA-style analytical model, exact under
  ideal conditions like the 1-D pair;
* :mod:`repro.twod.search_space` — the quantitative version of the
  paper's "search space increases greatly" argument: candidate counts
  and evaluation budgets for 1-D vs 2-D at equal resolution;
* :mod:`repro.twod.search2d` — a working 2-D search (per-shape
  coordinate-descent GBS), demonstrating both that 2-D layouts *can* be
  searched and what that costs relative to the 1-D spectrum bisection.
"""

from repro.twod.distribution2d import (
    GenBlock2D,
    block2d,
    balanced2d,
    factor_pairs,
)
from repro.twod.jacobi2d import (
    Jacobi2DSpec,
    TwoDEmulator,
    TwoDModel,
    TwoDNodeReport,
    TwoDReport,
    build_2d_model,
)
from repro.twod.plan2d import EvaluationPlan2D, get_plan2d
from repro.twod.search_space import SearchSpaceComparison, search_space_growth
from repro.twod.search2d import (
    SEARCHER_2D_FAMILIES,
    TwoDGbs,
    TwoDLayoutSearch,
    TwoDSearchResult,
    is_degenerate,
    strip_candidates,
)

__all__ = [
    "GenBlock2D",
    "block2d",
    "balanced2d",
    "factor_pairs",
    "Jacobi2DSpec",
    "TwoDEmulator",
    "TwoDModel",
    "TwoDReport",
    "TwoDNodeReport",
    "build_2d_model",
    "EvaluationPlan2D",
    "get_plan2d",
    "SearchSpaceComparison",
    "search_space_growth",
    "SEARCHER_2D_FAMILIES",
    "TwoDGbs",
    "TwoDLayoutSearch",
    "TwoDSearchResult",
    "is_degenerate",
    "strip_candidates",
]
