"""Searching 2-D layouts at 1-D scale.

The paper's reason for staying one-dimensional is that the 2-D search
space "increases greatly" — every grid shape (R, C) multiplies a row-band
axis by a column-band axis.  With the batched 2-D kernel
(:mod:`repro.twod.plan2d`) an evaluation costs what the 1-D kernel costs,
so the full 1-D search machinery can be pointed at 2-D layouts:

* :class:`TwoDGbs` — batched coordinate descent per grid shape
  (steepest-descent single-band moves, scored one population per round
  through ``predict(batch=True)``), the uniform searcher surface of
  PR 5: ``TwoDGbs(model, *, knobs...)`` / ``search(budget, *,
  telemetry=...)``;
* :class:`TwoDLayoutSearch` — any of the five 1-D searcher families run
  over (row bands x column bands) per shape, through a
  :class:`BudgetedEvaluator`-compatible adapter (:class:`_ShapeAdapter`)
  that encodes a layout as one joint GEN_BLOCK over R + C positions and
  decodes with per-axis repair;
* degenerate ``1 x P`` / ``P x 1`` shapes are *not* searched as 2-D at
  all: they are the 1-D strip layouts the spectrum path already covers,
  so they are scored by enumerating the Figure-8 anchor path along the
  single varying axis (:func:`strip_candidates`) and the 2-D budget is
  spent only on genuinely two-dimensional candidates.

Telemetry rides along under ``span/search/twod`` with the standard
``search/*`` counters, and large enumerations can shard across worker
processes via :func:`repro.parallel.predict_2d_sharded` (``jobs=``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.distribution.genblock import GenBlock, largest_remainder_round
from repro.exceptions import SearchError
from repro.obs import Recorder, as_recorder
from repro.program.variables import Access, Variable
from repro.search import (
    GeneralizedBinarySearch,
    GeneticSearch,
    RandomSearch,
    SimulatedAnnealingSearch,
    SpectrumSweep,
)
from repro.twod.distribution2d import (
    GenBlock2D,
    balanced2d,
    block2d,
    factor_pairs,
)
from repro.twod.jacobi2d import TwoDModel

__all__ = [
    "TwoDSearchResult",
    "TwoDGbs",
    "TwoDLayoutSearch",
    "SEARCHER_2D_FAMILIES",
    "strip_candidates",
    "is_degenerate",
]


#: The five 1-D searcher families :class:`TwoDLayoutSearch` can drive
#: over each grid shape (the same names the CLI exposes for 1-D).
SEARCHER_2D_FAMILIES = {
    "gbs": GeneralizedBinarySearch,
    "genetic": GeneticSearch,
    "annealing": SimulatedAnnealingSearch,
    "random": RandomSearch,
    "sweep": SpectrumSweep,
}


def is_degenerate(shape: Tuple[int, int]) -> bool:
    """True for ``1 x P`` / ``P x 1`` grids — the 1-D strip layouts."""
    return shape[0] == 1 or shape[1] == 1


@dataclass
class TwoDSearchResult:
    """Outcome of a 2-D layout search."""

    best: GenBlock2D
    predicted_seconds: float
    evaluations: int  #: distinct 2-D model evaluations spent
    per_shape: Dict[Tuple[int, int], float] = field(default_factory=dict)
    algorithm: str = "twod"
    cache_hits: int = 0

    def __str__(self) -> str:
        r, c = self.best.grid_shape
        return (
            f"{self.algorithm}: {self.predicted_seconds:.3f}s predicted "
            f"with a {r}x{c} grid (rows={list(self.best.row_counts)}, "
            f"cols={list(self.best.col_counts)}) after "
            f"{self.evaluations} evaluations"
        )


# -- degenerate shapes: the 1-D spectrum path ---------------------------------


class _StripProgram:
    """The structural surface the 1-D spectrum machinery reads, for a
    strip decomposition of the 2-D grid: one distributed read-write
    variable whose "row" is a full band along the fixed axis."""

    def __init__(self, name: str, n_rows: int, band_elements: int, esize: int):
        self.name = name
        self.n_rows = n_rows
        self.replicated_bytes = 0
        self.distributed_variables = (
            Variable(
                name="grid2d",
                cols=float(band_elements),
                access=Access.READ_WRITE,
                element_size=esize,
            ),
        )

    def distributed_row_bytes(self) -> float:
        return float(
            sum(v.row_bytes for v in self.distributed_variables)
        )


def strip_candidates(
    model: TwoDModel,
    shape: Tuple[int, int],
    steps_per_leg: int = 8,
) -> List[GenBlock2D]:
    """The Figure-8 spectrum path for a degenerate grid shape.

    A ``P x 1`` grid is a row-strip GEN_BLOCK, a ``1 x P`` grid a
    column-strip one; either way the layout varies along a single axis,
    which is exactly the case the existing 1-D anchor path (Blk, Bal and
    — under memory pressure — I-C, I-C/Bal) was built for.  Returns the
    interpolated path's distributions wrapped back as 2-D strips.
    """
    from repro.distribution.spectrum import spectrum

    if not is_degenerate(shape):
        raise SearchError(f"{shape[0]}x{shape[1]} is not a strip shape")
    R, C = shape
    spec = model.spec
    by_rows = C == 1
    bands = spec.n_rows if by_rows else spec.n_cols
    fixed = spec.n_cols if by_rows else spec.n_rows
    program = _StripProgram(
        name=f"2dstrip:{R}x{C}",
        n_rows=bands,
        band_elements=fixed,
        esize=spec.element_size,
    )
    points = spectrum(model.cluster, program, steps_per_leg)
    out: List[GenBlock2D] = []
    seen = set()
    for point in points:
        counts = tuple(int(x) for x in point.distribution.counts)
        if min(counts) < 1:  # spectrum legs may round a band to zero
            continue
        if counts in seen:
            continue
        seen.add(counts)
        out.append(
            GenBlock2D(counts, (fixed,))
            if by_rows
            else GenBlock2D((fixed,), counts)
        )
    return out


# -- joint encoding: one GEN_BLOCK over R + C positions -----------------------


class _JointCluster:
    """The cluster surface 1-D searchers read, over axis bands instead
    of ranks: position ``i < R`` is grid row i, position ``R + j`` is
    grid column j, each weighted by its power share along its own axis
    (so ``balanced`` decodes to :func:`balanced2d`'s separable split)."""

    def __init__(self, model: TwoDModel, grid_shape: Tuple[int, int]):
        R, C = grid_shape
        powers = np.asarray(model.cluster.cpu_powers, dtype=float)
        grid = powers.reshape(R, C)
        row_w = grid.sum(axis=1)
        col_w = grid.sum(axis=0)
        # Per-axis normalisation: a CPU-homogeneous cluster reads as
        # homogeneous here whatever the grid's aspect ratio.
        self.cpu_powers = np.concatenate(
            [row_w / row_w.sum() * R, col_w / col_w.sum() * C]
        )
        self.n_nodes = R + C
        self.name = f"{model.cluster.name}:joint{R}x{C}"
        self.memory_bytes = np.full(self.n_nodes, np.iinfo(np.int64).max // 2)

    @property
    def is_cpu_homogeneous(self) -> bool:
        return bool(np.allclose(self.cpu_powers, self.cpu_powers[0]))


class _JointProgram:
    """Program surface for the joint encoding.  ``distributed_row_bytes``
    is zero: a joint "row" is an abstract band unit, so the 1-D in-core
    anchor machinery (which reasons about real bytes per row) is
    deliberately switched off — memory pressure is already priced into
    every 2-D evaluation by the kernel itself."""

    def __init__(self, name: str, n_rows: int):
        self.name = name
        self.n_rows = n_rows
        self.replicated_bytes = 0
        self.distributed_variables: Tuple[Variable, ...] = ()

    def distributed_row_bytes(self) -> float:
        return 0.0


@dataclass(frozen=True)
class _JointNodeReport:
    total_seconds: float


@dataclass(frozen=True)
class _JointReport:
    total_seconds: float
    nodes: Tuple[_JointNodeReport, ...]


class _ShapeAdapter:
    """A :class:`TwoDModel` at one grid shape, presented as the 1-D
    model surface the searchers and :class:`BudgetedEvaluator` consume.

    A candidate is one joint GEN_BLOCK over ``R + C`` positions summing
    to ``N + M``: the first R entries are row-band shares, the last C
    column-band shares.  :meth:`decode` repairs each axis back to its
    true total with :func:`largest_remainder_round` (minimum one row and
    one column per band), so *every* joint vector the searchers can emit
    — crossover blends, annealing moves across the axis boundary —
    decodes to a valid layout, deterministically.

    ``predict(joint)`` and ``predict(joints, batch=True)``-equivalent
    :meth:`predict_seconds_batch` score through the underlying batched
    kernel; ``predict(joint, report=True)`` aggregates the per-rank
    clock totals to per-band ones (row band i = the slowest rank in grid
    row i, and symmetrically for columns) so GBS's bottleneck hill climb
    moves band units away from the slowest band.
    """

    def __init__(self, model: TwoDModel, grid_shape: Tuple[int, int]):
        R, C = grid_shape
        if R * C != model.cluster.n_nodes:
            raise SearchError(
                f"grid {R}x{C} does not cover {model.cluster.n_nodes} nodes"
            )
        self.grid_shape = grid_shape
        self._model = model
        self._N = model.spec.n_rows
        self._M = model.spec.n_cols
        self.n_nodes = R + C
        self.cluster = _JointCluster(model, grid_shape)
        self.program = _JointProgram(
            name=f"2d:{model.cluster.name}:{R}x{C}",
            n_rows=self._N + self._M,
        )

    def encode(self, dist: GenBlock2D) -> GenBlock:
        """The joint vector whose :meth:`decode` reproduces ``dist``
        (encodings are repaired on decode, so this is exact only up to
        the per-axis rounding fixpoint — which block/balanced layouts
        sit on)."""
        return GenBlock(tuple(dist.row_counts) + tuple(dist.col_counts))

    def decode(self, joint: GenBlock) -> GenBlock2D:
        R, C = self.grid_shape
        part = np.asarray(joint.counts, dtype=float)
        return GenBlock2D(
            largest_remainder_round(part[:R], self._N, minimum=1),
            largest_remainder_round(part[R:], self._M, minimum=1),
        )

    # -- the model surface -------------------------------------------------

    def predict(
        self,
        joint,
        iterations: Optional[int] = None,
        *,
        report: bool = False,
        telemetry: Optional[Recorder] = None,
    ):
        dist = self.decode(joint)
        if not report:
            return self._model.predict(dist, iterations, telemetry=telemetry)
        rep = self._model.predict(dist, iterations, report=True)
        R, C = self.grid_shape
        totals = np.array([n.total_seconds for n in rep.nodes]).reshape(R, C)
        axis_totals = np.concatenate([totals.max(axis=1), totals.max(axis=0)])
        return _JointReport(
            total_seconds=rep.total_seconds,
            nodes=tuple(_JointNodeReport(float(t)) for t in axis_totals),
        )

    def predict_seconds_batch(self, joints: Sequence[GenBlock]) -> np.ndarray:
        return self._model.predict(
            [self.decode(j) for j in joints], batch=True
        )


# -- shared budget/caching over GenBlock2D candidates -------------------------


class _Exhausted(Exception):
    pass


class _Budget2D:
    """Cache- and budget-aware population scoring over 2-D layouts: the
    :class:`BudgetedEvaluator`'s batch contract, keyed by (row bands,
    column bands).  Distinct misses are charged and sent through one
    ``predict(batch=True)`` pass (sharded across workers when ``jobs >
    1``); repeats are cache hits; the budget is a hard cap enforced by
    truncating at the first unaffordable miss."""

    def __init__(
        self,
        model: TwoDModel,
        budget: int,
        *,
        jobs: int = 1,
        telemetry: Optional[Recorder] = None,
    ):
        self._model = model
        self._budget = budget
        self._jobs = jobs
        self._rec = as_recorder(telemetry)
        self.cache: Dict[Tuple, float] = {}
        self.hits = 0
        self.best: Optional[GenBlock2D] = None
        self.best_value = float("inf")

    @property
    def evaluations(self) -> int:
        return len(self.cache)

    @staticmethod
    def _key(d: GenBlock2D) -> Tuple:
        return (d.row_counts, d.col_counts)

    def batch(self, dists: Sequence[GenBlock2D]) -> List[float]:
        dists = list(dists)
        keys = [self._key(d) for d in dists]
        remaining = max(self._budget - self.evaluations, 0)
        first_seen: Dict[Tuple, int] = {}
        to_evaluate: List[GenBlock2D] = []
        cut = len(dists)
        for i, key in enumerate(keys):
            if key in self.cache or key in first_seen:
                continue
            if len(to_evaluate) >= remaining:
                cut = i
                break
            first_seen[key] = i
            to_evaluate.append(dists[i])
        if self._rec:
            self._rec.observe("search/round_candidates", len(dists))
            self._rec.observe(
                "search/round_distinct_misses", len(to_evaluate)
            )
        if to_evaluate:
            if self._jobs > 1:
                from repro.parallel import predict_2d_sharded

                values = predict_2d_sharded(
                    self._model, to_evaluate, self._jobs
                )
            else:
                values = self._model.predict(to_evaluate, batch=True)
            for d, v in zip(to_evaluate, values):
                v = float(v)
                self.cache[self._key(d)] = v
                if v < self.best_value:
                    self.best, self.best_value = d, v
        results = []
        for i in range(cut):
            key = keys[i]
            if first_seen.get(key) != i:
                self.hits += 1
            results.append(self.cache[key])
        if cut < len(dists):
            raise _Exhausted()
        return results

    def __call__(self, dist: GenBlock2D) -> float:
        return self.batch([dist])[0]


# -- coordinate-descent GBS (batched) -----------------------------------------


class TwoDGbs:
    """Batched coordinate descent over GenBlock2D layouts.

    One model serves every grid shape: the instrumented calibration is a
    per-element compute rate, which transfers across shapes (the plan
    for each shape is compiled once and cached).  For each shape the
    search starts from the better of the Blk/Bal 2-D anchors and runs
    steepest-descent single-band moves — per round, *all* ``src -> dst``
    unit moves along the active axis are scored in one
    ``predict(batch=True)`` pass, the best is applied, and the move unit
    halves when no move improves (multi-resolution, as in 1-D GBS's
    shrinking hill-climb step).

    Uniform searcher surface: ``TwoDGbs(model, *, knobs...)`` and
    ``search(budget, *, telemetry=...)`` returning
    :class:`TwoDSearchResult`.  Degenerate strip shapes are scored via
    the 1-D spectrum path (:func:`strip_candidates`) without spending
    the 2-D move budget.
    """

    name = "twod-gbs"

    def __init__(
        self,
        model: TwoDModel,
        cluster=None,  # accepted for driver uniformity; the model has it
        *,
        rounds: int = 3,
        resolution: int = 16,
        shapes: Optional[Sequence[Tuple[int, int]]] = None,
        steps_per_leg: int = 8,
        batch_size: int = 64,
        seed_label: str = "",
        jobs: int = 1,
    ) -> None:
        self.model = model
        self.rounds = rounds
        self.resolution = resolution
        self.shapes = (
            list(shapes)
            if shapes is not None
            else factor_pairs(model.cluster.n_nodes)
        )
        self.steps_per_leg = steps_per_leg
        self.batch_size = batch_size
        self._seed_label = seed_label or self.name
        self.jobs = jobs

    # -- axis refinement ---------------------------------------------------

    def _axis_moves(
        self, current: GenBlock2D, axis: str, unit: int
    ) -> List[GenBlock2D]:
        bands = list(
            current.row_counts if axis == "rows" else current.col_counts
        )
        n = len(bands)
        moves = []
        for src in range(n):
            if bands[src] - unit < 1:
                continue
            for dst in range(n):
                if src == dst:
                    continue
                trial = list(bands)
                trial[src] -= unit
                trial[dst] += unit
                moves.append(
                    GenBlock2D(trial, current.col_counts)
                    if axis == "rows"
                    else GenBlock2D(current.row_counts, trial)
                )
        return moves

    def _descend(
        self, evaluate: _Budget2D, start: GenBlock2D
    ) -> Tuple[GenBlock2D, float]:
        best = start
        best_val = evaluate(start)
        for axis, total in (
            ("rows", start.n_rows),
            ("cols", start.n_cols),
        ) * self.rounds:
            unit = max(total // self.resolution, 1)
            while True:
                moves = self._axis_moves(best, axis, unit)
                if moves:
                    improved = False
                    for lo in range(0, len(moves), self.batch_size):
                        chunk = moves[lo : lo + self.batch_size]
                        values = evaluate.batch(chunk)
                        i = min(
                            range(len(values)), key=values.__getitem__
                        )
                        if values[i] < best_val - 1e-12:
                            best, best_val = chunk[i], values[i]
                            improved = True
                    if improved:
                        continue
                if unit == 1:
                    break
                unit = max(unit // 2, 1)
        return best, best_val

    # -- the search --------------------------------------------------------

    def search(
        self,
        budget: int = 400,
        *,
        telemetry: Optional[Recorder] = None,
    ) -> TwoDSearchResult:
        if budget < 1:
            raise SearchError("budget must be >= 1")
        rec = as_recorder(telemetry)
        evaluate = _Budget2D(
            self.model, budget, jobs=self.jobs, telemetry=rec
        )
        per_shape: Dict[Tuple[int, int], float] = {}
        with rec.span("search/twod"):
            for shape in self.shapes:
                if is_degenerate(shape):
                    value = _score_strips(
                        self.model,
                        shape,
                        evaluate,
                        self.steps_per_leg,
                        self.jobs,
                    )
                    per_shape[shape] = value
                    continue
                spec = self.model.spec
                starts = [block2d(spec.n_rows, spec.n_cols, shape)]
                if not self.model.cluster.is_cpu_homogeneous:
                    starts.append(
                        balanced2d(
                            self.model.cluster,
                            spec.n_rows,
                            spec.n_cols,
                            shape,
                        )
                    )
                try:
                    values = evaluate.batch(starts)
                    i = min(range(len(values)), key=values.__getitem__)
                    _, value = self._descend(evaluate, starts[i])
                except _Exhausted:
                    value = min(
                        (
                            evaluate.cache[k]
                            for k in map(_Budget2D._key, starts)
                            if k in evaluate.cache
                        ),
                        default=float("inf"),
                    )
                per_shape[shape] = value
        if evaluate.best is None:
            raise SearchError("2-D search performed no evaluations")
        result = TwoDSearchResult(
            best=evaluate.best,
            predicted_seconds=evaluate.best_value,
            evaluations=evaluate.evaluations,
            per_shape=per_shape,
            algorithm=self.name,
            cache_hits=evaluate.hits,
        )
        _record_search(rec, self, budget, result)
        return result


def _score_strips(
    model: TwoDModel,
    shape: Tuple[int, int],
    evaluate: _Budget2D,
    steps_per_leg: int,
    jobs: int,
) -> float:
    """Score a degenerate shape's 1-D spectrum path outside the 2-D move
    budget (the candidates still land in the shared cache and best)."""
    candidates = strip_candidates(model, shape, steps_per_leg)
    # Temporarily lift the cap: strip enumeration is the fixed, cheap
    # price of covering a shape the 1-D path already owns.
    saved = evaluate._budget
    evaluate._budget = evaluate.evaluations + len(candidates)
    try:
        values = evaluate.batch(candidates)
    finally:
        evaluate._budget = saved
    return min(values)


def _record_search(
    rec: Recorder, searcher, budget: int, result: TwoDSearchResult
) -> None:
    if not rec:
        return
    rec.count("search/runs")
    rec.count("search/evaluations", result.evaluations)
    rec.count("search/cache_hits", result.cache_hits)
    rec.set(f"search/{searcher.name}/budget", budget)
    rec.set(f"search/{searcher.name}/budget_spent", result.evaluations)
    rec.set(f"search/{searcher.name}/best_seconds", result.predicted_seconds)
    for shape, value in result.per_shape.items():
        if np.isfinite(value):
            rec.observe("search/twod/shape_best", value)


# -- all five families over the joint encoding --------------------------------


class TwoDLayoutSearch:
    """Run a 1-D searcher family over every grid shape's joint encoding.

    The budget is split evenly across the genuinely 2-D shapes (factor
    pairs with both axes > 1); each shape gets a fresh
    :class:`_ShapeAdapter` and a fresh family instance seeded
    deterministically per shape.  Degenerate strip shapes ride the 1-D
    spectrum path instead (see :func:`strip_candidates`) and do not
    consume the per-shape search budget.

    ``algorithm`` is one of :data:`SEARCHER_2D_FAMILIES`; extra keyword
    knobs pass through to the family constructor (e.g. ``population=``
    for the GA, ``steps=`` for annealing).
    """

    name = "twod"

    def __init__(
        self,
        model: TwoDModel,
        cluster=None,  # accepted for driver uniformity; the model has it
        *,
        algorithm: str = "gbs",
        shapes: Optional[Sequence[Tuple[int, int]]] = None,
        steps_per_leg: int = 8,
        batch_size: int = 64,
        seed_label: str = "",
        jobs: int = 1,
        **knobs,
    ) -> None:
        if algorithm not in SEARCHER_2D_FAMILIES:
            raise SearchError(
                f"unknown 2-D search family {algorithm!r}; choose from "
                f"{sorted(SEARCHER_2D_FAMILIES)}"
            )
        self.model = model
        self.algorithm = algorithm
        self.shapes = (
            list(shapes)
            if shapes is not None
            else factor_pairs(model.cluster.n_nodes)
        )
        self.steps_per_leg = steps_per_leg
        self.batch_size = batch_size
        self._seed_label = seed_label or f"twod-{algorithm}"
        self.jobs = jobs
        self.knobs = knobs

    def search(
        self,
        budget: int = 200,
        *,
        telemetry: Optional[Recorder] = None,
    ) -> TwoDSearchResult:
        if budget < 1:
            raise SearchError("budget must be >= 1")
        rec = as_recorder(telemetry)
        genuine = [s for s in self.shapes if not is_degenerate(s)]
        strips = [s for s in self.shapes if is_degenerate(s)]
        per_shape: Dict[Tuple[int, int], float] = {}
        best: Optional[GenBlock2D] = None
        best_val = float("inf")
        evaluations = 0
        cache_hits = 0
        with rec.span("search/twod"):
            # Degenerate shapes: the 1-D spectrum path, one batch each.
            for shape in strips:
                candidates = strip_candidates(
                    self.model, shape, self.steps_per_leg
                )
                if self.jobs > 1:
                    from repro.parallel import predict_2d_sharded

                    values = predict_2d_sharded(
                        self.model, candidates, self.jobs
                    )
                else:
                    values = self.model.predict(candidates, batch=True)
                evaluations += len(candidates)
                i = int(np.argmin(values))
                per_shape[shape] = float(values[i])
                if values[i] < best_val:
                    best, best_val = candidates[i], float(values[i])
            # Genuine 2-D shapes: the chosen family per shape.
            family = SEARCHER_2D_FAMILIES[self.algorithm]
            share = max(budget // max(len(genuine), 1), 1)
            for shape in genuine:
                adapter = _ShapeAdapter(self.model, shape)
                searcher = family(
                    adapter,
                    adapter.cluster,
                    batch_size=self.batch_size,
                    seed_label=f"{self._seed_label}:{shape[0]}x{shape[1]}",
                    **self.knobs,
                )
                res = searcher.search(share, telemetry=telemetry)
                evaluations += res.evaluations
                cache_hits += res.cache_hits
                dist = adapter.decode(res.best)
                value = float(res.predicted_seconds)
                per_shape[shape] = value
                if value < best_val:
                    best, best_val = dist, value
        if best is None:
            raise SearchError("2-D search performed no evaluations")
        result = TwoDSearchResult(
            best=best,
            predicted_seconds=best_val,
            evaluations=evaluations,
            per_shape=per_shape,
            algorithm=f"{self.name}-{self.algorithm}",
            cache_hits=cache_hits,
        )
        _record_search(rec, self, budget, result)
        return result
