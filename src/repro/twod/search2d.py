"""Searching 2-D layouts: alternating per-axis refinement.

The paper's reason for staying one-dimensional is that 2-D layouts have
no single anchor path to bisect.  The natural workaround — and the
honest way to measure the extra cost — is coordinate descent: for every
grid shape (R, C), alternately optimise the row bands with the column
bands fixed and vice versa, each axis solved by the same
interval-bisection GBS uses in 1-D, then take the best shape.  The
evaluation count multiplies by the number of shapes and alternation
rounds, which *is* the paper's "search space increases greatly" in
algorithmic form.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.distribution.genblock import largest_remainder_round
from repro.exceptions import SearchError
from repro.twod.distribution2d import GenBlock2D
from repro.twod.jacobi2d import TwoDModel

__all__ = ["TwoDSearchResult", "TwoDGbs"]


class TwoDSearchResult:
    """Outcome of a 2-D layout search."""

    def __init__(
        self,
        best: GenBlock2D,
        predicted_seconds: float,
        evaluations: int,
        per_shape: Dict[Tuple[int, int], float],
    ) -> None:
        self.best = best
        self.predicted_seconds = predicted_seconds
        self.evaluations = evaluations
        self.per_shape = per_shape

    def __str__(self) -> str:
        r, c = self.best.grid_shape
        return (
            f"2d-gbs: {self.predicted_seconds:.3f}s predicted with a "
            f"{r}x{c} grid (rows={list(self.best.row_counts)}, "
            f"cols={list(self.best.col_counts)}) after "
            f"{self.evaluations} evaluations"
        )


class TwoDGbs:
    """Coordinate-descent GBS over GenBlock2D layouts.

    Requires one :class:`TwoDModel` per grid shape (tile areas per node
    change with the shape, so each shape needs its own instrumented
    baseline) — supply them via ``models``: a mapping from (R, C) to the
    model built for that shape.  Shapes without a model are skipped.
    """

    def __init__(
        self,
        models: Dict[Tuple[int, int], TwoDModel],
        rounds: int = 3,
        resolution: int = 16,
    ) -> None:
        if not models:
            raise SearchError("need at least one per-shape model")
        self.models = models
        self.rounds = rounds
        self.resolution = resolution

    # -- axis refinement ------------------------------------------------------

    def _refine_axis(
        self,
        evaluate: Callable[[GenBlock2D], float],
        current: GenBlock2D,
        axis: str,
    ) -> GenBlock2D:
        """Greedy single-band moves along one axis until no improvement."""
        best = current
        best_val = evaluate(current)
        n_bands = (
            len(current.row_counts) if axis == "rows" else len(current.col_counts)
        )
        total = current.n_rows if axis == "rows" else current.n_cols
        # Multi-resolution: converge at a coarse step, then halve it
        # (three times) so strongly skewed optima stay reachable without
        # an enormous evaluation count.
        unit = max(total // self.resolution, 1)
        for _halving in range(4):
            improved = True
            while improved:
                improved = False
                bands = (
                    list(best.row_counts)
                    if axis == "rows"
                    else list(best.col_counts)
                )
                for src in range(n_bands):
                    for dst in range(n_bands):
                        if src == dst or bands[src] <= unit:
                            continue
                        trial = list(bands)
                        trial[src] -= unit
                        trial[dst] += unit
                        candidate = (
                            GenBlock2D(trial, best.col_counts)
                            if axis == "rows"
                            else GenBlock2D(best.row_counts, trial)
                        )
                        value = evaluate(candidate)
                        if value < best_val - 1e-12:
                            best, best_val = candidate, value
                            improved = True
                            bands = trial
            if unit == 1:
                break
            unit = max(unit // 2, 1)
        return best

    # -- the search --------------------------------------------------------------

    def search(self, budget: int = 400) -> TwoDSearchResult:
        evaluations = 0
        cache: Dict[Tuple, float] = {}

        best_overall: Optional[GenBlock2D] = None
        best_val = float("inf")
        per_shape: Dict[Tuple[int, int], float] = {}

        for shape, model in self.models.items():
            spec = model.spec

            def evaluate(dist: GenBlock2D) -> float:
                nonlocal evaluations
                key = (dist.row_counts, dist.col_counts)
                if key not in cache:
                    if evaluations >= budget:
                        raise _Exhausted()
                    cache[key] = model.predict_seconds(dist)
                    evaluations += 1
                return cache[key]

            r, c = shape
            current = GenBlock2D(
                largest_remainder_round(np.ones(r), spec.n_rows, minimum=1),
                largest_remainder_round(np.ones(c), spec.n_cols, minimum=1),
            )
            try:
                for _ in range(self.rounds):
                    current = self._refine_axis(evaluate, current, "rows")
                    current = self._refine_axis(evaluate, current, "cols")
                value = evaluate(current)
            except _Exhausted:
                value = cache.get(
                    (current.row_counts, current.col_counts), float("inf")
                )
            per_shape[shape] = value
            if value < best_val:
                best_overall, best_val = current, value

        if best_overall is None:
            raise SearchError("2-D search made no progress")
        return TwoDSearchResult(
            best=best_overall,
            predicted_seconds=best_val,
            evaluations=evaluations,
            per_shape=per_shape,
        )


class _Exhausted(Exception):
    pass
