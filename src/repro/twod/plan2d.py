"""Compiled evaluation plans for the 2-D kernel.

The 2-D model's iteration — stage sweep, four-direction halo exchange,
residual allreduce — applies only ``max`` and ``+ constant`` to the
per-rank clocks on a schedule that never depends on the clock values, so
one whole iteration is a max-plus linear map of the clocks.  For a
candidate layout the map factors as

    ``M = M_red (x) A``

where ``A`` is the 5-point-stencil halo matrix (diagonal = the rank's
stage + its full send sequence + its receive overheads; one off-diagonal
entry per grid neighbour = the sender's cumulative send-order offset +
the in-flight transfer + the receiver's remaining receive overheads) and
``M_red`` is the constant reduce+broadcast matrix the 1-D kernel already
extracts via basis replay.  :class:`EvaluationPlan2D` lowers one
*(spec, cluster, grid shape)* triple into the index tables that build
``A`` for a whole ``(B, P)`` candidate population in a handful of array
operations, then walks ``M`` with the exact steady-state freezing and
closed-form extrapolation of :mod:`repro.core.plan` — the same
tolerances, the same numba-JIT walk when available, the same pairwise
tree-max fold over nodes.

Unlike the 1-D plan there is no per-``(node, rows)`` row store: the 2-D
stage quantities are cheap closed forms (the instrumented per-element
compute rate scaled by tile area, plus the streaming-I/O terms), so the
plan instead memoizes the *composed iteration matrices* per candidate
batch — a repeated population (GBS re-scoring a grid, hill climbs
revisiting neighbours) costs one gather instead of a rebuild.  Plans are
cached in the same process-wide LRU as the 1-D plans
(:func:`repro.core.plan.get_plan` with a shape-qualified key), so
``plan_cache_stats`` and the ``model/plan_cache/*`` telemetry cover both
kernels.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core import plan as planmod
from repro.core.comm import maxplus_compose_batch
from repro.exceptions import ModelError
from repro.obs import Recorder
from repro.program.sections import CommPattern

__all__ = ["EvaluationPlan2D", "get_plan2d"]

#: Direction axis per direction index (north/south move rows — the halo
#: is a tile *row* of ``cols`` elements; west/east move columns).
_NS = 0
_WE = 1


class EvaluationPlan2D:
    """One *(spec, cluster, grid shape)* triple lowered flat.

    ``execute`` scores a validated candidate population: ``(B, R)`` row
    bands and ``(B, C)`` column bands in, ``(B,)`` predicted totals out
    (or the per-rank ``(B, P)`` clock totals with ``reduce=False`` —
    the report path).
    """

    def __init__(self, model, grid_shape: Optional[Tuple[int, int]] = None):
        if grid_shape is None:
            grid_shape = model.inputs.distribution0.grid_shape
        R, C = grid_shape
        cluster = model.cluster
        spec = model.spec
        inputs = model.inputs
        P = R * C
        if P != cluster.n_nodes:
            raise ModelError(
                f"grid {R}x{C} does not cover {cluster.n_nodes} nodes"
            )
        self.grid_shape = (R, C)
        self.P = P
        self.fingerprint = f"{model.fingerprint}:2d:{R}x{C}"
        micro = inputs.micro

        # -- per-rank constants (float64 row vectors) ----------------------
        self._esize = float(spec.element_size)
        self._os = micro.send_overhead
        self._or = micro.recv_overhead
        self._byte_lat = micro.byte_latency
        self._fixed_lat = micro.fixed_latency
        area0 = np.array(
            [inputs.distribution0.tile_elements(r) for r in range(P)],
            dtype=float,
        )
        self._rate = np.asarray(inputs.compute_seconds, dtype=float) / area0
        self._mem = cluster.memory_bytes.astype(float)
        self._rseek = np.array([d.read_seek for d in micro.disks])
        self._wseek = np.array([d.write_seek for d in micro.disks])
        self._rpb = np.asarray(inputs.read_per_byte, dtype=float)
        self._wpb = np.asarray(inputs.write_per_byte, dtype=float)

        # -- grid index tables (candidate-independent) ---------------------
        ranks = np.arange(P)
        self._gi = ranks // C  # grid row of each rank
        self._gj = ranks % C  # grid column of each rank

        # Neighbour lists in the fixed DIRECTIONS order (north, south,
        # west, east; only existing).  ``pos_axis[r, p]`` is the halo
        # axis of rank r's p-th send; edges are receiver-centric.
        from repro.twod.distribution2d import GenBlock2D

        probe = GenBlock2D([1] * R, [1] * C)
        pos_axis = np.zeros((P, 4), dtype=np.int64)
        pos_valid = np.zeros((P, 4), dtype=bool)
        pos_of = {}
        degree = np.zeros(P, dtype=np.int64)
        for r in range(P):
            for p, (direction, _other) in enumerate(probe.neighbors(r)):
                pos_axis[r, p] = _NS if direction in ("north", "south") else _WE
                pos_valid[r, p] = True
                pos_of[(r, direction)] = p
            degree[r] = len(probe.neighbors(r))
        recv_e, send_e, recv_coeff, send_pos = [], [], [], []
        from repro.twod.jacobi2d import _OPPOSITE

        for r in range(P):
            for i, (direction, other) in enumerate(probe.neighbors(r)):
                recv_e.append(r)
                send_e.append(other)
                # t = max(t, deliver_i) + or_ folded over the k receives
                # leaves deliver_i carrying (k - i) receive overheads.
                recv_coeff.append((degree[r] - i) * self._or)
                send_pos.append(pos_of[(other, _OPPOSITE[direction])])
        self._pos_axis = pos_axis
        self._pos_valid = pos_valid
        self._degree = degree
        self._recv_e = np.array(recv_e, dtype=np.int64)
        self._send_e = np.array(send_e, dtype=np.int64)
        self._recv_coeff = np.array(recv_coeff, dtype=float)
        self._send_pos = np.array(send_pos, dtype=np.int64)

        # Constant reduce+broadcast matrix (basis replay, cached on the
        # model's timeline exactly like the 1-D sections).
        if P == 1:
            self._m_red = np.zeros((1, 1))
        else:
            self._m_red = model._timeline._maxplus_matrix(
                CommPattern.REDUCTION, 8.0
            )

        # Composed-matrix memo: repeated small populations gather their
        # (B, P, P) iteration matrices instead of rebuilding them.
        self._m_memo = {}
        self.executes = 0

    # -- candidate lowering ------------------------------------------------

    def _stage_tables(self, rows_t: np.ndarray, cols_t: np.ndarray):
        """Vectorized per-rank closed forms over ``(B, P)`` tiles:
        stage seconds plus the two per-axis halo-read costs."""
        area = (rows_t * cols_t).astype(float)
        compute = self._rate * area
        tile_bytes = area * self._esize
        in_core = tile_bytes <= self._mem
        row_bytes = cols_t.astype(float) * self._esize
        chunk = np.floor(self._mem / np.maximum(row_bytes, 1e-12))
        chunk = np.minimum(np.maximum(chunk, 1.0), np.maximum(rows_t, 1))
        n_io = np.ceil(rows_t / chunk)
        io = n_io * (self._rseek + self._wseek) + tile_bytes * (
            self._rpb + self._wpb
        )
        stage = np.where(in_core, compute, compute + io)
        ns_nbytes = cols_t * self._esize
        we_nbytes = rows_t * self._esize
        halo_ns = np.where(
            in_core, 0.0, self._rseek + ns_nbytes * self._rpb
        )
        halo_we = np.where(
            in_core, 0.0, self._rseek + we_nbytes * self._rpb
        )
        return stage, halo_ns, halo_we, ns_nbytes, we_nbytes

    def _matrices(self, rowc: np.ndarray, colc: np.ndarray) -> np.ndarray:
        """The composed ``(B, P, P)`` per-iteration matrices."""
        B = rowc.shape[0]
        P = self.P
        rows_t = rowc[:, self._gi]
        cols_t = colc[:, self._gj]
        stage, halo_ns, halo_we, ns_nbytes, we_nbytes = self._stage_tables(
            rows_t, cols_t
        )
        # Send sequence: per position, disk halo read + send overhead,
        # accumulated in DIRECTIONS order (the emulator's fixed order).
        ns = self._pos_axis == _NS  # (P, 4)
        step = np.where(ns, halo_ns[:, :, None], halo_we[:, :, None])
        step = np.where(self._pos_valid, step + self._os, 0.0)
        sendcum = np.cumsum(step, axis=2)
        nbytes = np.where(ns, ns_nbytes[:, :, None], we_nbytes[:, :, None])
        transfer = self._fixed_lat + nbytes * self._byte_lat
        deliver = stage[:, :, None] + sendcum + transfer
        A = np.full((B, P, P), -np.inf)
        diag = stage + sendcum[:, :, -1] + self._degree * self._or
        A[:, np.arange(P), np.arange(P)] = diag
        if len(self._recv_e):
            A[:, self._recv_e, self._send_e] = (
                deliver[:, self._send_e, self._send_pos] + self._recv_coeff
            )
        if P == 1:
            return A
        return maxplus_compose_batch(
            np.broadcast_to(self._m_red, (B, P, P)), A
        )

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        rowc: np.ndarray,
        colc: np.ndarray,
        n_iter: int,
        *,
        allow_numba: bool = True,
        reduce: bool = True,
    ) -> np.ndarray:
        """Score a validated candidate population.

        ``rowc``/``colc`` are ``(B, R)``/``(B, C)`` int64 band matrices;
        returns the ``(B,)`` predicted totals, or the per-rank ``(B, P)``
        clock totals with ``reduce=False``.
        """
        self.executes += 1
        key = (rowc.tobytes(), colc.tobytes())
        M = self._m_memo.get(key)
        if M is None:
            M = self._matrices(rowc, colc)
            if rowc.shape[0] <= 64:  # bound the memo's footprint
                if len(self._m_memo) >= 8:
                    self._m_memo.pop(next(iter(self._m_memo)))
                self._m_memo[key] = M
        walk = planmod._numba_walk if allow_numba else None
        if walk is not None:
            try:
                totals = walk(np.ascontiguousarray(M), n_iter)
            except Exception:
                totals = _walk_dense(M, n_iter)
        else:
            totals = _walk_dense(M, n_iter)
        if not reduce:
            return totals
        P = self.P
        if P == 1:
            return totals[:, 0].copy()
        # Pairwise-halving max over nodes (totals is walk scratch).
        m = P
        while m > 2:
            h = m // 2
            np.maximum(
                totals[:, : m - h], totals[:, h:m], out=totals[:, : m - h]
            )
            m -= h
        return np.maximum(totals[:, 0], totals[:, 1])

    @property
    def stats(self) -> dict:
        """Per-plan diagnostics, in the 1-D plan's shape."""
        return {
            "mode": "matrix2d",
            "grid_shape": self.grid_shape,
            "memo_entries": len(self._m_memo),
            "executes": self.executes,
        }


def _walk_dense(M: np.ndarray, n_iter: int) -> np.ndarray:
    """Pure-numpy steady-state walk over dense ``(B, P, P)`` iteration
    matrices — the bit-identical twin of the 1-D plan's jitted walk
    (:func:`repro.core.plan._resolve_numba_walk`): the same per-candidate
    freezing tolerances, the same ``last + steady * k`` extrapolation,
    the same final fallback."""
    B, P = M.shape[0], M.shape[1]
    clocks = np.zeros((B, P))
    totals = np.empty((B, P))
    active = np.ones(B, dtype=bool)
    frozen_none = True
    second_last = None
    last = None
    prev_steady = None
    simulate = 0
    while simulate < n_iter:
        clocks = (M + clocks[:, None, :]).max(axis=2)
        second_last, last = last, clocks
        simulate += 1
        if second_last is not None:
            steady_now = last - second_last
            if prev_steady is not None:
                diff = np.abs(steady_now - prev_steady)
                # Certain-convergence shortcut (see plan._walk_ops): a
                # max abs diff within _ATOL converges every candidate
                # at this same freeze point.
                if frozen_none and diff.max() <= planmod._ATOL:
                    totals[:] = last
                    totals += steady_now * (n_iter - simulate)
                    return totals
                converged = (
                    diff <= planmod._ATOL + planmod._RTOL * np.abs(prev_steady)
                ).all(axis=1)
                newly = active & converged
                if newly.any():
                    frozen_none = False
                    totals[newly] = (
                        last[newly] + steady_now[newly] * (n_iter - simulate)
                    )
                    active[newly] = False
                    if not active.any():
                        return totals
            prev_steady = steady_now
    totals[active] = last[active]
    return totals


def get_plan2d(
    model,
    grid_shape: Tuple[int, int],
    telemetry: Optional[Recorder] = None,
) -> EvaluationPlan2D:
    """The compiled 2-D plan for ``model`` at ``grid_shape``, through
    the process-wide plan LRU (shape-qualified key, shared compile
    telemetry and hit/miss counters)."""
    R, C = grid_shape
    return planmod.get_plan(
        model,
        telemetry,
        key=f"{model.fingerprint}:2d:{R}x{C}",
        factory=lambda m: EvaluationPlan2D(m, (R, C)),
    )
