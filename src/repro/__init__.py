"""Reproduction of "The MHETA Execution Model for Heterogeneous
Clusters" (Nakazawa, Lowenthal, Zhou — SC 2005).

MHETA predicts the execution time of iterative, out-of-core scientific
applications on heterogeneous clusters from a single instrumented
iteration, so that a runtime system can search for an efficient data
distribution.  This package contains the model, every substrate it needs
(cluster descriptions, program structures, GEN_BLOCK distributions, a
discrete-event cluster emulator standing in for the paper's real
cluster, MPI-Jack-style instrumentation), the paper's four benchmark
applications plus Multigrid, the companion search algorithms, and an
experiment harness regenerating every table and figure of the
evaluation.

Quick start::

    from repro import (JacobiApp, Recorder, config_hy1, build_model,
                       GeneralizedBinarySearch)

    cluster = config_hy1()
    program = JacobiApp.paper(scale=0.1).structure
    model = build_model(cluster, program)   # instrumented iteration

    seconds = model.predict(distribution)            # one float
    batch = model.predict(candidates, batch=True)    # vectorized array
    report = model.predict(distribution, report=True)  # per-node report

    search = GeneralizedBinarySearch(model, cluster)
    result = search.search(budget=100)
    print(result)

Every entry point — ``MhetaModel.predict``, ``Searcher.search``,
``emulate``, ``run_spectrum``, ``AdaptiveRuntime.run`` — accepts a
``telemetry=`` keyword taking a :class:`repro.obs.Recorder`; it fills
with hierarchical spans, counters (cache hits, evaluations), gauges
(per-node phase breakdowns) and observation series.  Telemetry left at
``None`` costs one truthiness check per guarded site.  See
``docs/api.md``.
"""

from repro.exceptions import (
    ReproError,
    ConfigurationError,
    DistributionError,
    ProgramStructureError,
    SimulationError,
    InstrumentationError,
    ModelError,
    SearchError,
)
from repro.cluster import (
    NodeSpec,
    NetworkSpec,
    ClusterSpec,
    baseline_cluster,
    config_dc,
    config_io,
    config_hy1,
    config_hy2,
    table1_configs,
    architecture_suite,
    prefetch_suite,
)
from repro.program import (
    Access,
    Variable,
    Stage,
    CommPattern,
    CommSpec,
    ParallelSection,
    ProgramStructure,
    ProgramBuilder,
)
from repro.distribution import (
    GenBlock,
    block,
    balanced,
    in_core,
    in_core_balanced,
    spectrum,
    SpectrumPoint,
)
from repro.placement import MemoryPlan, VariablePlacement, plan_memory
from repro.sim import ClusterEmulator, PerturbationConfig, RunResult, emulate
from repro.instrument import (
    MhetaInputs,
    Microbenchmarks,
    collect_inputs,
    run_microbenchmarks,
)
from repro.core import MhetaModel, PredictionReport
from repro.obs import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    as_recorder,
    reset_warnings,
)
from repro.apps import (
    Application,
    AppConfig,
    JacobiApp,
    ConjugateGradientApp,
    RnaPipelineApp,
    LanczosApp,
    MultigridApp,
    paper_applications,
    application_by_name,
)
from repro.search import (
    SearchResult,
    GeneralizedBinarySearch,
    GeneticSearch,
    SimulatedAnnealingSearch,
    RandomSearch,
    SpectrumSweep,
)
from repro.experiments import build_model, run_spectrum
from repro.runtime import AdaptiveRuntime, AdaptiveReport, RedistributionModel

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "ConfigurationError",
    "DistributionError",
    "ProgramStructureError",
    "SimulationError",
    "InstrumentationError",
    "ModelError",
    "SearchError",
    # cluster
    "NodeSpec",
    "NetworkSpec",
    "ClusterSpec",
    "baseline_cluster",
    "config_dc",
    "config_io",
    "config_hy1",
    "config_hy2",
    "table1_configs",
    "architecture_suite",
    "prefetch_suite",
    # program
    "Access",
    "Variable",
    "Stage",
    "CommPattern",
    "CommSpec",
    "ParallelSection",
    "ProgramStructure",
    "ProgramBuilder",
    # distribution
    "GenBlock",
    "block",
    "balanced",
    "in_core",
    "in_core_balanced",
    "spectrum",
    "SpectrumPoint",
    # placement
    "MemoryPlan",
    "VariablePlacement",
    "plan_memory",
    # sim
    "ClusterEmulator",
    "PerturbationConfig",
    "RunResult",
    "emulate",
    # instrument
    "MhetaInputs",
    "Microbenchmarks",
    "collect_inputs",
    "run_microbenchmarks",
    # core
    "MhetaModel",
    "PredictionReport",
    # obs (telemetry)
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "as_recorder",
    "reset_warnings",
    # apps
    "Application",
    "AppConfig",
    "JacobiApp",
    "ConjugateGradientApp",
    "RnaPipelineApp",
    "LanczosApp",
    "MultigridApp",
    "paper_applications",
    "application_by_name",
    # search
    "SearchResult",
    "GeneralizedBinarySearch",
    "GeneticSearch",
    "SimulatedAnnealingSearch",
    "RandomSearch",
    "SpectrumSweep",
    # experiments
    "build_model",
    "run_spectrum",
    # runtime (the paper's Section-6 system)
    "AdaptiveRuntime",
    "AdaptiveReport",
    "RedistributionModel",
]
