"""Exception hierarchy for the MHETA reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without also swallowing programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "DistributionError",
    "ProgramStructureError",
    "SimulationError",
    "InstrumentationError",
    "ModelError",
    "SearchError",
    "ExperimentError",
    "ServeError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid cluster, node, or network specification."""


class DistributionError(ReproError):
    """An invalid GEN_BLOCK data distribution (wrong total, negative block,
    node count mismatch, ...)."""


class ProgramStructureError(ReproError):
    """An invalid program structure (unknown variable, empty section,
    inconsistent tile count, ...)."""


class SimulationError(ReproError):
    """The discrete-event emulator reached an inconsistent state (deadlock,
    message to an unknown node, negative time, ...)."""


class InstrumentationError(ReproError):
    """Failure while collecting MHETA inputs from an instrumented run."""


class ModelError(ReproError):
    """MHETA was asked to predict with incomplete or inconsistent inputs."""


class SearchError(ReproError):
    """A distribution-search algorithm was misconfigured."""


class ExperimentError(ReproError):
    """An experiment produced degenerate data (e.g. a non-positive
    execution time, which would make the paper's error metric
    meaningless)."""


class ServeError(ReproError):
    """A malformed advisor-service request, a protocol violation, or a
    failure reported by the server for one query."""
