"""AdaptiveRuntime: instrument, search, redistribute, run — repeatedly.

The end-to-end system of paper Section 6, against the emulated cluster:

1. run the **first iteration instrumented** under the starting
   distribution (Blk unless told otherwise), paying the measured
   instrumented-iteration time;
2. build MHETA from the measurements and **search** for a better
   distribution (GBS by default; any
   :class:`~repro.search.base.SearchAlgorithm` works), paying the
   measured search wall time;
3. estimate the **redistribution cost** and switch only if it amortises
   over the remaining iterations;
4. run the remaining iterations under the chosen distribution.

On a *dynamic* cluster (a truthy
:class:`~repro.cluster.dynamics.DynamicsSpec`, attached to the cluster
or passed explicitly) the runtime earns its name: the remaining
iterations run in segments of ``check_interval``, each segment's
observed per-node times are compared against the current model's
per-node prediction, and when the worst relative deviation exceeds
``drift_threshold`` a new round fires — one instrumented iteration on
the cluster's *current* effective speeds, a fresh MHETA search, and a
redistribution charged against the predicted remaining gain.  Every
round is recorded as an :class:`AdaptiveRound` in the report.

The report compares the adaptive end-to-end time against staying on the
starting distribution — quantifying what the paper's proposed
infrastructure would buy.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.cluster import ClusterSpec
from repro.core.model import MhetaModel
from repro.distribution.factories import block
from repro.distribution.genblock import GenBlock
from repro.instrument.collect import collect_inputs
from repro.obs import Recorder, as_recorder
from repro.program.structure import ProgramStructure
from repro.runtime.redistribution import RedistributionModel
from repro.search.base import SearchAlgorithm
from repro.search.gbs import GeneralizedBinarySearch
from repro.sim.executor import _resolve_dynamics, emulate, emulate_many
from repro.sim.perturbation import PerturbationConfig
from repro.util.units import seconds_to_human

__all__ = ["AdaptiveReport", "AdaptiveRound", "AdaptiveRuntime"]


@dataclass(frozen=True)
class AdaptiveRound:
    """One instrument-search-(re)distribute round of an adaptive run."""

    index: int
    at_iteration: int  #: global iteration the round was triggered at
    trigger: str  #: ``"start"`` (round 0) or ``"drift"``
    drift: float  #: worst observed/predicted relative deviation seen
    instrumented_seconds: float
    search_wall_seconds: float
    search_evaluations: int
    from_distribution: GenBlock
    to_distribution: GenBlock
    switched: bool
    redistribution_seconds: float
    #: Emulated seconds and count of the plain iterations this round's
    #: layout governed (until the next round fired, or the run ended).
    segment_seconds: float
    iterations: int

    @property
    def overhead_seconds(self) -> float:
        """What the round cost on top of plain iterations."""
        return (
            self.instrumented_seconds
            + self.search_wall_seconds
            + self.redistribution_seconds
        )


@dataclass(frozen=True)
class AdaptiveReport:
    """Outcome of one adaptive run."""

    start_distribution: GenBlock
    chosen_distribution: GenBlock
    switched: bool
    instrumented_seconds: float  #: all instrumented iterations, summed
    search_wall_seconds: float  #: real time spent searching, summed
    search_evaluations: int
    redistribution_seconds: float  #: 0 when never switching
    remaining_seconds: float  #: plain (non-instrumented) iterations
    static_seconds: float  #: the whole run under the start distribution
    predicted_remaining_seconds: float
    #: Per-round records; a stationary run has exactly one round.
    rounds: Tuple[AdaptiveRound, ...] = ()

    @property
    def adaptive_seconds(self) -> float:
        """End-to-end adaptive time, everything included."""
        return (
            self.instrumented_seconds
            + self.search_wall_seconds
            + self.redistribution_seconds
            + self.remaining_seconds
        )

    @property
    def speedup_vs_static(self) -> float:
        return self.static_seconds / self.adaptive_seconds

    @property
    def n_rounds(self) -> int:
        return len(self.rounds) if self.rounds else 1

    def describe(self) -> str:
        lines = [
            "Adaptive runtime report",
            f"  start distribution : {list(self.start_distribution.counts)}",
            f"  chosen distribution: {list(self.chosen_distribution.counts)}"
            + ("" if self.switched else "  (kept start)"),
            f"  instrumented iters : {seconds_to_human(self.instrumented_seconds)}",
            f"  search             : {seconds_to_human(self.search_wall_seconds)} "
            f"({self.search_evaluations} MHETA evaluations)",
            f"  redistribution     : {seconds_to_human(self.redistribution_seconds)}",
            f"  remaining iters    : {seconds_to_human(self.remaining_seconds)} "
            f"(predicted {seconds_to_human(self.predicted_remaining_seconds)})",
            f"  adaptive total     : {seconds_to_human(self.adaptive_seconds)}",
            f"  static total       : {seconds_to_human(self.static_seconds)}",
            f"  speedup            : {self.speedup_vs_static:.2f}x",
        ]
        if len(self.rounds) > 1:
            lines.append(f"  rounds             : {len(self.rounds)}")
            for r in self.rounds:
                action = (
                    f"-> {list(r.to_distribution.counts)}"
                    if r.switched
                    else "kept layout"
                )
                lines.append(
                    f"    [{r.index}] it={r.at_iteration} {r.trigger}"
                    f" (drift {r.drift:.2f}) {action},"
                    f" overhead {seconds_to_human(r.overhead_seconds)},"
                    f" {r.iterations} iters in"
                    f" {seconds_to_human(r.segment_seconds)}"
                )
        return "\n".join(lines)


class AdaptiveRuntime:
    """The paper's proposed runtime system, on the emulated cluster.

    ``dynamics`` follows the emulator convention: ``None`` honours
    whatever :class:`~repro.cluster.dynamics.DynamicsSpec` is attached
    to ``cluster``, an explicit spec overrides it, and ``False`` forces
    the static single-round protocol.  ``check_interval`` (iterations
    between drift checks) and ``drift_threshold`` (worst per-node
    relative deviation of observed vs predicted iteration time that
    fires a new round) only matter on dynamic clusters.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        program: ProgramStructure,
        perturbation: Optional[PerturbationConfig] = None,
        search: Optional[SearchAlgorithm] = None,
        search_budget: int = 120,
        safety_factor: float = 1.2,
        *,
        dynamics=None,
        check_interval: int = 10,
        drift_threshold: float = 0.25,
    ) -> None:
        if check_interval < 1:
            raise ValueError(
                f"check_interval must be >= 1, got {check_interval}"
            )
        if drift_threshold <= 0.0:
            raise ValueError(
                f"drift_threshold must be > 0, got {drift_threshold}"
            )
        self.cluster = cluster
        self.program = program
        self.perturbation = perturbation
        self._search = search
        self.search_budget = search_budget
        self.safety_factor = safety_factor
        self.dynamics = _resolve_dynamics(cluster, dynamics)
        self.check_interval = check_interval
        self.drift_threshold = drift_threshold

    def run(
        self,
        start: Optional[GenBlock] = None,
        *,
        telemetry: Optional[Recorder] = None,
    ) -> AdaptiveReport:
        """Execute the full adaptive protocol and report.

        ``telemetry`` (a :class:`repro.obs.Recorder`) receives the
        searcher's counters plus the protocol-level phase gauges
        (``adaptive/…``) when supplied.
        """
        rec = as_recorder(telemetry)
        program = self.program
        if start is None:
            start = block(self.cluster, program.n_rows)
        if self.dynamics is not None:
            return self._run_dynamic(start, rec, telemetry)

        # Every emulated phase goes through the shared content-keyed
        # run cache, so repeated adaptive experiments (benchmark
        # panels, variant comparisons) stop re-simulating identical
        # configurations.

        # 1. Instrumented first iteration (slower than a plain one: the
        # forced I/O and blocking prefetches are part of the price).
        instrumented_run = emulate(
            self.cluster,
            program,
            start,
            perturbation=self.perturbation,
            io_mode="instrumented",
            iterations=1,
        )
        inputs = collect_inputs(
            self.cluster,
            program,
            start,
            perturbation=self.perturbation,
        )
        instrumented_seconds = instrumented_run.total_seconds

        # 2. Search with MHETA.
        model = MhetaModel(program, self.cluster, inputs)
        search = self._search or GeneralizedBinarySearch(model, self.cluster)
        wall_start = time.perf_counter()
        result = search.search(
            budget=self.search_budget, start=start, telemetry=telemetry
        )
        search_wall = time.perf_counter() - wall_start

        remaining = max(program.iterations - 1, 0)
        predicted_start = model.predict(
            start, iterations=remaining, telemetry=telemetry
        )
        predicted_best = model.predict(
            result.best, iterations=remaining, telemetry=telemetry
        )
        per_iteration_savings = (
            (predicted_start - predicted_best) / remaining if remaining else 0.0
        )

        # 3. Amortisation decision.
        redistributor = RedistributionModel(self.cluster, program)
        switch = result.best != start and redistributor.worth_switching(
            start,
            result.best,
            per_iteration_savings,
            remaining,
            safety_factor=self.safety_factor,
        )
        chosen = result.best if switch else start
        redistribution_seconds = (
            redistributor.estimate(start, chosen).seconds if switch else 0.0
        )

        # 4. Remaining iterations under the chosen distribution.  Both
        # what-if candidates (stay vs switch) go through one batched
        # emulation pass — the plan walks them as a single (2, P)
        # recurrence and the RunCache dedups a kept start for free.
        if remaining:
            what_if = emulate_many(
                self.cluster,
                program,
                [start, result.best],
                perturbation=self.perturbation,
                iterations=remaining,
                telemetry=telemetry,
            )
            remaining_seconds = what_if[
                1 if chosen == result.best else 0
            ].total_seconds
        else:
            remaining_seconds = 0.0

        # Baseline: the whole job statically on the start distribution.
        static_seconds = emulate(
            self.cluster, program, start, perturbation=self.perturbation
        ).total_seconds

        if rec:
            rec.count("adaptive/runs")
            rec.set("adaptive/rounds", 1)
            rec.set("adaptive/instrumented_seconds", instrumented_seconds)
            rec.set("adaptive/search_wall_seconds", search_wall)
            rec.set("adaptive/redistribution_seconds", redistribution_seconds)
            rec.set("adaptive/remaining_seconds", remaining_seconds)
            rec.set("adaptive/static_seconds", static_seconds)
            rec.set("adaptive/switched", 1.0 if switch else 0.0)

        round0 = AdaptiveRound(
            index=0,
            at_iteration=0,
            trigger="start",
            drift=0.0,
            instrumented_seconds=instrumented_seconds,
            search_wall_seconds=search_wall,
            search_evaluations=result.evaluations,
            from_distribution=start,
            to_distribution=chosen,
            switched=switch,
            redistribution_seconds=redistribution_seconds,
            segment_seconds=remaining_seconds,
            iterations=remaining,
        )
        return AdaptiveReport(
            start_distribution=start,
            chosen_distribution=chosen,
            switched=switch,
            instrumented_seconds=instrumented_seconds,
            search_wall_seconds=search_wall,
            search_evaluations=result.evaluations,
            redistribution_seconds=redistribution_seconds,
            remaining_seconds=remaining_seconds,
            static_seconds=static_seconds,
            predicted_remaining_seconds=predicted_best,
            rounds=(round0,),
        )

    # -- dynamic clusters ---------------------------------------------------

    def _instrument_round(self, dist: GenBlock, iteration: int, telemetry):
        """One round's measurement pass: pay an instrumented iteration
        on the live (dynamic) cluster, then fit MHETA on the cluster's
        effective speeds at ``iteration``."""
        instrumented_run = emulate(
            self.cluster,
            self.program,
            dist,
            perturbation=self.perturbation,
            dynamics=self.dynamics,
            io_mode="instrumented",
            iterations=1,
            iteration_offset=iteration,
        )
        snapshot = self.dynamics.effective_cluster(self.cluster, iteration)
        inputs = collect_inputs(
            snapshot, self.program, dist, perturbation=self.perturbation
        )
        model = MhetaModel(self.program, snapshot, inputs)
        search = self._search or GeneralizedBinarySearch(model, snapshot)
        wall_start = time.perf_counter()
        result = search.search(
            budget=self.search_budget, start=dist, telemetry=telemetry
        )
        search_wall = time.perf_counter() - wall_start
        return (
            instrumented_run.total_seconds,
            snapshot,
            model,
            result,
            search_wall,
        )

    def _decide_switch(self, snapshot, model, dist, candidate, remaining):
        """Amortisation decision on a round's snapshot cluster."""
        if remaining <= 0 or candidate == dist:
            return False, 0.0, 0.0
        predicted_stay = model.predict(dist, iterations=remaining)
        predicted_move = model.predict(candidate, iterations=remaining)
        savings = (predicted_stay - predicted_move) / remaining
        redistributor = RedistributionModel(snapshot, self.program)
        switch = redistributor.worth_switching(
            dist,
            candidate,
            savings,
            remaining,
            safety_factor=self.safety_factor,
        )
        cost = redistributor.estimate(dist, candidate).seconds if switch else 0.0
        predicted = predicted_move if switch else predicted_stay
        return switch, cost, predicted

    def _run_dynamic(self, start, rec, telemetry) -> AdaptiveReport:
        """Multi-round protocol: segments of ``check_interval``
        iterations, drift checks against the round's model, and a fresh
        instrument-search-switch round whenever drift exceeds the
        threshold and enough iterations remain to pay for it."""
        program = self.program
        n_total = program.iterations
        n_nodes = self.cluster.n_nodes

        rounds: List[AdaptiveRound] = []
        current = start
        predicted_remaining = 0.0

        # Round 0 consumes iteration 0 (instrumented).
        (
            instrumented_seconds,
            snapshot,
            model,
            result,
            search_wall,
        ) = self._instrument_round(start, 0, telemetry)
        iteration = 1
        switch, redist_cost, predicted_remaining = self._decide_switch(
            snapshot, model, start, result.best, n_total - iteration
        )
        if switch:
            current = result.best
        rounds.append(
            AdaptiveRound(
                index=0,
                at_iteration=0,
                trigger="start",
                drift=0.0,
                instrumented_seconds=instrumented_seconds,
                search_wall_seconds=search_wall,
                search_evaluations=result.evaluations,
                from_distribution=start,
                to_distribution=current,
                switched=switch,
                redistribution_seconds=redist_cost,
                segment_seconds=0.0,
                iterations=0,
            )
        )
        # Per-node steady iteration seconds the current model expects
        # for the current layout — the drift reference.
        reference = model.predict(current, report=True)
        expected = [n.iteration_seconds for n in reference.nodes]

        segment_seconds = 0.0  # accumulated within the current round
        segment_iters = 0

        def close_round() -> None:
            rounds[-1] = dataclasses.replace(
                rounds[-1],
                segment_seconds=segment_seconds,
                iterations=segment_iters,
            )

        while iteration < n_total:
            seg = min(self.check_interval, n_total - iteration)
            seg_run = emulate(
                self.cluster,
                program,
                current,
                perturbation=self.perturbation,
                dynamics=self.dynamics,
                iterations=seg,
                iteration_offset=iteration,
                telemetry=telemetry,
            )
            segment_seconds += seg_run.total_seconds
            segment_iters += seg
            iteration += seg
            if iteration >= n_total:
                break

            observed = [
                seg_run.per_node_seconds[node] / seg for node in range(n_nodes)
            ]
            drift = max(
                abs(observed[node] - expected[node]) / expected[node]
                for node in range(n_nodes)
                if expected[node] > 0.0
            )
            # Re-instrumenting burns one of the remaining iterations;
            # with fewer than two left there is nothing to win back.
            if drift <= self.drift_threshold or n_total - iteration < 2:
                continue

            close_round()
            (
                instrumented_seconds,
                snapshot,
                model,
                result,
                search_wall,
            ) = self._instrument_round(current, iteration, telemetry)
            at = iteration
            iteration += 1  # the instrumented iteration
            switch, redist_cost, predicted_remaining = self._decide_switch(
                snapshot, model, current, result.best, n_total - iteration
            )
            previous = current
            if switch:
                current = result.best
            rounds.append(
                AdaptiveRound(
                    index=len(rounds),
                    at_iteration=at,
                    trigger="drift",
                    drift=drift,
                    instrumented_seconds=instrumented_seconds,
                    search_wall_seconds=search_wall,
                    search_evaluations=result.evaluations,
                    from_distribution=previous,
                    to_distribution=current,
                    switched=switch,
                    redistribution_seconds=redist_cost,
                    segment_seconds=0.0,
                    iterations=0,
                )
            )
            reference = model.predict(current, report=True)
            expected = [n.iteration_seconds for n in reference.nodes]
            segment_seconds = 0.0
            segment_iters = 0

        close_round()

        # Baseline: the whole job statically on the start distribution,
        # under the same dynamics.
        static_seconds = emulate(
            self.cluster,
            program,
            start,
            perturbation=self.perturbation,
            dynamics=self.dynamics,
        ).total_seconds

        total_instrumented = sum(r.instrumented_seconds for r in rounds)
        total_search = sum(r.search_wall_seconds for r in rounds)
        total_redist = sum(r.redistribution_seconds for r in rounds)
        total_segments = sum(r.segment_seconds for r in rounds)
        switched = any(r.switched for r in rounds)

        if rec:
            rec.count("adaptive/runs")
            rec.set("adaptive/rounds", len(rounds))
            rec.set("adaptive/instrumented_seconds", total_instrumented)
            rec.set("adaptive/search_wall_seconds", total_search)
            rec.set("adaptive/redistribution_seconds", total_redist)
            rec.set("adaptive/remaining_seconds", total_segments)
            rec.set("adaptive/static_seconds", static_seconds)
            rec.set("adaptive/switched", 1.0 if switched else 0.0)

        return AdaptiveReport(
            start_distribution=start,
            chosen_distribution=current,
            switched=switched,
            instrumented_seconds=total_instrumented,
            search_wall_seconds=total_search,
            search_evaluations=sum(r.search_evaluations for r in rounds),
            redistribution_seconds=total_redist,
            remaining_seconds=total_segments,
            static_seconds=static_seconds,
            predicted_remaining_seconds=predicted_remaining,
            rounds=tuple(rounds),
        )
