"""AdaptiveRuntime: instrument, search, redistribute, run.

The end-to-end system of paper Section 6, against the emulated cluster:

1. run the **first iteration instrumented** under the starting
   distribution (Blk unless told otherwise), paying the measured
   instrumented-iteration time;
2. build MHETA from the measurements and **search** for a better
   distribution (GBS by default; any
   :class:`~repro.search.base.SearchAlgorithm` works), paying the
   measured search wall time;
3. estimate the **redistribution cost** and switch only if it amortises
   over the remaining iterations;
4. run the remaining iterations under the chosen distribution.

The report compares the adaptive end-to-end time against (a) staying on
the starting distribution and (b) the omniscient best — quantifying what
the paper's proposed infrastructure would buy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.cluster.cluster import ClusterSpec
from repro.core.model import MhetaModel
from repro.distribution.factories import block
from repro.distribution.genblock import GenBlock
from repro.instrument.collect import collect_inputs
from repro.obs import Recorder, as_recorder
from repro.program.structure import ProgramStructure
from repro.runtime.redistribution import RedistributionModel
from repro.search.base import SearchAlgorithm
from repro.search.gbs import GeneralizedBinarySearch
from repro.sim.executor import emulate, emulate_many
from repro.sim.perturbation import PerturbationConfig
from repro.util.units import seconds_to_human

__all__ = ["AdaptiveReport", "AdaptiveRuntime"]


@dataclass(frozen=True)
class AdaptiveReport:
    """Outcome of one adaptive run."""

    start_distribution: GenBlock
    chosen_distribution: GenBlock
    switched: bool
    instrumented_seconds: float  #: measured first (instrumented) iteration
    search_wall_seconds: float  #: real time spent searching
    search_evaluations: int
    redistribution_seconds: float  #: 0 when not switching
    remaining_seconds: float  #: iterations 2..N under the chosen layout
    static_seconds: float  #: the whole run under the start distribution
    predicted_remaining_seconds: float

    @property
    def adaptive_seconds(self) -> float:
        """End-to-end adaptive time, everything included."""
        return (
            self.instrumented_seconds
            + self.search_wall_seconds
            + self.redistribution_seconds
            + self.remaining_seconds
        )

    @property
    def speedup_vs_static(self) -> float:
        return self.static_seconds / self.adaptive_seconds

    def describe(self) -> str:
        lines = [
            "Adaptive runtime report",
            f"  start distribution : {list(self.start_distribution.counts)}",
            f"  chosen distribution: {list(self.chosen_distribution.counts)}"
            + ("" if self.switched else "  (kept start)"),
            f"  instrumented iter  : {seconds_to_human(self.instrumented_seconds)}",
            f"  search             : {seconds_to_human(self.search_wall_seconds)} "
            f"({self.search_evaluations} MHETA evaluations)",
            f"  redistribution     : {seconds_to_human(self.redistribution_seconds)}",
            f"  remaining iters    : {seconds_to_human(self.remaining_seconds)} "
            f"(predicted {seconds_to_human(self.predicted_remaining_seconds)})",
            f"  adaptive total     : {seconds_to_human(self.adaptive_seconds)}",
            f"  static total       : {seconds_to_human(self.static_seconds)}",
            f"  speedup            : {self.speedup_vs_static:.2f}x",
        ]
        return "\n".join(lines)


class AdaptiveRuntime:
    """The paper's proposed runtime system, on the emulated cluster."""

    def __init__(
        self,
        cluster: ClusterSpec,
        program: ProgramStructure,
        perturbation: Optional[PerturbationConfig] = None,
        search: Optional[SearchAlgorithm] = None,
        search_budget: int = 120,
        safety_factor: float = 1.2,
    ) -> None:
        self.cluster = cluster
        self.program = program
        self.perturbation = perturbation
        self._search = search
        self.search_budget = search_budget
        self.safety_factor = safety_factor

    def run(
        self,
        start: Optional[GenBlock] = None,
        *,
        telemetry: Optional[Recorder] = None,
    ) -> AdaptiveReport:
        """Execute the full adaptive protocol and report.

        ``telemetry`` (a :class:`repro.obs.Recorder`) receives the
        searcher's counters plus the protocol-level phase gauges
        (``adaptive/…``) when supplied.
        """
        rec = as_recorder(telemetry)
        program = self.program
        if start is None:
            start = block(self.cluster, program.n_rows)

        # Every emulated phase goes through the shared content-keyed
        # run cache, so repeated adaptive experiments (benchmark
        # panels, variant comparisons) stop re-simulating identical
        # configurations.

        # 1. Instrumented first iteration (slower than a plain one: the
        # forced I/O and blocking prefetches are part of the price).
        instrumented_run = emulate(
            self.cluster,
            program,
            start,
            perturbation=self.perturbation,
            instrumented=True,
            iterations=1,
        )
        inputs = collect_inputs(
            self.cluster,
            program,
            start,
            perturbation=self.perturbation,
        )
        instrumented_seconds = instrumented_run.total_seconds

        # 2. Search with MHETA.
        model = MhetaModel(program, self.cluster, inputs)
        search = self._search or GeneralizedBinarySearch(model, self.cluster)
        wall_start = time.perf_counter()
        result = search.search(
            budget=self.search_budget, start=start, telemetry=telemetry
        )
        search_wall = time.perf_counter() - wall_start

        remaining = max(program.iterations - 1, 0)
        predicted_start = model.predict(
            start, iterations=remaining, telemetry=telemetry
        )
        predicted_best = model.predict(
            result.best, iterations=remaining, telemetry=telemetry
        )
        per_iteration_savings = (
            (predicted_start - predicted_best) / remaining if remaining else 0.0
        )

        # 3. Amortisation decision.
        redistributor = RedistributionModel(self.cluster, program)
        switch = result.best != start and redistributor.worth_switching(
            start,
            result.best,
            per_iteration_savings,
            remaining,
            safety_factor=self.safety_factor,
        )
        chosen = result.best if switch else start
        redistribution_seconds = (
            redistributor.estimate(start, chosen).seconds if switch else 0.0
        )

        # 4. Remaining iterations under the chosen distribution.  Both
        # what-if candidates (stay vs switch) go through one batched
        # emulation pass — the plan walks them as a single (2, P)
        # recurrence and the RunCache dedups a kept start for free.
        if remaining:
            what_if = emulate_many(
                self.cluster,
                program,
                [start, result.best],
                perturbation=self.perturbation,
                iterations=remaining,
                telemetry=telemetry,
            )
            remaining_seconds = what_if[
                1 if chosen == result.best else 0
            ].total_seconds
        else:
            remaining_seconds = 0.0

        # Baseline: the whole job statically on the start distribution.
        static_seconds = emulate(
            self.cluster, program, start, perturbation=self.perturbation
        ).total_seconds

        if rec:
            rec.count("adaptive/runs")
            rec.set("adaptive/instrumented_seconds", instrumented_seconds)
            rec.set("adaptive/search_wall_seconds", search_wall)
            rec.set("adaptive/redistribution_seconds", redistribution_seconds)
            rec.set("adaptive/remaining_seconds", remaining_seconds)
            rec.set("adaptive/static_seconds", static_seconds)
            rec.set("adaptive/switched", 1.0 if switch else 0.0)

        return AdaptiveReport(
            start_distribution=start,
            chosen_distribution=chosen,
            switched=switch,
            instrumented_seconds=instrumented_seconds,
            search_wall_seconds=search_wall,
            search_evaluations=result.evaluations,
            redistribution_seconds=redistribution_seconds,
            remaining_seconds=remaining_seconds,
            static_seconds=static_seconds,
            predicted_remaining_seconds=predicted_best,
        )
