"""Cost model for effecting a new data distribution.

When the runtime switches from distribution ``old`` to ``new``, every
global row whose owner changes must move: the old owner reads it (from
disk when the variable is out of core there), sends it, and the new
owner receives and stores it (to disk when out of core there).
GEN_BLOCK blocks are contiguous, so the moving rows form at most a few
contiguous segments and the disk traffic is sequential — the model
charges one seek per (node, variable, direction) plus bandwidth-
proportional transfer, with network transfer overlapping whichever side
is slower (store-and-forward through the wire: the pipe's throughput is
set by its slowest stage).

This follows the redistribution-cost treatment of Morris & Lowenthal
[23] (cited by the paper) adapted to the out-of-core setting: disk, not
memory, is often the bottleneck end of the pipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.distribution.genblock import GenBlock
from repro.exceptions import ModelError
from repro.placement import plan_memory
from repro.program.structure import ProgramStructure

__all__ = ["RedistributionEstimate", "RedistributionModel"]


@dataclass(frozen=True)
class RedistributionEstimate:
    """Predicted cost of one redistribution."""

    seconds: float
    moved_rows: int
    moved_bytes: float
    per_node_out_bytes: Tuple[float, ...]
    per_node_in_bytes: Tuple[float, ...]

    @property
    def is_noop(self) -> bool:
        return self.moved_rows == 0


def _moved_segments(old: GenBlock, new: GenBlock) -> List[Tuple[int, int, int, int]]:
    """Segments ``(start, stop, old_owner, new_owner)`` whose owner
    changes between the two distributions."""
    if old.n_nodes != new.n_nodes or old.n_rows != new.n_rows:
        raise ModelError("distributions must cover the same nodes and rows")
    breaks = np.unique(
        np.concatenate(
            [
                np.asarray(old.starts + (old.n_rows,)),
                np.asarray(new.starts + (new.n_rows,)),
            ]
        )
    )
    old_starts = np.asarray(old.starts + (old.n_rows,))
    new_starts = np.asarray(new.starts + (new.n_rows,))
    segments = []
    for lo, hi in zip(breaks[:-1], breaks[1:]):
        if hi <= lo:
            continue
        o = int(np.searchsorted(old_starts, lo, side="right") - 1)
        n = int(np.searchsorted(new_starts, lo, side="right") - 1)
        if o != n:
            segments.append((int(lo), int(hi), o, n))
    return segments


class RedistributionModel:
    """Estimate the time to move data from one GEN_BLOCK layout to
    another on a given cluster."""

    def __init__(self, cluster: ClusterSpec, program: ProgramStructure) -> None:
        self.cluster = cluster
        self.program = program

    # -- helpers -----------------------------------------------------------

    def _out_of_core(self, node: int, rows: int, variable: str) -> bool:
        plan = plan_memory(
            self.program, rows, self.cluster[node].memory_bytes
        )
        placement = plan.placements.get(variable)
        return placement is not None and not placement.in_core

    # -- estimation ------------------------------------------------------------

    def estimate(self, old: GenBlock, new: GenBlock) -> RedistributionEstimate:
        """Predicted redistribution time ``old -> new``.

        Per moving segment and distributed variable, the pipe is
        disk-read (if out of core on the source) -> network -> disk-write
        (if out of core on the destination); its rate is the slowest
        stage's.  Nodes move their segments sequentially; different
        node pairs move in parallel, so the total is the slowest node's
        traffic time plus a per-segment handshake.
        """
        segments = _moved_segments(old, new)
        P = self.cluster.n_nodes
        out_bytes = [0.0] * P
        in_bytes = [0.0] * P
        busy = [0.0] * P
        net = self.cluster.network
        moved_rows = 0

        for start, stop, src, dst in segments:
            rows = stop - start
            moved_rows += rows
            for variable in self.program.distributed_variables:
                nbytes = rows * variable.row_bytes
                if nbytes <= 0:
                    continue
                out_bytes[src] += nbytes
                in_bytes[dst] += nbytes
                src_node = self.cluster[src]
                dst_node = self.cluster[dst]
                rates = [1.0 / max(net.latency_per_byte, 1e-30)]
                overhead = net.send_overhead + net.recv_overhead + net.fixed_latency
                if self._out_of_core(src, old[src], variable.name):
                    rates.append(src_node.disk_read_bw)
                    overhead += src_node.disk_read_seek
                if self._out_of_core(dst, new[dst], variable.name):
                    rates.append(dst_node.disk_write_bw)
                    overhead += dst_node.disk_write_seek
                duration = overhead + nbytes / min(rates)
                busy[src] += duration
                busy[dst] += duration

        return RedistributionEstimate(
            seconds=max(busy) if busy else 0.0,
            moved_rows=moved_rows,
            moved_bytes=float(sum(out_bytes)),
            per_node_out_bytes=tuple(out_bytes),
            per_node_in_bytes=tuple(in_bytes),
        )

    def worth_switching(
        self,
        old: GenBlock,
        new: GenBlock,
        per_iteration_savings: float,
        remaining_iterations: int,
        safety_factor: float = 1.2,
    ) -> bool:
        """Amortisation test: switch when the redistribution pays for
        itself over the remaining iterations, with ``safety_factor``
        headroom for estimate error."""
        if per_iteration_savings <= 0 or remaining_iterations <= 0:
            return False
        cost = self.estimate(old, new).seconds
        return per_iteration_savings * remaining_iterations > cost * safety_factor
