"""The adaptive runtime system the paper announces as future work.

Section 6: "we are starting development of our new MPI system that will
determine the MHETA inputs, use a search algorithm based on MHETA to
select a distribution (quickly), and then effect that distribution on
the fly.  In this way we believe that we can provide an infrastructure
for efficient support of out-of-core parallel programs on heterogeneous
clusters."

This package implements that system against the emulated cluster:

* :mod:`repro.runtime.redistribution` — the cost of *effecting* a new
  GEN_BLOCK distribution: every row that changes owner must be read on
  its old node (from disk, if out of core there), shipped, and written
  on its new node;
* :mod:`repro.runtime.adaptive` — the end-to-end
  :class:`AdaptiveRuntime`: run the first iteration instrumented under
  the current distribution, build MHETA, search (GBS by default), and
  redistribute only when the predicted savings over the remaining
  iterations exceed the redistribution cost.
"""

from repro.runtime.redistribution import (
    RedistributionEstimate,
    RedistributionModel,
)
from repro.runtime.adaptive import AdaptiveReport, AdaptiveRound, AdaptiveRuntime

__all__ = [
    "RedistributionEstimate",
    "RedistributionModel",
    "AdaptiveReport",
    "AdaptiveRound",
    "AdaptiveRuntime",
]
