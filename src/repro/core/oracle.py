"""MHETA's out-of-core heuristic.

"MHETA currently uses a simple heuristic to determine if v is out of
core for a given d'.  MHETA calculates its ICLA based on the memory
capacity of the node and its OCLA size assigned to the node by d'."
(paper Section 4.2.1.)

The heuristic shares the greedy placement rule with the emulator
(:mod:`repro.placement`) but assumes the node's whole application memory
is available — it knows nothing about the runtime's buffer reservations.
That optimism is limitation 2 of Section 5.4: near the in-core boundary
the oracle occasionally declares a variable in core that the real
runtime must stream, and MHETA then under-predicts by the missing I/O.
"""

from __future__ import annotations

from typing import Sequence

from repro.distribution.genblock import GenBlock
from repro.exceptions import ModelError
from repro.placement import MemoryPlan, plan_memory
from repro.program.structure import ProgramStructure
from repro.util.lru import LRUCache

__all__ = ["OutOfCoreOracle"]

#: Bound of the per-``(node, rows)`` plan memo; long sweeps revisit row
#: counts constantly but must not grow memory without limit.
DEFAULT_PLAN_CACHE_ENTRIES = 8192


class OutOfCoreOracle:
    """Model-side ICLA/OCLA/N_IO calculator.

    Parameters
    ----------
    program:
        The application structure.
    memory_bytes:
        Application memory per node (the only hardware knowledge the
        oracle has).
    """

    def __init__(
        self,
        program: ProgramStructure,
        memory_bytes: Sequence[int],
        cache_entries: int = DEFAULT_PLAN_CACHE_ENTRIES,
    ) -> None:
        if len(memory_bytes) == 0:
            raise ModelError("oracle needs at least one node's memory size")
        self._program = program
        self._memory = [int(m) for m in memory_bytes]
        self._cache = LRUCache(cache_entries)

    @property
    def n_nodes(self) -> int:
        return len(self._memory)

    def plan(self, node: int, rows: int) -> MemoryPlan:
        """Placement the model believes node ``node`` uses for ``rows``."""
        if not 0 <= node < self.n_nodes:
            raise ModelError(f"node {node} out of range")
        key = (node, rows)
        plan = self._cache.get(key)
        if plan is None:
            plan = plan_memory(self._program, rows, self._memory[node])
            self._cache.put(key, plan)
        return plan

    def plans(self, distribution: GenBlock) -> list:
        """Placements for every node under ``distribution``."""
        if distribution.n_nodes != self.n_nodes:
            raise ModelError(
                "distribution node count does not match the oracle's"
            )
        return [self.plan(n, distribution[n]) for n in range(self.n_nodes)]

    def is_out_of_core(self, node: int, rows: int, variable: str) -> bool:
        """The heuristic's verdict for one variable."""
        placement = self.plan(node, rows).placements.get(variable)
        if placement is None:
            raise ModelError(f"{variable!r} is not a distributed variable")
        return not placement.in_core
