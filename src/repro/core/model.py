"""MhetaModel: the assembled execution-time predictor.

``predict`` walks the program's parallel sections with per-node clocks:
stage times come from :class:`~repro.core.io_model.StageTimeModel`
(measured computation rescaled to the candidate distribution, plus
Equation 1/2 I/O from the out-of-core oracle), and section-closing
communication comes from :class:`~repro.core.comm.SectionTimeline`
(Equation 3/4 waits, reduction, allgather).  The predicted application
time is the slowest node's clock after the final iteration.

The model deliberately knows nothing about relative CPU powers, disk
bandwidths, page caches, or per-row work variation: everything
hardware- or application-specific enters through the measured
``MhetaInputs``, exactly as in the paper.  Only node *memory capacities*
are read from the cluster description, because the out-of-core heuristic
needs them (Section 4.2.1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.cluster.cluster import ClusterSpec
from repro.core.comm import SectionTimeline
from repro.core.io_model import StageTimeModel
from repro.core.oracle import OutOfCoreOracle
from repro.core.report import (
    NodePrediction,
    PredictionReport,
    SectionBreakdown,
)
from repro.distribution.genblock import GenBlock
from repro.exceptions import ModelError
from repro.instrument.inputs import MhetaInputs
from repro.program.sections import CommPattern, ParallelSection
from repro.program.structure import ProgramStructure

__all__ = ["MhetaModel"]


def _tile_rows(rows: int, tiles: int, tile: int) -> int:
    lo = (rows * tile) // tiles
    hi = (rows * (tile + 1)) // tiles
    return hi - lo


class MhetaModel:
    """Predict execution times for candidate distributions."""

    def __init__(
        self,
        program: ProgramStructure,
        memories: Union[ClusterSpec, Sequence[int]],
        inputs: MhetaInputs,
    ) -> None:
        if isinstance(memories, ClusterSpec):
            memory_list = [n.memory_bytes for n in memories.nodes]
        else:
            memory_list = [int(m) for m in memories]
        if len(memory_list) != inputs.n_nodes:
            raise ModelError(
                "memory capacities and instrumented inputs disagree on the "
                f"node count ({len(memory_list)} vs {inputs.n_nodes})"
            )
        if inputs.program_name != program.name:
            raise ModelError(
                f"inputs were collected for {inputs.program_name!r}, "
                f"not {program.name!r}"
            )
        self.program = program
        self.inputs = inputs
        self.oracle = OutOfCoreOracle(program, memory_list)
        self.stage_model = StageTimeModel(program, inputs)
        self.timeline = SectionTimeline(inputs.micro, len(memory_list))

    @property
    def n_nodes(self) -> int:
        return self.oracle.n_nodes

    # -- prediction -------------------------------------------------------------

    def predict(
        self,
        distribution: GenBlock,
        iterations: Optional[int] = None,
    ) -> PredictionReport:
        """Full prediction with per-node, per-section breakdowns."""
        return self._predict(distribution, iterations, want_report=True)

    def predict_seconds(
        self,
        distribution: GenBlock,
        iterations: Optional[int] = None,
    ) -> float:
        """Fast path returning only the predicted total time (what a
        distribution-search evaluation function needs)."""
        return self._predict(distribution, iterations, want_report=False)

    def predict_many(
        self,
        distributions: Sequence[GenBlock],
        iterations: Optional[int] = None,
    ) -> List[float]:
        """Batched :meth:`predict_seconds` over candidate distributions.

        The per-node stage tables depend only on ``(node, rows)`` — not
        on what the *other* nodes were assigned — so candidates sharing
        row counts on a node (spectrum points share their leg
        endpoints, search populations converge) share the table
        construction.  Results are bit-identical to calling
        :meth:`predict_seconds` per candidate: the memo only reuses
        values the serial path would recompute identically.
        """
        memo: dict = {}
        return [
            self._predict(d, iterations, want_report=False, node_memo=memo)
            for d in distributions
        ]

    # -- implementation -------------------------------------------------------------

    def _node_tables(self, n: int, rows: int, plan):
        """Per section, for one node: tile stage-times (total and
        compute-only) plus the message source-read cost."""
        out = []
        for section in self.program.sections:
            totals: List[float] = []
            computes: List[float] = []
            for tile in range(section.tiles):
                trows = _tile_rows(rows, section.tiles, tile)
                c_sum = 0.0
                t_sum = 0.0
                for stage in section.stages:
                    st = self.stage_model.tile_stage_times(
                        n, rows, section, stage, trows, plan
                    )
                    c_sum += st.compute_seconds
                    t_sum += st.total
                totals.append(t_sum)
                computes.append(c_sum)
            read = 0.0
            src = section.comm.source_variable
            if (
                src is not None
                and section.comm.pattern is CommPattern.NEAREST_NEIGHBOR
            ):
                placement = plan.placements.get(src)
                if placement is not None and not placement.in_core:
                    read = self.stage_model.read_block_seconds(
                        n, src, section.comm.message_bytes
                    )
            out.append((totals, computes, read))
        return out

    def _section_tables(
        self, distribution: GenBlock, node_memo: Optional[dict] = None
    ) -> List[Tuple[ParallelSection, List[List[float]], List[List[float]], List[float]]]:
        """Precompute, per section: tile stage-times (split by compute and
        I/O) and per-node message source-read costs.  These are the same
        for every iteration, so the iteration loop only replays the
        communication timeline.  ``node_memo`` (used by
        :meth:`predict_many`) caches the per-``(node, rows)`` work across
        candidate distributions."""
        P = self.n_nodes
        plans = self.oracle.plans(distribution)
        per_node = []
        for n in range(P):
            rows = distribution[n]
            if node_memo is None:
                per_node.append(self._node_tables(n, rows, plans[n]))
            else:
                key = (n, rows)
                entry = node_memo.get(key)
                if entry is None:
                    entry = self._node_tables(n, rows, plans[n])
                    node_memo[key] = entry
                per_node.append(entry)
        tables = []
        for si, section in enumerate(self.program.sections):
            tile_totals = [per_node[n][si][0] for n in range(P)]
            tile_compute = [per_node[n][si][1] for n in range(P)]
            source_read = [per_node[n][si][2] for n in range(P)]
            tables.append((section, tile_totals, tile_compute, source_read))
        return tables

    def _predict(
        self,
        distribution: GenBlock,
        iterations: Optional[int],
        want_report: bool,
        node_memo: Optional[dict] = None,
    ):
        if distribution.n_nodes != self.n_nodes:
            raise ModelError("distribution does not match the model's nodes")
        if distribution.n_rows != self.program.n_rows:
            raise ModelError("distribution does not cover the program's rows")
        n_iter = (
            iterations if iterations is not None else self.program.iterations
        )
        P = self.n_nodes
        tables = self._section_tables(distribution, node_memo)

        clocks = [0.0] * P
        iter_ends: List[List[float]] = []
        profile = self.program.iteration_profile
        if profile is None:
            # Iterations are identical in cost, but the per-node clocks
            # need a few iterations for their wait pattern to settle
            # (pipeline fill, neighbour-wait coupling).  Walk iterations
            # until the per-iteration increment vector repeats exactly,
            # then extrapolate the rest linearly; a cycle is guaranteed
            # quickly in practice, and the walk is capped by n_iter.
            prev_steady = None
            simulate = 0
            while simulate < n_iter:
                for section, tile_totals, _, source_read in tables:
                    clocks = self.timeline.advance(
                        section.comm.pattern,
                        clocks,
                        tile_totals,
                        section.comm.message_bytes,
                        source_read,
                    )
                iter_ends.append(list(clocks))
                simulate += 1
                if len(iter_ends) >= 2:
                    steady_now = [
                        iter_ends[-1][n] - iter_ends[-2][n] for n in range(P)
                    ]
                    if prev_steady is not None and all(
                        abs(a - b) <= 1e-12 + 1e-9 * abs(b)
                        for a, b in zip(steady_now, prev_steady)
                    ):
                        break
                    prev_steady = steady_now
            if n_iter == 1 or len(iter_ends) < 2:
                totals = iter_ends[0]
                steady = list(iter_ends[0])
            else:
                steady = [
                    iter_ends[-1][n] - iter_ends[-2][n] for n in range(P)
                ]
                totals = [
                    iter_ends[-1][n] + steady[n] * (n_iter - simulate)
                    for n in range(P)
                ]
        else:
            # Non-uniform iterations (paper Section 3.1's deferred case):
            # the instrumented iteration measured computation at the
            # profile's first multiplier; each later iteration scales its
            # computation share accordingly.  Every iteration is walked
            # explicitly — no steady state exists to extrapolate.
            m0 = self.program.iteration_multiplier(0)
            for it in range(n_iter):
                mult = (
                    self.program.iteration_multiplier(it)
                    if it < self.program.iterations
                    else 1.0
                ) / m0
                for section, tile_totals, tile_compute, source_read in tables:
                    scaled = [
                        [
                            total + (mult - 1.0) * compute
                            for total, compute in zip(
                                tile_totals[n], tile_compute[n]
                            )
                        ]
                        for n in range(P)
                    ]
                    clocks = self.timeline.advance(
                        section.comm.pattern,
                        clocks,
                        scaled,
                        section.comm.message_bytes,
                        source_read,
                    )
                iter_ends.append(list(clocks))
            totals = iter_ends[-1]
            if n_iter >= 2:
                steady = [
                    iter_ends[-1][n] - iter_ends[-2][n] for n in range(P)
                ]
            else:
                steady = list(iter_ends[0])

        if not want_report:
            return max(totals)

        nodes = []
        for n in range(P):
            sections = []
            for section, tile_totals, tile_compute, source_read in tables:
                compute = sum(tile_compute[n])
                io = sum(tile_totals[n]) - compute
                sections.append(
                    SectionBreakdown(
                        section=section.name,
                        compute_seconds=compute,
                        io_seconds=io,
                        comm_seconds=0.0,  # filled below
                    )
                )
            local = sum(s.compute_seconds + s.io_seconds for s in sections)
            # Attribute the communication residual to the sections that
            # actually communicate, proportionally to their messages.
            # The residual can dip below zero when the steady-state
            # iteration is cheaper than the summed local work (overlap);
            # a negative "communication time" is meaningless, so clamp.
            comm = max(steady[n] - local, 0.0)
            comm_specs = [
                sec.comm
                for (sec, *_rest) in tables
                if sec.comm.pattern is not CommPattern.NONE
            ]
            total_bytes = sum(c.message_bytes for c in comm_specs)
            final_sections = []
            for s, (sec, *_rest) in zip(sections, tables):
                if sec.comm.pattern is CommPattern.NONE:
                    share = 0.0
                elif total_bytes > 0:
                    share = comm * sec.comm.message_bytes / total_bytes
                else:
                    # Zero-byte messages still synchronise; split evenly.
                    share = comm / len(comm_specs)
                final_sections.append(
                    SectionBreakdown(
                        section=s.section,
                        compute_seconds=s.compute_seconds,
                        io_seconds=s.io_seconds,
                        comm_seconds=share,
                    )
                )
            nodes.append(
                NodePrediction(
                    node=n,
                    iteration_seconds=steady[n],
                    total_seconds=totals[n],
                    sections=tuple(final_sections),
                )
            )
        return PredictionReport(
            program_name=self.program.name,
            distribution=distribution,
            iterations=n_iter,
            nodes=tuple(nodes),
        )
