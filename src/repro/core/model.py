"""MhetaModel: the assembled execution-time predictor.

``predict`` walks the program's parallel sections with per-node clocks:
stage times come from :class:`~repro.core.io_model.StageTimeModel`
(measured computation rescaled to the candidate distribution, plus
Equation 1/2 I/O from the out-of-core oracle), and section-closing
communication comes from :class:`~repro.core.comm.SectionTimeline`
(Equation 3/4 waits, reduction, allgather).  The predicted application
time is the slowest node's clock after the final iteration.

Two evaluation kernels produce those clocks:

* ``kernel="scalar"`` — the reference implementation: per-tile,
  per-stage, per-block Python loops, kept exactly as originally
  written so the fast path always has a bit-stable baseline to be
  checked against.
* ``kernel="numpy"`` (default) — the vectorised kernel: each node's
  tiles x stages become closed-form array expressions
  (:meth:`StageTimeModel.section_tile_times`) and the communication
  timeline advances ``np.ndarray`` clocks
  (:meth:`SectionTimeline.advance_arrays`).  It agrees with the scalar
  reference to rounding (<= 1e-12 relative, pinned by the golden
  equivalence suite in ``tests/test_kernel_equivalence.py``).

The per-node stage tables depend only on ``(node, rows)`` — not on what
the *other* nodes were assigned — so a bounded LRU inside the model
reuses them across *every* prediction: a hill-climb move changes two
nodes' row counts, so P-2 nodes hit the cache even through
single-candidate :meth:`predict_seconds` calls.

The model deliberately knows nothing about relative CPU powers, disk
bandwidths, page caches, or per-row work variation: everything
hardware- or application-specific enters through the measured
``MhetaInputs``, exactly as in the paper.  Only node *memory capacities*
are read from the cluster description, because the out-of-core heuristic
needs them (Section 4.2.1).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.core.comm import (
    SectionTimeline,
    maxplus_compose,
    maxplus_compose_batch,
)
from repro.core.io_model import StageTimeModel
from repro.core.oracle import OutOfCoreOracle
from repro.core.report import (
    NodePrediction,
    PredictionReport,
    SectionBreakdown,
)
from repro.distribution.genblock import GenBlock
from repro.exceptions import ModelError
from repro.instrument.inputs import MhetaInputs
from repro.obs import Recorder, warn_once
from repro.program.sections import CommPattern, ParallelSection
from repro.program.structure import ProgramStructure
from repro.util.lru import LRUCache

__all__ = ["MhetaModel", "KERNELS", "DEFAULT_TABLE_CACHE_ENTRIES"]

#: Selectable evaluation kernels.  ``"plan"`` evaluates through a
#: compiled :class:`repro.core.plan.EvaluationPlan` (one-time lowering
#: of the (app structure, cluster shape) triple, JIT-compiled with
#: numba when available) and falls back to the numpy machinery for
#: reports and iteration-profile programs.
KERNELS = ("numpy", "scalar", "plan")

#: Default bound of the per-``(node, rows)`` table cache.  Generous for
#: any search (a 200-evaluation sweep over 8 nodes touches at most 1600
#: distinct keys) while keeping long unattended sweeps at a fixed memory
#: ceiling.
DEFAULT_TABLE_CACHE_ENTRIES = 4096


def _tile_rows(rows: int, tiles: int, tile: int) -> int:
    lo = (rows * tile) // tiles
    hi = (rows * (tile + 1)) // tiles
    return hi - lo


def _pattern_message_counts(
    pattern: CommPattern, n_nodes: int, tiles: int
) -> Tuple[List[int], List[int]]:
    """Per-node ``(sends, recvs)`` message counts for one section's
    closing communication, per iteration.

    Every pattern's schedule is data-independent, so the counts are a
    pure function of ``(pattern, P, tiles)``.  The reduction replays the
    binomial reduce-to-0 + broadcast schedule of
    :meth:`SectionTimeline._reduce_broadcast` (counting posts instead of
    advancing clocks); the others have closed forms.  Used by the
    telemetry phase breakdown to charge ``send_overhead``/
    ``recv_overhead`` seconds to the node that pays them.
    """
    P = n_nodes
    sends = [0] * P
    recvs = [0] * P
    if P <= 1 or pattern is CommPattern.NONE:
        return sends, recvs
    if pattern is CommPattern.NEAREST_NEIGHBOR:
        for n in range(P):
            neighbours = (1 if n > 0 else 0) + (1 if n < P - 1 else 0)
            sends[n] = neighbours
            recvs[n] = neighbours
        return sends, recvs
    if pattern is CommPattern.PIPELINE:
        for n in range(P):
            if n < P - 1:
                sends[n] = tiles
            if n > 0:
                recvs[n] = tiles
        return sends, recvs
    if pattern is CommPattern.ALLGATHER:
        for n in range(P):
            sends[n] = P - 1
            recvs[n] = P - 1
        return sends, recvs
    if pattern is CommPattern.REDUCTION:
        exited = [False] * P
        mask = 1
        while mask < P:
            for n in range(P):
                if not exited[n] and (n & mask):
                    sends[n] += 1
                    exited[n] = True
            for n in range(P):
                if not exited[n] and not (n & mask) and (n | mask) < P:
                    recvs[n] += 1
            mask <<= 1
        pot = 1
        while pot < P:
            pot <<= 1
        mask = pot >> 1
        while mask > 0:
            for n in range(P):
                if n % (2 * mask) == 0 and n + mask < P:
                    sends[n] += 1
                elif n % (2 * mask) == mask:
                    recvs[n] += 1
            mask >>= 1
        return sends, recvs
    raise ModelError(f"unknown communication pattern: {pattern}")


@dataclass(frozen=True)
class _SectionTables:
    """Precomputed per-section evaluation tables for one distribution.

    ``tile_totals``/``tile_compute`` are per-node, per-tile stage-time
    tables: nested lists for the scalar kernel, ``(P, tiles)`` float64
    arrays for the numpy kernel (with ``tile_sums`` the per-node section
    totals, precomputed so steady-state walks skip the reduction).
    For the numpy kernel, exactly one of ``matrix``/``advance`` is set:
    ``matrix`` is the section's max-plus matrix
    (:meth:`SectionTimeline.compile_matrix`), which the steady-state
    walk composes with its neighbours into one per-iteration matrix;
    ``advance`` is the compiled replay closure for sections with no
    clock-independent matrix (pipelines).
    """

    section: ParallelSection
    tile_totals: Sequence
    tile_compute: Sequence
    source_read: Sequence
    tile_sums: Optional[np.ndarray] = None
    matrix: Optional[np.ndarray] = None
    advance: Optional[Callable[[np.ndarray], np.ndarray]] = None


class MhetaModel:
    """Predict execution times for candidate distributions.

    Parameters
    ----------
    program, memories, inputs:
        As in the paper: the application structure, the per-node memory
        capacities (or the cluster they come from), and the measured
        internal MHETA file.
    kernel:
        ``"numpy"`` (vectorised, default) or ``"scalar"`` (the reference
        implementation).
    table_cache:
        Bound of the persistent ``(node, rows) -> tables`` LRU shared by
        every prediction this model makes.  ``0`` disables cross-call
        reuse (each :meth:`predict_many` batch still shares a transient
        bounded memo).
    """

    def __init__(
        self,
        program: ProgramStructure,
        memories: Union[ClusterSpec, Sequence[int]],
        inputs: MhetaInputs,
        kernel: str = "numpy",
        table_cache: int = DEFAULT_TABLE_CACHE_ENTRIES,
    ) -> None:
        if isinstance(memories, ClusterSpec):
            memory_list = [n.memory_bytes for n in memories.nodes]
        else:
            memory_list = [int(m) for m in memories]
        if len(memory_list) != inputs.n_nodes:
            raise ModelError(
                "memory capacities and instrumented inputs disagree on the "
                f"node count ({len(memory_list)} vs {inputs.n_nodes})"
            )
        if inputs.program_name != program.name:
            raise ModelError(
                f"inputs were collected for {inputs.program_name!r}, "
                f"not {program.name!r}"
            )
        if kernel not in KERNELS:
            raise ModelError(
                f"unknown kernel {kernel!r}; choose from {KERNELS}"
            )
        if table_cache < 0:
            raise ModelError("table_cache must be >= 0")
        self.program = program
        self.inputs = inputs
        self.kernel = kernel
        self.oracle = OutOfCoreOracle(program, memory_list)
        self.stage_model = StageTimeModel(program, inputs)
        self.timeline = SectionTimeline(inputs.micro, len(memory_list))
        self._tables_cache: Optional[LRUCache] = (
            LRUCache(table_cache) if table_cache > 0 else None
        )
        # Tile-axis layout of the flattened per-node tables the numpy
        # kernel caches: section ``si`` owns columns
        # ``offsets[si]:offsets[si + 1]``.
        tiles = [s.tiles for s in program.sections]
        self._tile_offsets = [0]
        for t in tiles:
            self._tile_offsets.append(self._tile_offsets[-1] + t)
        self._total_tiles = self._tile_offsets[-1]
        # Compiled evaluation plan (kernel="plan"): resolved lazily via
        # ensure_plan / the process-wide plan LRU, dropped on pickling.
        self._plan = None
        self._fingerprint: Optional[str] = None

    @property
    def n_nodes(self) -> int:
        return self.oracle.n_nodes

    @property
    def table_cache_stats(self) -> dict:
        """Hit/miss/eviction counters of the persistent table cache."""
        if self._tables_cache is None:
            return {"size": 0, "maxsize": 0, "hits": 0, "misses": 0,
                    "evictions": 0}
        return self._tables_cache.stats

    # -- compiled evaluation plans ----------------------------------------------

    @property
    def fingerprint(self) -> str:
        """Content hash of the (app structure, cluster shape, kernel
        options) triple — the key under which compiled plans are shared
        process-wide.  Two models with equal fingerprints produce
        identical predictions, so they may share one plan."""
        if self._fingerprint is None:
            p = self.program
            h = hashlib.sha256()
            h.update(
                repr(
                    (
                        p.name,
                        p.n_rows,
                        p.iterations,
                        p.prefetch,
                        tuple(
                            (
                                s.name,
                                s.tiles,
                                repr(s.stages),
                                s.comm.pattern.value,
                                s.comm.message_bytes,
                                s.comm.source_variable,
                            )
                            for s in p.sections
                        ),
                        repr(p.variables),
                        tuple(self.oracle._memory),
                    )
                ).encode()
            )
            if p.row_weights is not None:
                h.update(np.ascontiguousarray(p.row_weights).tobytes())
            if p.iteration_profile is not None:
                h.update(
                    np.ascontiguousarray(p.iteration_profile).tobytes()
                )
            h.update(self.inputs.to_json().encode())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def ensure_plan(self, telemetry: Optional[Recorder] = None):
        """Resolve this model's compiled evaluation plan (a plan-LRU
        hit, or a fresh compile under ``span/plan/compile``).  Public so
        long-lived holders — the serve coordinator's resident models —
        can warm the plan ahead of the first scoring pass."""
        if self._plan is None:
            from repro.core.plan import get_plan

            self._plan = get_plan(self, telemetry=telemetry)
        return self._plan

    def release_plan(self) -> None:
        """Drop this model's compiled plan from the process-wide plan
        LRU (resident-model eviction must not leak plans across cache
        tiers)."""
        if self._plan is not None:
            from repro.core.plan import discard_plan

            discard_plan(self._plan.fingerprint)
            self._plan = None

    def __getstate__(self) -> dict:
        # Plans hold closures and scratch buffers; workers recompile (or
        # hit their own process's plan LRU) lazily after unpickling.
        state = self.__dict__.copy()
        state["_plan"] = None
        return state

    # -- prediction -------------------------------------------------------------

    def predict(
        self,
        distribution,
        iterations: Optional[int] = None,
        *,
        batch=False,
        report: bool = False,
        telemetry: Optional[Recorder] = None,
    ):
        """The consolidated prediction entry point.

        ``predict(dist)``
            predicted total seconds (``float``) — the search hot path.
        ``predict(dist, report=True)``
            full :class:`PredictionReport` with per-node, per-section
            breakdowns.
        ``predict(dists, batch=True)``
            an ``np.ndarray`` scoring a whole candidate population in
            one vectorized pass (``<= 1e-12`` relative vs. the serial
            path).
        ``predict(dists, batch="serial")``
            a ``List[float]`` from the bit-identical serial loop
            (what spectrum sweeps use: exact per-candidate equality
            with single calls, tables shared through the LRU).

        ``telemetry`` takes a :class:`repro.obs.Recorder`; with
        ``report=True`` it additionally records the per-node phase
        breakdown (comp / sync-I/O / prefetch-I/O / send+recv overhead /
        blocked) whose components sum exactly to each node's predicted
        total.  ``telemetry=None`` (default) costs one truthiness check.
        """
        if batch:
            if report:
                raise ModelError(
                    "report=True is only available for single predictions"
                )
            dists = list(distribution)
            if batch == "serial":
                if telemetry:
                    telemetry.count("model/serial_batches")
                    telemetry.observe("model/serial_batch_size", len(dists))
                transient = (
                    LRUCache(DEFAULT_TABLE_CACHE_ENTRIES)
                    if self._tables_cache is None
                    else None
                )
                out = [
                    self._predict(
                        d, iterations, want_report=False,
                        table_cache=transient,
                    )
                    for d in dists
                ]
                if telemetry:
                    self._record_cache_gauges(telemetry)
                    telemetry.count("model/predictions", len(dists))
                return out
            out = self._predict_batch(dists, iterations, telemetry=telemetry)
            if telemetry:
                telemetry.count("model/batch_predictions")
                telemetry.observe("model/batch_size", len(dists))
                telemetry.count("model/predictions", len(dists))
                self._record_cache_gauges(telemetry)
            return out
        result = self._predict(
            distribution, iterations, want_report=report, telemetry=telemetry
        )
        if telemetry:
            telemetry.count("model/predictions")
            self._record_cache_gauges(telemetry)
        return result

    # -- deprecated aliases (thin shims; each warns once per process) --------

    def predict_seconds(
        self,
        distribution: GenBlock,
        iterations: Optional[int] = None,
    ) -> float:
        """Deprecated alias for :meth:`predict`."""
        warn_once(
            "MhetaModel.predict_seconds", "MhetaModel.predict(distribution)"
        )
        return self.predict(distribution, iterations)

    def predict_many(
        self,
        distributions: Sequence[GenBlock],
        iterations: Optional[int] = None,
    ) -> List[float]:
        """Deprecated alias for ``predict(dists, batch="serial")``."""
        warn_once(
            "MhetaModel.predict_many",
            'MhetaModel.predict(distributions, batch="serial")',
        )
        return self.predict(distributions, iterations, batch="serial")

    def predict_seconds_batch(
        self,
        distributions: Sequence[GenBlock],
        iterations: Optional[int] = None,
    ) -> np.ndarray:
        """Deprecated alias for ``predict(dists, batch=True)``."""
        warn_once(
            "MhetaModel.predict_seconds_batch",
            "MhetaModel.predict(distributions, batch=True)",
        )
        return self.predict(distributions, iterations, batch=True)

    def _record_cache_gauges(self, rec: Recorder) -> None:
        stats = self.table_cache_stats
        rec.set("model/table_cache/size", stats["size"])
        rec.set("model/table_cache/hits", stats["hits"])
        rec.set("model/table_cache/misses", stats["misses"])
        rec.set("model/table_cache/evictions", stats["evictions"])
        if self.kernel == "plan":
            from repro.core.plan import plan_cache_stats

            pstats = plan_cache_stats()
            rec.set("model/plan_cache/size", pstats["size"])
            rec.set("model/plan_cache/hits", pstats["hits"])
            rec.set("model/plan_cache/misses", pstats["misses"])
            rec.set("model/plan_cache/compiles", pstats["compiles"])
            rec.set(
                "model/plan_cache/compile_seconds",
                pstats["compile_seconds"],
            )

    def _batch_counts(self, dists: Sequence[GenBlock]) -> np.ndarray:
        """Stack and validate candidate row counts as ``(B, P)`` int64.

        Validation is vectorized (one shape check, one row-sum check);
        only on failure does it fall back to the per-candidate loop, so
        the error messages match the sequential path exactly."""
        P = self.n_nodes

        def _validate_loop() -> None:
            for d in dists:
                if d.n_nodes != P:
                    raise ModelError(
                        "distribution does not match the model's nodes"
                    )
                if d.n_rows != self.program.n_rows:
                    raise ModelError(
                        "distribution does not cover the program's rows"
                    )

        n_rows = self.program.n_rows
        counts = np.empty((len(dists), P), dtype=np.int64)
        try:
            # Row-assigning each candidate's cached int64 mirror is the
            # cheapest exact stacking; the explicit length check (a
            # length-1 array would broadcast silently) and the cached
            # row total validate each candidate in-loop.  Any mismatch
            # or a foreign distribution type falls back to the loop
            # whose messages match the sequential path.
            for i, d in enumerate(dists):
                mirror = d.counts_np
                if len(mirror) != P or d._n_rows != n_rows:
                    raise ValueError
                counts[i] = mirror
            return counts
        except (ValueError, TypeError, AttributeError):
            pass
        _validate_loop()
        return np.array([d.counts for d in dists], dtype=np.int64)

    def _predict_batch(
        self,
        distributions: Sequence[GenBlock],
        iterations: Optional[int] = None,
        telemetry: Optional[Recorder] = None,
    ) -> np.ndarray:
        """Score a whole candidate population in one vectorized pass.

        The candidates' GEN_BLOCK row counts stack into a ``(B, P)``
        matrix; each distinct ``(node, rows)`` pair across the *whole
        batch* is looked up (or built) in the shared table LRU exactly
        once; and the numpy kernel — stage-table assembly, max-plus
        section matrices and their composition, the steady-state clock
        walk — evaluates every section over the candidate axis in a
        single array pass instead of once per candidate.  Candidates
        never mix (no reduction crosses the batch axis), so entry ``b``
        agrees with ``predict_seconds(distributions[b])`` to within the
        kernel contract (<= 1e-12 relative; pinned by
        ``tests/test_batch_equivalence.py``).

        ``kernel="scalar"`` models fall back to a loop of scalar
        predictions, preserving the golden-equivalence contract
        bit-for-bit; iteration-profile programs (no steady state to
        extrapolate) loop the per-candidate numpy walk.
        """
        dists = list(distributions)
        if not dists:
            return np.empty(0)
        P = self.n_nodes
        if (
            self.kernel == "plan"
            and self.program.iteration_profile is None
        ):
            counts = self._batch_counts(dists)
            n_iter = (
                iterations
                if iterations is not None
                else self.program.iterations
            )
            plan = self._plan
            if plan is None:
                plan = self.ensure_plan(telemetry)
            return plan.execute(counts, n_iter)
        for d in dists:
            if d.n_nodes != P:
                raise ModelError(
                    "distribution does not match the model's nodes"
                )
            if d.n_rows != self.program.n_rows:
                raise ModelError(
                    "distribution does not cover the program's rows"
                )
        if (
            self.kernel != "numpy"
            or self.program.iteration_profile is not None
        ):
            return np.array(
                [
                    self._predict(d, iterations, want_report=False)
                    for d in dists
                ]
            )
        n_iter = (
            iterations if iterations is not None else self.program.iterations
        )
        B = len(dists)
        counts = np.array([d.counts for d in dists], dtype=np.int64)
        cache = self._tables_cache
        if cache is None:
            # Same transient-bound policy as predict_many: the batch
            # shares tables without growing memory past the default cap.
            cache = LRUCache(DEFAULT_TABLE_CACHE_ENTRIES)
        sections = self.program.sections
        all_totals = np.empty((B, P, self._total_tiles))
        all_source = np.empty((B, P, len(sections)))
        for n in range(P):
            uniq, inverse = np.unique(counts[:, n], return_inverse=True)
            node_totals = np.empty((len(uniq), self._total_tiles))
            node_source = np.empty((len(uniq), len(sections)))
            for u, rows in enumerate(uniq):
                rows = int(rows)
                entry = cache.get((n, rows))
                if entry is None:
                    entry = self._node_tables_numpy(
                        n, rows, self.oracle.plan(n, rows)
                    )
                    cache.put((n, rows), entry)
                node_totals[u] = entry[0]
                node_source[u] = entry[2]
            all_totals[:, n, :] = node_totals[inverse]
            all_source[:, n, :] = node_source[inverse]

        timeline = self.timeline
        offsets = self._tile_offsets

        def matrix_op(A: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
            return lambda clocks: (A + clocks[:, None, :]).max(axis=2)

        ops: List[Callable[[np.ndarray], np.ndarray]] = []
        pending: Optional[np.ndarray] = None
        for si, section in enumerate(sections):
            lo, hi = offsets[si], offsets[si + 1]
            tile_totals = all_totals[:, :, lo:hi]
            tile_sums = (
                tile_totals[:, :, 0]
                if hi - lo == 1
                else tile_totals.sum(axis=2)
            )
            matrix = timeline.compile_matrix_batch(
                section.comm.pattern,
                section.comm.message_bytes,
                all_source[:, :, si],
                tile_sums,
            )
            if matrix is not None:
                pending = (
                    matrix
                    if pending is None
                    else maxplus_compose_batch(matrix, pending)
                )
            else:
                if pending is not None:
                    ops.append(matrix_op(pending))
                    pending = None
                ops.append(
                    timeline.compile_advance_batch(
                        section.comm.pattern,
                        tile_totals,
                        section.comm.message_bytes,
                    )
                )
        if pending is not None:
            ops.append(matrix_op(pending))
        totals = self._steady_walk_batch(ops, n_iter, B)
        return totals.max(axis=1)

    def _steady_walk_batch(
        self,
        ops: List[Callable[[np.ndarray], np.ndarray]],
        n_iter: int,
        batch: int,
    ) -> np.ndarray:
        """Batched :meth:`_steady_walk`: ``(B, P)`` clocks advance
        through the fused per-iteration ops together, but each candidate
        converges *individually* — the moment candidate ``b``'s
        increment vector repeats (the scalar walk's convergence rule,
        same tolerances), its extrapolated totals are frozen while the
        rest keep walking.  Frozen rows keep advancing numerically
        (max-plus ops are stable) but their recorded result no longer
        changes, so per-candidate results match the sequential walk."""
        P = self.n_nodes
        clocks = np.zeros((batch, P))
        totals = np.empty((batch, P))
        active = np.ones(batch, dtype=bool)
        second_last: Optional[np.ndarray] = None
        last: Optional[np.ndarray] = None
        prev_steady: Optional[np.ndarray] = None
        simulate = 0
        while simulate < n_iter:
            for op in ops:
                clocks = op(clocks)
            second_last, last = last, clocks
            simulate += 1
            if second_last is not None:
                steady_now = last - second_last
                if prev_steady is not None:
                    converged = (
                        np.abs(steady_now - prev_steady)
                        <= 1e-12 + 1e-9 * np.abs(prev_steady)
                    ).all(axis=1)
                    newly = active & converged
                    if newly.any():
                        totals[newly] = (
                            last[newly]
                            + steady_now[newly] * (n_iter - simulate)
                        )
                        active[newly] = False
                        if not active.any():
                            return totals
                prev_steady = steady_now
        # Walked every iteration without (all candidates) converging:
        # the remaining rows' totals are simply their final clocks.
        totals[active] = last[active]
        return totals

    # -- table construction -----------------------------------------------------

    def _source_read(self, n: int, section: ParallelSection, plan) -> float:
        """Disk read charged for materialising one outgoing message."""
        src = section.comm.source_variable
        if (
            src is not None
            and section.comm.pattern is CommPattern.NEAREST_NEIGHBOR
        ):
            placement = plan.placements.get(src)
            if placement is not None and not placement.in_core:
                return self.stage_model.read_block_seconds(
                    n, src, section.comm.message_bytes
                )
        return 0.0

    def _node_tables(self, n: int, rows: int, plan):
        """Per section, for one node: tile stage-times (total and
        compute-only) plus the message source-read cost — scalar
        reference path."""
        out = []
        for section in self.program.sections:
            totals: List[float] = []
            computes: List[float] = []
            for tile in range(section.tiles):
                trows = _tile_rows(rows, section.tiles, tile)
                c_sum = 0.0
                t_sum = 0.0
                for stage in section.stages:
                    st = self.stage_model.tile_stage_times(
                        n, rows, section, stage, trows, plan
                    )
                    c_sum += st.compute_seconds
                    t_sum += st.total
                totals.append(t_sum)
                computes.append(c_sum)
            out.append((totals, computes, self._source_read(n, section, plan)))
        return out

    def _node_tables_numpy(self, n: int, rows: int, plan):
        """Vectorised counterpart of :meth:`_node_tables`: one array
        kernel call per section instead of tiles x stages Python loops.
        Sections are packed along one flat tile axis (layout in
        ``self._tile_offsets``) so assembling a distribution's ``(P,
        tiles)`` tables costs one row copy per node.

        Single-tile sections go through the scalar per-stage
        accumulation: the closed-form array kernel only amortises its
        call overhead across many tiles, and the scalar path is exact
        against the reference by construction.
        """
        totals = np.empty(self._total_tiles)
        computes = np.empty(self._total_tiles)
        source_read = np.empty(len(self.program.sections))
        for si, section in enumerate(self.program.sections):
            lo, hi = self._tile_offsets[si], self._tile_offsets[si + 1]
            if section.tiles == 1:
                c_sum = 0.0
                t_sum = 0.0
                for stage in section.stages:
                    st = self.stage_model.tile_stage_times(
                        n, rows, section, stage, rows, plan
                    )
                    c_sum += st.compute_seconds
                    t_sum += st.total
                totals[lo] = t_sum
                computes[lo] = c_sum
            else:
                t, c = self.stage_model.section_tile_times(
                    n, rows, section, plan
                )
                totals[lo:hi] = t
                computes[lo:hi] = c
            source_read[si] = self._source_read(n, section, plan)
        # Cached entries are shared across predictions; freeze them.
        totals.setflags(write=False)
        computes.setflags(write=False)
        source_read.setflags(write=False)
        return (totals, computes, source_read)

    def _section_tables(
        self,
        distribution: GenBlock,
        table_cache: Optional[LRUCache] = None,
    ) -> List[_SectionTables]:
        """Precompute, per section: tile stage-times (split by compute
        and I/O) and per-node message source-read costs.  These are the
        same for every iteration, so the iteration loop only replays the
        communication timeline.  Per-``(node, rows)`` work is memoised
        in the model's bounded LRU (or the explicit ``table_cache``
        override), shared across every prediction."""
        P = self.n_nodes
        cache = table_cache if table_cache is not None else self._tables_cache
        build = (
            self._node_tables
            if self.kernel == "scalar"
            else self._node_tables_numpy
        )
        counts = distribution.counts
        per_node = []
        for n in range(P):
            rows = counts[n]
            if cache is None:
                per_node.append(build(n, rows, self.oracle.plan(n, rows)))
            else:
                key = (n, rows)
                entry = cache.get(key)
                if entry is None:
                    entry = build(n, rows, self.oracle.plan(n, rows))
                    cache.put(key, entry)
                per_node.append(entry)
        tables = []
        if self.kernel != "scalar":
            # One row copy per node into the flat (P, total_tiles)
            # tables, then per-section column views — no re-stacking.
            all_totals = np.empty((P, self._total_tiles))
            all_compute = np.empty((P, self._total_tiles))
            all_source = np.empty((P, len(self.program.sections)))
            for n in range(P):
                entry = per_node[n]
                all_totals[n] = entry[0]
                all_compute[n] = entry[1]
                all_source[n] = entry[2]
            for si, section in enumerate(self.program.sections):
                lo, hi = self._tile_offsets[si], self._tile_offsets[si + 1]
                tile_totals = all_totals[:, lo:hi]
                tile_compute = all_compute[:, lo:hi]
                source_read = all_source[:, si]
                tile_sums = (
                    tile_totals[:, 0]
                    if hi - lo == 1
                    else tile_totals.sum(axis=1)
                )
                matrix = self.timeline.compile_matrix(
                    section.comm.pattern,
                    tile_totals,
                    section.comm.message_bytes,
                    source_read,
                    tile_sums,
                )
                advance = (
                    None
                    if matrix is not None
                    else self.timeline.compile_advance(
                        section.comm.pattern,
                        tile_totals,
                        section.comm.message_bytes,
                        source_read,
                        tile_sums,
                    )
                )
                tables.append(
                    _SectionTables(
                        section=section,
                        tile_totals=tile_totals,
                        tile_compute=tile_compute,
                        source_read=source_read,
                        tile_sums=tile_sums,
                        matrix=matrix,
                        advance=advance,
                    )
                )
            return tables
        for si, section in enumerate(self.program.sections):
            tables.append(
                _SectionTables(
                    section=section,
                    tile_totals=[per_node[n][si][0] for n in range(P)],
                    tile_compute=[per_node[n][si][1] for n in range(P)],
                    source_read=[per_node[n][si][2] for n in range(P)],
                )
            )
        return tables

    # -- iteration walks --------------------------------------------------------

    def _walk_scalar(
        self, tables: List[_SectionTables], n_iter: int
    ) -> Tuple[List[float], List[float]]:
        """Reference per-node clock walk (plain Python lists)."""
        P = self.n_nodes
        clocks = [0.0] * P
        iter_ends: List[List[float]] = []
        profile = self.program.iteration_profile
        if profile is None:
            # Iterations are identical in cost, but the per-node clocks
            # need a few iterations for their wait pattern to settle
            # (pipeline fill, neighbour-wait coupling).  Walk iterations
            # until the per-iteration increment vector repeats exactly,
            # then extrapolate the rest linearly; a cycle is guaranteed
            # quickly in practice, and the walk is capped by n_iter.
            prev_steady = None
            simulate = 0
            while simulate < n_iter:
                for t in tables:
                    clocks = self.timeline.advance(
                        t.section.comm.pattern,
                        clocks,
                        t.tile_totals,
                        t.section.comm.message_bytes,
                        t.source_read,
                    )
                iter_ends.append(list(clocks))
                simulate += 1
                if len(iter_ends) >= 2:
                    steady_now = [
                        iter_ends[-1][n] - iter_ends[-2][n] for n in range(P)
                    ]
                    if prev_steady is not None and all(
                        abs(a - b) <= 1e-12 + 1e-9 * abs(b)
                        for a, b in zip(steady_now, prev_steady)
                    ):
                        break
                    prev_steady = steady_now
            if n_iter == 1 or len(iter_ends) < 2:
                totals = iter_ends[0]
                steady = list(iter_ends[0])
            else:
                steady = [
                    iter_ends[-1][n] - iter_ends[-2][n] for n in range(P)
                ]
                totals = [
                    iter_ends[-1][n] + steady[n] * (n_iter - simulate)
                    for n in range(P)
                ]
            return totals, steady
        # Non-uniform iterations (paper Section 3.1's deferred case):
        # the instrumented iteration measured computation at the
        # profile's first multiplier; each later iteration scales its
        # computation share accordingly.  Every iteration is walked
        # explicitly — no steady state exists to extrapolate.
        m0 = self.program.iteration_multiplier(0)
        for it in range(n_iter):
            mult = (
                self.program.iteration_multiplier(it)
                if it < self.program.iterations
                else 1.0
            ) / m0
            for t in tables:
                scaled = [
                    [
                        total + (mult - 1.0) * compute
                        for total, compute in zip(
                            t.tile_totals[n], t.tile_compute[n]
                        )
                    ]
                    for n in range(P)
                ]
                clocks = self.timeline.advance(
                    t.section.comm.pattern,
                    clocks,
                    scaled,
                    t.section.comm.message_bytes,
                    t.source_read,
                )
            iter_ends.append(list(clocks))
        totals = iter_ends[-1]
        if n_iter >= 2:
            steady = [
                iter_ends[-1][n] - iter_ends[-2][n] for n in range(P)
            ]
        else:
            steady = list(iter_ends[0])
        return totals, steady

    @staticmethod
    def _iteration_ops(
        tables: List[_SectionTables],
    ) -> List[Callable[[np.ndarray], np.ndarray]]:
        """Fuse one iteration's section advances for the numpy kernel.

        Runs of consecutive max-plus matrices compose into a single
        matrix (:func:`maxplus_compose`), so an all-matrix program —
        any mix of NONE / nearest-neighbour / reduction / allgather
        sections — walks each steady-state iteration with one ``(A +
        clocks).max(axis=1)``.  Pipeline sections stay as their replay
        closures, splitting the composition.
        """

        def matrix_op(A: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
            return lambda clocks: (A + clocks).max(axis=1)

        ops: List[Callable[[np.ndarray], np.ndarray]] = []
        pending: Optional[np.ndarray] = None
        for t in tables:
            if t.matrix is not None:
                pending = (
                    t.matrix
                    if pending is None
                    else maxplus_compose(t.matrix, pending)
                )
            else:
                if pending is not None:
                    ops.append(matrix_op(pending))
                    pending = None
                ops.append(t.advance)
        if pending is not None:
            ops.append(matrix_op(pending))
        return ops

    def _steady_walk(
        self,
        ops: List[Callable[[np.ndarray], np.ndarray]],
        n_iter: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Iterate the fused per-iteration ops until the increment
        vector repeats (same convergence rule as the scalar walk), then
        extrapolate linearly.  Only the last two clock vectors are
        retained; the increment comparison runs on Python floats —
        cheaper than array ops at typical node counts.  Returns
        ``(totals, steady)``."""
        clocks = np.zeros(self.n_nodes)
        second_last: Optional[np.ndarray] = None
        last: Optional[np.ndarray] = None
        prev_steady: Optional[List[float]] = None
        steady_now: Optional[np.ndarray] = None
        simulate = 0
        while simulate < n_iter:
            for op in ops:
                clocks = op(clocks)
            second_last, last = last, clocks
            simulate += 1
            if second_last is not None:
                steady_now = last - second_last
                steady_list = steady_now.tolist()
                if prev_steady is not None:
                    for a, b in zip(steady_list, prev_steady):
                        if abs(a - b) > 1e-12 + 1e-9 * abs(b):
                            break
                    else:
                        break
                prev_steady = steady_list
        if n_iter == 1 or second_last is None:
            return last, last
        totals = last + steady_now * (n_iter - simulate)
        return totals, steady_now

    def _predict_seconds_lean(
        self,
        distribution: GenBlock,
        n_iter: int,
        table_cache: Optional[LRUCache],
    ) -> float:
        """The search hot path: numpy kernel, scalar result, steady
        iterations.  Builds the fused iteration ops straight from the
        per-``(node, rows)`` cache entries — no compute-share tables,
        no per-section report structures."""
        P = self.n_nodes
        cache = table_cache if table_cache is not None else self._tables_cache
        counts = distribution.counts
        if cache is None:
            per_node = [
                self._node_tables_numpy(
                    n, counts[n], self.oracle.plan(n, counts[n])
                )
                for n in range(P)
            ]
        else:
            per_node = cache.get_many(
                [(n, counts[n]) for n in range(P)]
            )
            for n, entry in enumerate(per_node):
                if entry is None:
                    entry = self._node_tables_numpy(
                        n, counts[n], self.oracle.plan(n, counts[n])
                    )
                    cache.put((n, counts[n]), entry)
                    per_node[n] = entry
        sections = self.program.sections
        all_totals = np.empty((P, self._total_tiles))
        all_source = np.empty((P, len(sections)))
        for n in range(P):
            entry = per_node[n]
            all_totals[n] = entry[0]
            all_source[n] = entry[2]
        timeline = self.timeline
        offsets = self._tile_offsets

        def matrix_op(A: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
            return lambda clocks: (A + clocks).max(axis=1)

        ops: List[Callable[[np.ndarray], np.ndarray]] = []
        pending: Optional[np.ndarray] = None
        for si, section in enumerate(sections):
            lo, hi = offsets[si], offsets[si + 1]
            tile_totals = all_totals[:, lo:hi]
            tile_sums = (
                tile_totals[:, 0] if hi - lo == 1 else tile_totals.sum(axis=1)
            )
            matrix = timeline.compile_matrix(
                section.comm.pattern,
                tile_totals,
                section.comm.message_bytes,
                all_source[:, si],
                tile_sums,
            )
            if matrix is not None:
                pending = (
                    matrix
                    if pending is None
                    else maxplus_compose(matrix, pending)
                )
            else:
                if pending is not None:
                    ops.append(matrix_op(pending))
                    pending = None
                ops.append(
                    timeline.compile_advance(
                        section.comm.pattern,
                        tile_totals,
                        section.comm.message_bytes,
                        all_source[:, si],
                        tile_sums,
                    )
                )
        if pending is not None:
            ops.append(matrix_op(pending))
        totals, _ = self._steady_walk(ops, n_iter)
        return float(totals.max())

    def _walk_arrays(
        self, tables: List[_SectionTables], n_iter: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised clock walk: same control flow as
        :meth:`_walk_scalar`, per-node arithmetic on float64 arrays."""
        clocks = np.zeros(self.n_nodes)
        iter_ends: List[np.ndarray] = []
        profile = self.program.iteration_profile
        if profile is None:
            return self._steady_walk(self._iteration_ops(tables), n_iter)
        m0 = self.program.iteration_multiplier(0)
        for it in range(n_iter):
            mult = (
                self.program.iteration_multiplier(it)
                if it < self.program.iterations
                else 1.0
            ) / m0
            for t in tables:
                scaled = t.tile_totals + (mult - 1.0) * t.tile_compute
                clocks = self.timeline.advance_arrays(
                    t.section.comm.pattern,
                    clocks,
                    scaled,
                    t.section.comm.message_bytes,
                    t.source_read,
                )
            iter_ends.append(clocks)
        totals = iter_ends[-1]
        steady = (
            iter_ends[-1] - iter_ends[-2] if n_iter >= 2 else iter_ends[0]
        )
        return totals, steady

    # -- assembly ---------------------------------------------------------------

    @staticmethod
    def _row_sum(row) -> float:
        """Sum one node's per-tile table (list or ndarray)."""
        if isinstance(row, np.ndarray):
            return float(row.sum())
        return sum(row)

    def _predict(
        self,
        distribution: GenBlock,
        iterations: Optional[int],
        want_report: bool,
        table_cache: Optional[LRUCache] = None,
        telemetry: Optional[Recorder] = None,
    ):
        if distribution.n_nodes != self.n_nodes:
            raise ModelError("distribution does not match the model's nodes")
        if distribution.n_rows != self.program.n_rows:
            raise ModelError("distribution does not cover the program's rows")
        n_iter = (
            iterations if iterations is not None else self.program.iterations
        )
        if not want_report and self.program.iteration_profile is None:
            if self.kernel == "numpy":
                return self._predict_seconds_lean(
                    distribution, n_iter, table_cache
                )
            if self.kernel == "plan":
                plan = self._plan
                if plan is None:
                    plan = self.ensure_plan(telemetry)
                counts = np.array([distribution.counts], dtype=np.int64)
                return float(plan.execute(counts, n_iter)[0])
        P = self.n_nodes
        tables = self._section_tables(distribution, table_cache)

        if self.kernel != "scalar":
            totals, steady = self._walk_arrays(tables, n_iter)
            if not want_report:
                return float(totals.max())
        else:
            totals, steady = self._walk_scalar(tables, n_iter)
            if not want_report:
                return max(totals)

        nodes = []
        for n in range(P):
            sections = []
            for t in tables:
                compute = self._row_sum(t.tile_compute[n])
                io = self._row_sum(t.tile_totals[n]) - compute
                sections.append(
                    SectionBreakdown(
                        section=t.section.name,
                        compute_seconds=compute,
                        io_seconds=io,
                        comm_seconds=0.0,  # filled below
                    )
                )
            local = sum(s.compute_seconds + s.io_seconds for s in sections)
            # Attribute the communication residual to the sections that
            # actually communicate, proportionally to their messages.
            # The residual can dip below zero when the steady-state
            # iteration is cheaper than the summed local work (overlap);
            # a negative "communication time" is meaningless, so clamp.
            comm = max(float(steady[n]) - local, 0.0)
            comm_specs = [
                t.section.comm
                for t in tables
                if t.section.comm.pattern is not CommPattern.NONE
            ]
            total_bytes = sum(c.message_bytes for c in comm_specs)
            final_sections = []
            for s, t in zip(sections, tables):
                if t.section.comm.pattern is CommPattern.NONE:
                    share = 0.0
                elif total_bytes > 0:
                    share = comm * t.section.comm.message_bytes / total_bytes
                else:
                    # Zero-byte messages still synchronise; split evenly.
                    share = comm / len(comm_specs)
                final_sections.append(
                    SectionBreakdown(
                        section=s.section,
                        compute_seconds=s.compute_seconds,
                        io_seconds=s.io_seconds,
                        comm_seconds=share,
                    )
                )
            nodes.append(
                NodePrediction(
                    node=n,
                    iteration_seconds=float(steady[n]),
                    total_seconds=float(totals[n]),
                    sections=tuple(final_sections),
                )
            )
        if telemetry:
            self._record_phases(
                telemetry, distribution, tables, totals, steady, n_iter
            )
        return PredictionReport(
            program_name=self.program.name,
            distribution=distribution,
            iterations=n_iter,
            nodes=tuple(nodes),
        )

    # -- telemetry phase breakdown ----------------------------------------------

    def _record_phases(
        self,
        rec: Recorder,
        distribution: GenBlock,
        tables: List[_SectionTables],
        totals,
        steady,
        n_iter: int,
    ) -> None:
        """Record the per-node phase decomposition of a prediction.

        Five phases per node, over the whole ``n_iter``-iteration run:

        ``comp``
            measured computation, rescaled (Section 4.2.1) and summed
            over the iteration-profile multipliers when one exists;
        ``io_sync`` / ``io_prefetch``
            the Equation-1 vs. Equation-2 shares of the stage tables'
            I/O, plus the disk reads that materialise outgoing
            neighbour-exchange messages (sync, Equation 3's ``source
            read`` term);
        ``comm_overhead``
            per-message ``send_overhead``/``recv_overhead`` seconds
            charged to the node that pays them (message counts are a
            pure function of the section patterns);
        ``blocked``
            everything else — the residual of the node's predicted
            total clock, i.e. time spent waiting on neighbours,
            collectives, and pipeline fills.

        ``blocked`` is *defined* as the residual, so the five phases
        sum to the node's predicted total exactly (to float rounding),
        which is what the ``repro stats`` acceptance gate checks.
        """
        P = self.n_nodes
        micro = self.inputs.micro
        counts = distribution.counts
        sections = self.program.sections
        profile = self.program.iteration_profile
        if profile is None:
            comp_scale = float(n_iter)
        else:
            m0 = self.program.iteration_multiplier(0)
            comp_scale = sum(
                (
                    self.program.iteration_multiplier(it)
                    if it < self.program.iterations
                    else 1.0
                )
                / m0
                for it in range(n_iter)
            )
        sec_counts = [
            _pattern_message_counts(s.comm.pattern, P, s.tiles)
            for s in sections
        ]
        agg = {
            "comp": 0.0, "io_sync": 0.0, "io_prefetch": 0.0,
            "comm_overhead": 0.0, "blocked": 0.0, "total": 0.0,
        }
        bottleneck = 0
        for n in range(P):
            comp_iter = sum(self._row_sum(t.tile_compute[n]) for t in tables)
            local_iter = sum(self._row_sum(t.tile_totals[n]) for t in tables)
            io_iter = local_iter - comp_iter
            plan = self.oracle.plan(n, counts[n])
            prefetch_iter = sum(
                self.stage_model.node_prefetch_io_seconds(
                    n, counts[n], s, plan
                )
                for s in sections
            )
            sync_iter = io_iter - prefetch_iter
            sends = 0
            recvs = 0
            source_iter = 0.0
            for (sec_sends, sec_recvs), t in zip(sec_counts, tables):
                sends += sec_sends[n]
                recvs += sec_recvs[n]
                if t.section.comm.pattern is CommPattern.NEAREST_NEIGHBOR:
                    source_iter += sec_sends[n] * float(t.source_read[n])
            overhead_iter = (
                sends * micro.send_overhead + recvs * micro.recv_overhead
            )
            comp_total = comp_iter * comp_scale
            sync_total = sync_iter * n_iter + source_iter * n_iter
            prefetch_total = prefetch_iter * n_iter
            overhead_total = overhead_iter * n_iter
            node_total = float(totals[n])
            blocked = (
                node_total
                - comp_total
                - sync_total
                - prefetch_total
                - overhead_total
            )
            phases = {
                "comp": comp_total,
                "io_sync": sync_total,
                "io_prefetch": prefetch_total,
                "comm_overhead": overhead_total,
                "blocked": blocked,
                "total": node_total,
            }
            for name, value in phases.items():
                rec.set(f"model/phase/node{n}/{name}", value)
                agg[name] += value
            rec.count(f"model/messages/node{n}/sends", sends * n_iter)
            rec.count(f"model/messages/node{n}/recvs", recvs * n_iter)
            if node_total > float(totals[bottleneck]):
                bottleneck = n
        # Top-level gauges describe the bottleneck node — its clock *is*
        # the predicted application time — plus all-node phase sums.
        for name in ("comp", "io_sync", "io_prefetch", "comm_overhead",
                     "blocked", "total"):
            rec.set(
                f"model/phase/{name}",
                rec.gauges[f"model/phase/node{bottleneck}/{name}"],
            )
            rec.set(f"model/phase/allnodes/{name}", agg[name])
        rec.set("model/phase/bottleneck_node", bottleneck)
        rec.set("model/phase/iterations", n_iter)
        rec.set(
            "model/phase/steady_iteration_seconds",
            float(steady[bottleneck]),
        )
