"""Analytical communication timelines (Equations 3-5, generalised).

The paper derives, for two nodes, the blocked time ``w(i, m)`` of a
nearest-neighbour exchange (Equation 3) and the per-tile pipeline wait
``w(i, m, t)`` (Equation 4), combining them with send/receive overheads
into the section communication cost (Equation 5); reductions and the
n-node generalisations live in the dissertation [25].

:class:`SectionTimeline` evaluates those generalisations directly as
max-plus recurrences over per-node timestamps — the exact analytical
mirror of the runtime's message schedule (sends posted in neighbour
order, binomial reduce + broadcast, ring allgather).  For two nodes the
recurrences collapse to the printed equations; the unit tests verify
both that collapse and exact agreement with the discrete-event emulator
when all perturbations are disabled.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ModelError
from repro.instrument.microbench import Microbenchmarks
from repro.program.sections import CommPattern

__all__ = ["SectionTimeline", "nearest_neighbor_wait", "pipeline_waits"]


def nearest_neighbor_wait(
    own_ready: float, sender_done: float, transfer: float
) -> float:
    """Paper Equation 3 for one message: the receiver blocks only if it
    is ready before the message arrives.

    ``own_ready`` — when the receiver finished its stages and its own
    send; ``sender_done`` — when the sender finished posting the message
    (stages + its send overhead); ``transfer`` — in-flight time ``X(m)``.
    """
    return max(0.0, sender_done + transfer - own_ready)


def pipeline_waits(
    sender_tile_seconds: Sequence[float],
    receiver_tile_seconds: Sequence[float],
    send_overhead: float,
    recv_overhead: float,
    transfer: float,
) -> List[float]:
    """Paper Equation 4: per-tile blocked times of the downstream node in
    a two-node pipeline.  The upstream node never blocks.

    Tile ``t``'s message is en route once the sender finishes tiles
    ``1..t`` (each costing its stage time plus the send overhead); the
    receiver is ready once it has waited for, received, and processed
    tiles ``1..t-1``.
    """
    if len(sender_tile_seconds) != len(receiver_tile_seconds):
        raise ModelError("pipeline tile counts differ between nodes")
    waits: List[float] = []
    sender_clock = 0.0
    receiver_clock = 0.0
    for t, (ts_send, ts_recv) in enumerate(
        zip(sender_tile_seconds, receiver_tile_seconds)
    ):
        sender_clock += ts_send + send_overhead
        arrival = sender_clock + transfer
        wait = max(0.0, arrival - receiver_clock)
        waits.append(wait)
        receiver_clock += wait + recv_overhead + ts_recv
    return waits


class SectionTimeline:
    """Advance per-node clocks across one parallel section.

    All methods take ``start`` (per-node clock at section entry) and the
    per-node, per-tile stage times, and return the per-node clock at
    section exit (after the closing communication).
    """

    def __init__(self, micro: Microbenchmarks, n_nodes: int) -> None:
        self._micro = micro
        self.n_nodes = n_nodes

    # -- helpers ------------------------------------------------------------

    def _transfer(self, nbytes: float) -> float:
        return self._micro.transfer_seconds(nbytes)

    # -- patterns ------------------------------------------------------------

    def advance(
        self,
        pattern: CommPattern,
        start: Sequence[float],
        tile_seconds: Sequence[Sequence[float]],
        message_bytes: float,
        source_read_seconds: Sequence[float],
    ) -> List[float]:
        """Dispatch on the communication pattern.

        ``tile_seconds[n][t]`` — node ``n``'s computation+I/O time for
        tile ``t``; ``source_read_seconds[n]`` — the disk read required
        to materialise one outgoing message on node ``n`` (0 when the
        source array is in core or absent).
        """
        if len(start) != self.n_nodes or len(tile_seconds) != self.n_nodes:
            raise ModelError("timeline inputs do not match node count")
        if self.n_nodes == 1 or pattern in (CommPattern.NONE,):
            return [
                s + sum(ts) for s, ts in zip(start, tile_seconds)
            ]
        if pattern is CommPattern.PIPELINE:
            return self._pipeline(start, tile_seconds, message_bytes)
        stage_end = [s + sum(ts) for s, ts in zip(start, tile_seconds)]
        if pattern is CommPattern.NEAREST_NEIGHBOR:
            return self._nearest_neighbor(
                stage_end, message_bytes, source_read_seconds
            )
        if pattern is CommPattern.REDUCTION:
            return self._reduce_broadcast(stage_end, message_bytes)
        if pattern is CommPattern.ALLGATHER:
            return self._allgather(stage_end, message_bytes)
        raise ModelError(f"unknown communication pattern: {pattern}")

    def _nearest_neighbor(
        self,
        stage_end: Sequence[float],
        nbytes: float,
        source_read: Sequence[float],
    ) -> List[float]:
        """Boundary exchange: every node posts its sends (left then
        right), then receives (left then right).  Equation 3 semantics,
        exact mirror of the runtime's message schedule."""
        P = self.n_nodes
        os_ = self._micro.send_overhead
        or_ = self._micro.recv_overhead
        x = self._transfer(nbytes)
        deliver: Dict[Tuple[int, int], float] = {}
        ready = [0.0] * P
        for n in range(P):
            t = stage_end[n]
            for nb in (n - 1, n + 1):
                if 0 <= nb < P:
                    t += source_read[n] + os_
                    deliver[(n, nb)] = t + x
            ready[n] = t
        end = list(ready)
        for n in range(P):
            t = ready[n]
            for nb in (n - 1, n + 1):
                if 0 <= nb < P:
                    t = max(t, deliver[(nb, n)]) + or_
            end[n] = t
        return end

    def _pipeline(
        self,
        start: Sequence[float],
        tile_seconds: Sequence[Sequence[float]],
        nbytes: float,
    ) -> List[float]:
        """n-node pipeline: Equation 4's recurrence per tile and node."""
        P = self.n_nodes
        os_ = self._micro.send_overhead
        or_ = self._micro.recv_overhead
        x = self._transfer(nbytes)
        tiles = len(tile_seconds[0])
        for ts in tile_seconds:
            if len(ts) != tiles:
                raise ModelError("nodes disagree on tile count")
        now = list(start)
        deliver: Dict[Tuple[int, int], float] = {}
        for t in range(tiles):
            for n in range(P):
                if n > 0:
                    now[n] = max(now[n], deliver[(n - 1, t)]) + or_
                now[n] += tile_seconds[n][t]
                if n < P - 1:
                    now[n] += os_
                    deliver[(n, t)] = now[n] + x
        return now

    def _reduce_broadcast(
        self, stage_end: Sequence[float], nbytes: float
    ) -> List[float]:
        """Binomial-tree reduce to node 0 followed by binomial broadcast
        (the dissertation's reduction, reconstructed)."""
        P = self.n_nodes
        os_ = self._micro.send_overhead
        or_ = self._micro.recv_overhead
        x = self._transfer(nbytes)
        now = list(stage_end)
        deliver: Dict[Tuple[int, int], float] = {}
        exited = [False] * P
        mask = 1
        while mask < P:
            # Senders at this level post and exit the reduce phase.
            for n in range(P):
                if not exited[n] and (n & mask):
                    now[n] += os_
                    deliver[(n, mask)] = now[n] + x
                    exited[n] = True
            for n in range(P):
                if not exited[n] and not (n & mask):
                    partner = n | mask
                    if partner < P:
                        now[n] = max(now[n], deliver[(partner, mask)]) + or_
            mask <<= 1
        pot = 1
        while pot < P:
            pot <<= 1
        mask = pot >> 1
        while mask > 0:
            for n in range(P):
                if n % (2 * mask) == 0 and n + mask < P:
                    now[n] += os_
                    deliver[(n, -mask)] = now[n] + x
            for n in range(P):
                if n % (2 * mask) == mask:
                    now[n] = max(now[n], deliver[(n - mask, -mask)]) + or_
            mask >>= 1
        return now

    def _allgather(
        self, stage_end: Sequence[float], nbytes: float
    ) -> List[float]:
        """Ring allgather: P-1 lockstep shift steps."""
        P = self.n_nodes
        os_ = self._micro.send_overhead
        or_ = self._micro.recv_overhead
        x = self._transfer(nbytes)
        now = list(stage_end)
        for step in range(P - 1):
            deliver = [0.0] * P
            for n in range(P):
                now[n] += os_
                deliver[n] = now[n] + x
            for n in range(P):
                left = (n - 1) % P
                now[n] = max(now[n], deliver[left]) + or_
        return now
