"""Analytical communication timelines (Equations 3-5, generalised).

The paper derives, for two nodes, the blocked time ``w(i, m)`` of a
nearest-neighbour exchange (Equation 3) and the per-tile pipeline wait
``w(i, m, t)`` (Equation 4), combining them with send/receive overheads
into the section communication cost (Equation 5); reductions and the
n-node generalisations live in the dissertation [25].

:class:`SectionTimeline` evaluates those generalisations directly as
max-plus recurrences over per-node timestamps — the exact analytical
mirror of the runtime's message schedule (sends posted in neighbour
order, binomial reduce + broadcast, ring allgather).  For two nodes the
recurrences collapse to the printed equations; the unit tests verify
both that collapse and exact agreement with the discrete-event emulator
when all perturbations are disabled.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.instrument.microbench import Microbenchmarks
from repro.program.sections import CommPattern

__all__ = [
    "SectionTimeline",
    "maxplus_compose",
    "maxplus_compose_batch",
    "nearest_neighbor_wait",
    "pipeline_waits",
]


def maxplus_compose(outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """Max-plus matrix product ``(outer o inner)[n, j] = max_k(outer[n,
    k] + inner[k, j])``: the matrix of the composed map "apply
    ``inner``, then ``outer``".  Absent edges are ``-inf``."""
    return (outer[:, :, None] + inner[None, :, :]).max(axis=1)


def maxplus_compose_batch(outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """:func:`maxplus_compose` over a leading candidate axis: ``outer``
    and ``inner`` are ``(B, P, P)`` stacks of per-candidate section
    matrices.  The per-candidate arithmetic is element-for-element the
    single-candidate product (additions are elementwise, ``max`` is
    exact), so each slice agrees with composing that candidate alone."""
    return (outer[:, :, :, None] + inner[:, None, :, :]).max(axis=2)


def nearest_neighbor_wait(
    own_ready: float, sender_done: float, transfer: float
) -> float:
    """Paper Equation 3 for one message: the receiver blocks only if it
    is ready before the message arrives.

    ``own_ready`` — when the receiver finished its stages and its own
    send; ``sender_done`` — when the sender finished posting the message
    (stages + its send overhead); ``transfer`` — in-flight time ``X(m)``.
    """
    return max(0.0, sender_done + transfer - own_ready)


def pipeline_waits(
    sender_tile_seconds: Sequence[float],
    receiver_tile_seconds: Sequence[float],
    send_overhead: float,
    recv_overhead: float,
    transfer: float,
) -> List[float]:
    """Paper Equation 4: per-tile blocked times of the downstream node in
    a two-node pipeline.  The upstream node never blocks.

    Tile ``t``'s message is en route once the sender finishes tiles
    ``1..t`` (each costing its stage time plus the send overhead); the
    receiver is ready once it has waited for, received, and processed
    tiles ``1..t-1``.
    """
    if len(sender_tile_seconds) != len(receiver_tile_seconds):
        raise ModelError("pipeline tile counts differ between nodes")
    waits: List[float] = []
    sender_clock = 0.0
    receiver_clock = 0.0
    for t, (ts_send, ts_recv) in enumerate(
        zip(sender_tile_seconds, receiver_tile_seconds)
    ):
        sender_clock += ts_send + send_overhead
        arrival = sender_clock + transfer
        wait = max(0.0, arrival - receiver_clock)
        waits.append(wait)
        receiver_clock += wait + recv_overhead + ts_recv
    return waits


class SectionTimeline:
    """Advance per-node clocks across one parallel section.

    All methods take ``start`` (per-node clock at section entry) and the
    per-node, per-tile stage times, and return the per-node clock at
    section exit (after the closing communication).
    """

    def __init__(self, micro: Microbenchmarks, n_nodes: int) -> None:
        self._micro = micro
        self.n_nodes = n_nodes
        # Interior nodes of the 1-D neighbour chain post two messages
        # (left then right); the ends post one.
        extra = np.zeros(n_nodes)
        extra[1:-1] = 1.0
        self._nn_extra_posts = extra
        self._nn_post_mult = 1.0 + extra
        or_ = micro.recv_overhead
        or1 = np.full(n_nodes, or_)
        or1[0] = 0.0  # no left neighbour to receive from
        or2 = np.full(n_nodes, or_)
        or2[-1] = 0.0  # no right neighbour to receive from
        self._nn_or12 = or1 + or2
        self._nn_or2_tail = or_ + or2[1:]
        self._idx = np.arange(n_nodes)
        # -inf-filled template and flat band positions (diagonal,
        # sub-diagonal, super-diagonal) for building tridiagonal
        # matrices with one copy and one scatter.
        self._tri_template = np.full((n_nodes, n_nodes), -np.inf)
        idx = self._idx
        self._tri_flat = np.concatenate(
            (
                idx * n_nodes + idx,
                idx[1:] * n_nodes + idx[:-1],
                idx[:-1] * n_nodes + idx[1:],
            )
        )
        # Collective schedules are data-independent, so each collective
        # is a max-plus linear map of the clocks; its P x P matrix is
        # extracted once per (pattern, message size) and cached here.
        # The key set is tiny: one entry per distinct communicating
        # section of the program.
        self._maxplus: Dict[Tuple[CommPattern, float], np.ndarray] = {}

    # -- helpers ------------------------------------------------------------

    def _transfer(self, nbytes: float) -> float:
        return self._micro.transfer_seconds(nbytes)

    # -- patterns ------------------------------------------------------------

    def advance(
        self,
        pattern: CommPattern,
        start: Sequence[float],
        tile_seconds: Sequence[Sequence[float]],
        message_bytes: float,
        source_read_seconds: Sequence[float],
    ) -> List[float]:
        """Dispatch on the communication pattern.

        ``tile_seconds[n][t]`` — node ``n``'s computation+I/O time for
        tile ``t``; ``source_read_seconds[n]`` — the disk read required
        to materialise one outgoing message on node ``n`` (0 when the
        source array is in core or absent).
        """
        if len(start) != self.n_nodes or len(tile_seconds) != self.n_nodes:
            raise ModelError("timeline inputs do not match node count")
        if self.n_nodes == 1 or pattern in (CommPattern.NONE,):
            return [
                s + sum(ts) for s, ts in zip(start, tile_seconds)
            ]
        if pattern is CommPattern.PIPELINE:
            return self._pipeline(start, tile_seconds, message_bytes)
        stage_end = [s + sum(ts) for s, ts in zip(start, tile_seconds)]
        if pattern is CommPattern.NEAREST_NEIGHBOR:
            return self._nearest_neighbor(
                stage_end, message_bytes, source_read_seconds
            )
        if pattern is CommPattern.REDUCTION:
            return self._reduce_broadcast(stage_end, message_bytes)
        if pattern is CommPattern.ALLGATHER:
            return self._allgather(stage_end, message_bytes)
        raise ModelError(f"unknown communication pattern: {pattern}")

    # -- vectorized patterns (the ``kernel="numpy"`` path) -------------------
    #
    # The array methods mirror the scalar ones max-for-max and
    # overhead-for-overhead; only the association of sums differs (numpy
    # reductions vs left-to-right Python loops), so the two agree to
    # rounding.  ``advance_arrays`` takes and returns ``np.ndarray``
    # clocks; ``tile_sums`` lets the caller pass precomputed per-node
    # section totals so steady-state walks skip the per-iteration
    # reduction entirely.

    def advance_arrays(
        self,
        pattern: CommPattern,
        start: np.ndarray,
        tile_seconds: np.ndarray,
        message_bytes: float,
        source_read: np.ndarray,
        tile_sums: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorised :meth:`advance`: ``tile_seconds`` is a ``(P,
        tiles)`` array, clocks are float64 arrays."""
        if len(start) != self.n_nodes or len(tile_seconds) != self.n_nodes:
            raise ModelError("timeline inputs do not match node count")
        if pattern is CommPattern.PIPELINE:
            return self._pipeline_arrays(start, tile_seconds, message_bytes)
        if tile_sums is None:
            tile_sums = tile_seconds.sum(axis=1)
        stage_end = start + tile_sums
        if self.n_nodes == 1 or pattern is CommPattern.NONE:
            return stage_end
        if pattern is CommPattern.NEAREST_NEIGHBOR:
            return self._nearest_neighbor_arrays(
                stage_end, message_bytes, source_read
            )
        if pattern in (CommPattern.REDUCTION, CommPattern.ALLGATHER):
            A = self._maxplus_matrix(pattern, message_bytes)
            return (A + stage_end).max(axis=1)
        raise ModelError(f"unknown communication pattern: {pattern}")

    # -- max-plus collective matrices ----------------------------------------
    #
    # Every collective here applies only ``max`` and ``+ constant`` to
    # the clocks on a schedule that never depends on the clock values,
    # so the whole collective is a linear map in the (max, +) semiring:
    # ``end[n] = max_j(clocks[j] + A[n, j])``.  Because rounding is
    # monotone, ``max(a, b) + c == max(a + c, b + c)`` holds *exactly*
    # in floating point, so applying the matrix agrees with replaying
    # the schedule up to the association of the per-hop overhead sums
    # (a few ulp).  ``A`` is extracted by pushing the max-plus basis
    # vectors (0 at one node, -inf elsewhere) through the schedule
    # replay once, then every advance costs two array operations
    # instead of a Python-level tree walk.

    def _maxplus_matrix(
        self, pattern: CommPattern, nbytes: float
    ) -> np.ndarray:
        key = (pattern, nbytes)
        A = self._maxplus.get(key)
        if A is None:
            replay = (
                self._reduce_broadcast_arrays
                if pattern is CommPattern.REDUCTION
                else self._allgather_arrays
            )
            P = self.n_nodes
            A = np.empty((P, P))
            for j in range(P):
                basis = np.full(P, -np.inf)
                basis[j] = 0.0
                A[:, j] = replay(basis, nbytes)
            self._maxplus[key] = A
        return A

    def compile_advance(
        self,
        pattern: CommPattern,
        tile_seconds: np.ndarray,
        message_bytes: float,
        source_read: np.ndarray,
        tile_sums: Optional[np.ndarray] = None,
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Build a ``clocks -> clocks`` closure for one section.

        Steady-state walks replay the same section advance every
        iteration with identical tables, so the per-distribution
        constants — stage totals, collective matrices, neighbour-chain
        band vectors — are folded in once here and each iteration pays
        only the closure's two-to-six array operations.
        """
        P = self.n_nodes
        if tile_sums is None:
            tile_sums = tile_seconds.sum(axis=1)
        if P == 1 or pattern is CommPattern.NONE:
            inc = tile_sums
            return lambda clocks: clocks + inc
        if pattern is CommPattern.PIPELINE:
            return lambda clocks: self._pipeline_arrays(
                clocks, tile_seconds, message_bytes
            )
        if pattern in (CommPattern.REDUCTION, CommPattern.ALLGATHER):
            A = self._maxplus_matrix(pattern, message_bytes) + tile_sums
            return lambda clocks: (A + clocks).max(axis=1)
        if pattern is CommPattern.NEAREST_NEIGHBOR:
            diag, from_left, from_right = self._nn_bands(
                message_bytes, source_read, tile_sums
            )

            def nn_advance(clocks: np.ndarray) -> np.ndarray:
                end = clocks + diag
                np.maximum(end[1:], clocks[:-1] + from_left, out=end[1:])
                np.maximum(end[:-1], clocks[1:] + from_right, out=end[:-1])
                return end

            return nn_advance
        raise ModelError(f"unknown communication pattern: {pattern}")

    def _nn_bands(
        self,
        nbytes: float,
        source_read: np.ndarray,
        tile_sums: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Band vectors of the neighbour exchange's tridiagonal max-plus
        matrix (self / from-left / from-right), derived by distributing
        the receive overheads over the two receive steps of
        :meth:`_nearest_neighbor_arrays`.

        ``source_read`` and ``tile_sums`` may carry a leading candidate
        axis (``(B, P)`` instead of ``(P,)``); every operation is
        elementwise or a node-axis slice, so the batched bands are
        per-candidate identical to the single-candidate ones.
        """
        os_ = self._micro.send_overhead
        or_ = self._micro.recv_overhead
        x = self._transfer(nbytes)
        post = np.asarray(source_read) + os_
        selfc = self._nn_post_mult * post
        local = tile_sums + selfc
        diag = local + self._nn_or12
        # from_left[k] pairs clocks[k] with end[k + 1]; the message
        # leaves after the sender's posts and arrives before both of
        # the receiver's receive steps.
        from_left = local[..., :-1] + (x + self._nn_or2_tail)
        # from_right[k] pairs clocks[k + 1] with end[k]; the right
        # neighbour's *first* post feeds it, and only the second
        # receive step's overhead applies.
        from_right = (tile_sums + post)[..., 1:] + (x + or_)
        return diag, from_left, from_right

    def compile_matrix(
        self,
        pattern: CommPattern,
        tile_seconds: np.ndarray,
        message_bytes: float,
        source_read: np.ndarray,
        tile_sums: Optional[np.ndarray] = None,
    ) -> Optional[np.ndarray]:
        """This section's full max-plus matrix ``A`` (``end = max_j(
        clocks[j] + A[n, j])``), or ``None`` for patterns that have no
        clock-independent matrix (the pipeline's waits depend on
        per-tile interleaving, so it stays a replay closure).

        Consecutive section matrices compose with
        :func:`maxplus_compose` into a single per-iteration matrix, so
        a steady-state walk costs two array operations per iteration
        regardless of the number of sections.
        """
        P = self.n_nodes
        if tile_sums is None:
            tile_sums = tile_seconds.sum(axis=1)
        if P == 1 or pattern is CommPattern.NONE:
            A = self._tri_template.copy()
            np.fill_diagonal(A, tile_sums)
            return A
        if pattern is CommPattern.PIPELINE:
            return None
        if pattern in (CommPattern.REDUCTION, CommPattern.ALLGATHER):
            return self._maxplus_matrix(pattern, message_bytes) + tile_sums
        if pattern is CommPattern.NEAREST_NEIGHBOR:
            diag, from_left, from_right = self._nn_bands(
                message_bytes, source_read, tile_sums
            )
            A = self._tri_template.copy()
            A.flat[self._tri_flat] = np.concatenate(
                (diag, from_left, from_right)
            )
            return A
        raise ModelError(f"unknown communication pattern: {pattern}")

    # -- batched sections (the ``predict(batch=True)`` path) -----------------
    #
    # A whole population of candidate distributions advances together:
    # clocks become ``(B, P)`` arrays, section matrices ``(B, P, P)``
    # stacks.  Every batched expression applies the exact per-candidate
    # arithmetic of the single-candidate methods with a leading batch
    # axis broadcast over it — candidates never mix (no reduction runs
    # across the batch axis), so slice ``b`` of every result equals the
    # single-candidate computation for candidate ``b``.

    def compile_matrix_batch(
        self,
        pattern: CommPattern,
        message_bytes: float,
        source_read: np.ndarray,
        tile_sums: np.ndarray,
    ) -> Optional[np.ndarray]:
        """Batched :meth:`compile_matrix`: the ``(B, P, P)`` stack of one
        section's per-candidate max-plus matrices, or ``None`` for
        patterns with no clock-independent matrix (pipelines).

        ``source_read`` and ``tile_sums`` are ``(B, P)`` — one row per
        candidate distribution.
        """
        P = self.n_nodes
        B = tile_sums.shape[0]
        if P == 1 or pattern is CommPattern.NONE:
            A = np.full((B, P, P), -np.inf)
            idx = self._idx
            A[:, idx, idx] = tile_sums
            return A
        if pattern is CommPattern.PIPELINE:
            return None
        if pattern in (CommPattern.REDUCTION, CommPattern.ALLGATHER):
            base = self._maxplus_matrix(pattern, message_bytes)
            return base[None, :, :] + tile_sums[:, None, :]
        if pattern is CommPattern.NEAREST_NEIGHBOR:
            diag, from_left, from_right = self._nn_bands(
                message_bytes, source_read, tile_sums
            )
            A = np.full((B, P, P), -np.inf)
            A.reshape(B, P * P)[:, self._tri_flat] = np.concatenate(
                (diag, from_left, from_right), axis=1
            )
            return A
        raise ModelError(f"unknown communication pattern: {pattern}")

    def compile_advance_batch(
        self,
        pattern: CommPattern,
        tile_seconds: np.ndarray,
        message_bytes: float,
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Batched :meth:`compile_advance` for the patterns that have no
        max-plus matrix — today only the pipeline, whose per-tile
        interleaving depends on the clocks.  ``tile_seconds`` is
        ``(B, P, tiles)``; the closure maps ``(B, P)`` clocks."""
        if pattern is CommPattern.PIPELINE:
            return lambda clocks: self._pipeline_arrays_batch(
                clocks, tile_seconds, message_bytes
            )
        raise ModelError(
            f"pattern {pattern} compiles to a matrix, not an advance"
        )

    def _pipeline_arrays_batch(
        self, start: np.ndarray, tile_seconds: np.ndarray, nbytes: float
    ) -> np.ndarray:
        """:meth:`_pipeline_arrays` with a leading candidate axis: the
        per-node prefix scan runs on ``(B, tiles)`` slabs (cumsum and
        ``maximum.accumulate`` along the tile axis), so slice ``b``
        replays candidate ``b``'s pipeline exactly."""
        P = self.n_nodes
        os_ = self._micro.send_overhead
        or_ = self._micro.recv_overhead
        x = self._transfer(nbytes)
        B, nodes, tiles = tile_seconds.shape
        if nodes != P:
            raise ModelError("timeline inputs do not match node count")
        end = np.empty((B, P))
        upstream_arrival: Optional[np.ndarray] = None
        for n in range(P):
            cost = tile_seconds[:, n, :].astype(np.float64, copy=True)
            if n < P - 1:
                cost += os_
            if n > 0:
                cost += or_
            prefix = np.cumsum(cost, axis=1)
            if upstream_arrival is None:
                now = start[:, n, None] + prefix
            else:
                offsets = np.empty((B, tiles))
                offsets[:, 0] = 0.0
                offsets[:, 1:] = prefix[:, :-1]
                frontier = np.maximum.accumulate(
                    upstream_arrival - offsets, axis=1
                )
                now = prefix + np.maximum(start[:, n, None], frontier)
            if n < P - 1:
                upstream_arrival = now + x
            end[:, n] = now[:, -1]
        return end

    def _nearest_neighbor_arrays(
        self, stage_end: np.ndarray, nbytes: float, source_read: np.ndarray
    ) -> np.ndarray:
        """Boundary exchange on arrays: shifted-neighbour maxima replace
        the per-node loops of :meth:`_nearest_neighbor`."""
        os_ = self._micro.send_overhead
        or_ = self._micro.recv_overhead
        x = self._transfer(nbytes)
        post = source_read + os_  # cost of posting one message
        first_send = stage_end + post
        # Sends are posted left then right, so the message towards the
        # left neighbour leaves after one post everywhere; the one
        # towards the right leaves after two posts on interior nodes.
        ready = first_send + self._nn_extra_posts * post
        deliver_left = first_send + x  # valid for senders n >= 1
        deliver_right = ready + x
        end = ready.copy()
        # Receive left then right, mirroring the scalar order.
        end[1:] = np.maximum(end[1:], deliver_right[:-1]) + or_
        end[:-1] = np.maximum(end[:-1], deliver_left[1:]) + or_
        return end

    def _pipeline_arrays(
        self, start: np.ndarray, tile_seconds: np.ndarray, nbytes: float
    ) -> np.ndarray:
        """Equation 4 as a per-node prefix scan over tiles.

        Node ``n``'s recurrence ``now_t = max(now_{t-1}, d_t) + c_t``
        (arrival ``d_t`` from upstream, local cost ``c_t``) has the
        closed form ``now_t = C_t + max(start, max_{j<=t}(d_j -
        C_{j-1}))`` with ``C`` the prefix sums of ``c`` — one
        ``maximum.accumulate`` per node instead of a tiles x nodes
        Python loop.
        """
        P = self.n_nodes
        os_ = self._micro.send_overhead
        or_ = self._micro.recv_overhead
        x = self._transfer(nbytes)
        tiles = tile_seconds.shape[1]
        for ts in tile_seconds:
            if len(ts) != tiles:
                raise ModelError("nodes disagree on tile count")
        end = np.empty(P)
        upstream_arrival: Optional[np.ndarray] = None
        for n in range(P):
            cost = tile_seconds[n].astype(np.float64, copy=True)
            if n < P - 1:
                cost += os_
            if n > 0:
                cost += or_
            prefix = np.cumsum(cost)
            if upstream_arrival is None:
                now = start[n] + prefix
            else:
                offsets = np.empty(tiles)
                offsets[0] = 0.0
                offsets[1:] = prefix[:-1]
                frontier = np.maximum.accumulate(upstream_arrival - offsets)
                now = prefix + np.maximum(start[n], frontier)
            if n < P - 1:
                upstream_arrival = now + x
            end[n] = now[-1]
        return end

    def _reduce_broadcast_arrays(
        self, stage_end: np.ndarray, nbytes: float
    ) -> np.ndarray:
        """Binomial reduce + broadcast with boolean level masks."""
        P = self.n_nodes
        os_ = self._micro.send_overhead
        or_ = self._micro.recv_overhead
        x = self._transfer(nbytes)
        now = stage_end.astype(np.float64, copy=True)
        idx = np.arange(P)
        exited = np.zeros(P, dtype=bool)
        mask = 1
        while mask < P:
            senders = ~exited & ((idx & mask) != 0)
            now[senders] += os_
            arrival = now + x
            exited |= senders
            receivers = ~exited & ((idx & mask) == 0) & (idx + mask < P)
            now[receivers] = (
                np.maximum(now[receivers], arrival[idx[receivers] + mask])
                + or_
            )
            mask <<= 1
        pot = 1
        while pot < P:
            pot <<= 1
        mask = pot >> 1
        while mask > 0:
            senders = (idx % (2 * mask) == 0) & (idx + mask < P)
            now[senders] += os_
            arrival = now + x
            receivers = idx % (2 * mask) == mask
            now[receivers] = (
                np.maximum(now[receivers], arrival[idx[receivers] - mask])
                + or_
            )
            mask >>= 1
        return now

    def _allgather_arrays(
        self, stage_end: np.ndarray, nbytes: float
    ) -> np.ndarray:
        """Ring allgather: P-1 lockstep shift steps on arrays."""
        P = self.n_nodes
        os_ = self._micro.send_overhead
        or_ = self._micro.recv_overhead
        x = self._transfer(nbytes)
        now = stage_end.astype(np.float64, copy=True)
        for _ in range(P - 1):
            now += os_
            deliver = now + x
            now = np.maximum(now, np.roll(deliver, 1)) + or_
        return now

    def _nearest_neighbor(
        self,
        stage_end: Sequence[float],
        nbytes: float,
        source_read: Sequence[float],
    ) -> List[float]:
        """Boundary exchange: every node posts its sends (left then
        right), then receives (left then right).  Equation 3 semantics,
        exact mirror of the runtime's message schedule."""
        P = self.n_nodes
        os_ = self._micro.send_overhead
        or_ = self._micro.recv_overhead
        x = self._transfer(nbytes)
        deliver: Dict[Tuple[int, int], float] = {}
        ready = [0.0] * P
        for n in range(P):
            t = stage_end[n]
            for nb in (n - 1, n + 1):
                if 0 <= nb < P:
                    t += source_read[n] + os_
                    deliver[(n, nb)] = t + x
            ready[n] = t
        end = list(ready)
        for n in range(P):
            t = ready[n]
            for nb in (n - 1, n + 1):
                if 0 <= nb < P:
                    t = max(t, deliver[(nb, n)]) + or_
            end[n] = t
        return end

    def _pipeline(
        self,
        start: Sequence[float],
        tile_seconds: Sequence[Sequence[float]],
        nbytes: float,
    ) -> List[float]:
        """n-node pipeline: Equation 4's recurrence per tile and node."""
        P = self.n_nodes
        os_ = self._micro.send_overhead
        or_ = self._micro.recv_overhead
        x = self._transfer(nbytes)
        tiles = len(tile_seconds[0])
        for ts in tile_seconds:
            if len(ts) != tiles:
                raise ModelError("nodes disagree on tile count")
        now = list(start)
        deliver: Dict[Tuple[int, int], float] = {}
        for t in range(tiles):
            for n in range(P):
                if n > 0:
                    now[n] = max(now[n], deliver[(n - 1, t)]) + or_
                now[n] += tile_seconds[n][t]
                if n < P - 1:
                    now[n] += os_
                    deliver[(n, t)] = now[n] + x
        return now

    def _reduce_broadcast(
        self, stage_end: Sequence[float], nbytes: float
    ) -> List[float]:
        """Binomial-tree reduce to node 0 followed by binomial broadcast
        (the dissertation's reduction, reconstructed)."""
        P = self.n_nodes
        os_ = self._micro.send_overhead
        or_ = self._micro.recv_overhead
        x = self._transfer(nbytes)
        now = list(stage_end)
        deliver: Dict[Tuple[int, int], float] = {}
        exited = [False] * P
        mask = 1
        while mask < P:
            # Senders at this level post and exit the reduce phase.
            for n in range(P):
                if not exited[n] and (n & mask):
                    now[n] += os_
                    deliver[(n, mask)] = now[n] + x
                    exited[n] = True
            for n in range(P):
                if not exited[n] and not (n & mask):
                    partner = n | mask
                    if partner < P:
                        now[n] = max(now[n], deliver[(partner, mask)]) + or_
            mask <<= 1
        pot = 1
        while pot < P:
            pot <<= 1
        mask = pot >> 1
        while mask > 0:
            for n in range(P):
                if n % (2 * mask) == 0 and n + mask < P:
                    now[n] += os_
                    deliver[(n, -mask)] = now[n] + x
            for n in range(P):
                if n % (2 * mask) == mask:
                    now[n] = max(now[n], deliver[(n - mask, -mask)]) + or_
            mask >>= 1
        return now

    def _allgather(
        self, stage_end: Sequence[float], nbytes: float
    ) -> List[float]:
        """Ring allgather: P-1 lockstep shift steps."""
        P = self.n_nodes
        os_ = self._micro.send_overhead
        or_ = self._micro.recv_overhead
        x = self._transfer(nbytes)
        now = list(stage_end)
        for step in range(P - 1):
            deliver = [0.0] * P
            for n in range(P):
                now[n] += os_
                deliver[n] = now[n] + x
            for n in range(P):
                left = (n - 1) % P
                now[n] = max(now[n], deliver[left]) + or_
        return now
