"""Prediction reports with per-component breakdowns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.distribution.genblock import GenBlock
from repro.util.tables import render_table
from repro.util.units import seconds_to_human

__all__ = ["SectionBreakdown", "NodePrediction", "PredictionReport"]


@dataclass(frozen=True)
class SectionBreakdown:
    """One node's predicted time composition for one parallel section,
    per iteration."""

    section: str
    compute_seconds: float
    io_seconds: float
    comm_seconds: float  #: overheads plus blocked time

    @property
    def total(self) -> float:
        return self.compute_seconds + self.io_seconds + self.comm_seconds


@dataclass(frozen=True)
class NodePrediction:
    """Predicted per-iteration and total times for one node."""

    node: int
    iteration_seconds: float  #: steady-state single-iteration time
    total_seconds: float  #: all iterations, including pipeline fill
    sections: Tuple[SectionBreakdown, ...]


@dataclass(frozen=True)
class PredictionReport:
    """MHETA's full answer for one candidate distribution."""

    program_name: str
    distribution: GenBlock
    iterations: int
    nodes: Tuple[NodePrediction, ...]

    @property
    def total_seconds(self) -> float:
        """The predicted application execution time: the slowest node."""
        return max(n.total_seconds for n in self.nodes)

    @property
    def iteration_seconds(self) -> float:
        """Predicted steady-state time per iteration (slowest node)."""
        return max(n.iteration_seconds for n in self.nodes)

    @property
    def bottleneck_node(self) -> int:
        return max(self.nodes, key=lambda n: n.total_seconds).node

    def component_totals(self) -> Dict[str, float]:
        """Compute/io/comm seconds per iteration on the bottleneck node."""
        node = self.nodes[self.bottleneck_node]
        return {
            "compute": sum(s.compute_seconds for s in node.sections),
            "io": sum(s.io_seconds for s in node.sections),
            "comm": sum(s.comm_seconds for s in node.sections),
        }

    def describe(self) -> str:
        """Human-readable summary table (per node)."""
        rows: List[list] = []
        for n in self.nodes:
            rows.append(
                [
                    n.node,
                    self.distribution[n.node],
                    sum(s.compute_seconds for s in n.sections),
                    sum(s.io_seconds for s in n.sections),
                    sum(s.comm_seconds for s in n.sections),
                    n.total_seconds,
                ]
            )
        table = render_table(
            ["node", "rows", "compute/iter", "io/iter", "comm/iter", "total"],
            rows,
            float_fmt=".4f",
            title=(
                f"MHETA prediction: {self.program_name} x {self.iterations} "
                f"iterations -> {seconds_to_human(self.total_seconds)} "
                f"(bottleneck: node {self.bottleneck_node})"
            ),
        )
        return table
