"""The paper's numbered equations, under their paper names.

This module is a thin, well-documented facade so readers can map code to
the paper directly:

* :func:`equation_1` — synchronous out-of-core I/O time ``TIO(v)``;
* :func:`equation_2` — prefetched out-of-core I/O time (reconstructed;
  see DESIGN.md for the algebra, which reduces to Equation 1 at
  ``To = 0``);
* :func:`equation_3` — nearest-neighbour blocked time ``w(i, m)``;
* :func:`equation_4` — per-tile pipeline blocked times ``w(i, m, t)``;
* :func:`equation_5` — section communication cost ``Tx`` for a
  nearest-neighbour message.

The production model (:class:`~repro.core.MhetaModel`) evaluates the
n-node generalisations in :mod:`repro.core.comm` and
:mod:`repro.core.io_model`; tests assert that those generalisations
collapse to these closed forms in the two-node, equal-block cases.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.comm import nearest_neighbor_wait, pipeline_waits
from repro.core.io_model import prefetch_io_seconds, sync_io_seconds

__all__ = [
    "equation_1",
    "equation_2",
    "equation_3",
    "equation_4",
    "equation_5",
]


def equation_1(
    n_io: int,
    rs: float,
    read_icla: float,
    ws: float = 0.0,
    write_icla: float = 0.0,
) -> float:
    """``TIO(v) = N_IO(v) * (rs + R_ICLA(v) + ws + W_ICLA(v))``."""
    return sync_io_seconds(n_io, rs, read_icla, ws, write_icla)


def equation_2(
    n_io: int,
    rs: float,
    read_icla: float,
    overlap: float,
    ws: float = 0.0,
    write_icla: float = 0.0,
) -> float:
    """``TIO(v) = N_IO*(rs + To + ws + W) + R + (N_IO-1)*Re`` with
    ``Re = max(0, R - To)`` (prefetching)."""
    return prefetch_io_seconds(n_io, rs, read_icla, overlap, ws, write_icla)


def equation_3(
    own_stage_seconds: float,
    own_send_overhead: float,
    sender_stage_seconds: float,
    sender_send_overhead: float,
    transfer: float,
) -> float:
    """``w(i, m) = max(0, (Ts(j) + os(m) + X(m)) - (Ts(i) + os_i(m)))``:
    node *i* blocks only if it finishes its stages (and its own send)
    before node *j*'s message arrives."""
    return nearest_neighbor_wait(
        own_ready=own_stage_seconds + own_send_overhead,
        sender_done=sender_stage_seconds + sender_send_overhead,
        transfer=transfer,
    )


def equation_4(
    sender_tile_seconds: Sequence[float],
    receiver_tile_seconds: Sequence[float],
    send_overhead: float,
    recv_overhead: float,
    transfer: float,
) -> List[float]:
    """Per-tile pipeline waits ``w(1, m, t)`` for the downstream node of
    a two-node pipeline (the upstream node never blocks)."""
    return pipeline_waits(
        sender_tile_seconds,
        receiver_tile_seconds,
        send_overhead,
        recv_overhead,
        transfer,
    )


def equation_5(
    send_overhead: float, wait: float, recv_overhead: float
) -> float:
    """``Tx(i) = os(m) + w(i, m) + or(m)`` — the communication cost a
    nearest-neighbour section adds on node *i* for one message."""
    return send_overhead + wait + recv_overhead
