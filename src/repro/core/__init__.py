"""MHETA — the paper's execution model (the primary contribution).

Given a program structure, the measured inputs from one instrumented
iteration (:class:`~repro.instrument.MhetaInputs`), and a candidate
GEN_BLOCK distribution, :class:`MhetaModel` predicts the execution time
of the remaining iterations as a system of parameterised equations:

* computation scales with assigned work (Section 4.2.1);
* I/O follows Equation 1 (synchronous) or Equation 2 (prefetching) from
  ICLA/OCLA sizes computed by the out-of-core oracle;
* communication adds send/receive overheads and the blocked times of
  Equation 3 (nearest neighbour), Equation 4 (pipeline), and the
  dissertation's reduction model (binomial tree here).

:mod:`repro.core.equations` exposes the closed-form two-node equations
exactly as printed in the paper; :class:`MhetaModel` evaluates their
n-node generalisation as a per-section max-plus timeline.
"""

from repro.core.oracle import OutOfCoreOracle
from repro.core.io_model import StageTimeModel, sync_io_seconds, prefetch_io_seconds
from repro.core.comm import SectionTimeline
from repro.core.model import MhetaModel
from repro.core.plan import EvaluationPlan, plan_cache_stats
from repro.core.report import PredictionReport, NodePrediction, SectionBreakdown
from repro.core import equations

__all__ = [
    "OutOfCoreOracle",
    "StageTimeModel",
    "sync_io_seconds",
    "prefetch_io_seconds",
    "SectionTimeline",
    "MhetaModel",
    "EvaluationPlan",
    "plan_cache_stats",
    "PredictionReport",
    "NodePrediction",
    "SectionBreakdown",
    "equations",
]
