"""Stage-time model: computation scaling plus Equations 1 and 2.

``sync_io_seconds`` and ``prefetch_io_seconds`` are the paper's closed
forms.  :class:`StageTimeModel` is what :class:`~repro.core.MhetaModel`
actually evaluates: the same equations applied block-by-block, mirroring
the runtime's ICLA streaming loop exactly (including the final partial
block and, for prefetching, the unrolled loop of paper Figure 6 where
the disk seek of a prefetched block hides inside the overlap window).
For equal-size blocks and ``To = 0`` both formulations coincide with
Equation 1; the unit tests pin that equivalence down.

Computation scales with assigned work: ``Tc' = Tc * W'/W`` where ``W``
is the row count the instrumented distribution assigned (Section 4.2.1).
MHETA has no per-row cost information — which is exactly why sparse CG
defeats it (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.instrument.inputs import MhetaInputs, NodeCosts
from repro.placement import MemoryPlan
from repro.program.sections import ParallelSection
from repro.program.stages import Stage
from repro.program.structure import ProgramStructure

__all__ = [
    "sync_io_seconds",
    "prefetch_io_seconds",
    "StageTimeModel",
    "StageTimes",
]


def sync_io_seconds(
    n_io: int,
    read_seek: float,
    read_icla_seconds: float,
    write_seek: float = 0.0,
    write_icla_seconds: float = 0.0,
) -> float:
    """Paper Equation 1: total synchronous I/O for one out-of-core array.

    ``TIO(v) = N_IO(v) * (rs + R_ICLA(v) + ws + W_ICLA(v))`` — the seek
    overheads and per-ICLA latencies paid once per pass.  Write terms are
    zero for read-only arrays; ``n_io == 0`` means in core.
    """
    if n_io < 0:
        raise ModelError("n_io must be non-negative")
    return n_io * (
        read_seek + read_icla_seconds + write_seek + write_icla_seconds
    )


def prefetch_io_seconds(
    n_io: int,
    read_seek: float,
    read_icla_seconds: float,
    overlap_seconds: float,
    write_seek: float = 0.0,
    write_icla_seconds: float = 0.0,
) -> float:
    """Paper Equation 2 (reconstructed): I/O with one-block-ahead
    prefetching.

    ``TIO(v) = N_IO*(rs + To + ws + W) + R + (N_IO - 1) * Re``, with the
    effective read latency ``Re = max(0, R - To)``.  The first ICLA read
    pays the full latency; the remaining ``N_IO - 1`` latencies are
    mitigated by the overlap computation ``To``, which is charged whether
    or not the prefetch succeeds ("prefetching can be more expensive than
    regular synchronous reads").  With ``To = 0`` this reduces exactly to
    Equation 1.
    """
    if n_io < 0:
        raise ModelError("n_io must be non-negative")
    if n_io == 0:
        return 0.0
    effective = max(0.0, read_icla_seconds - overlap_seconds)
    return (
        n_io * (read_seek + overlap_seconds + write_seek + write_icla_seconds)
        + read_icla_seconds
        + (n_io - 1) * effective
    )


@dataclass(frozen=True)
class StageTimes:
    """Predicted time for one stage on one tile of one node."""

    compute_seconds: float
    io_seconds: float

    @property
    def total(self) -> float:
        return self.compute_seconds + self.io_seconds


def _block_rows(tile_rows: int, block_rows: int) -> List[int]:
    """Row counts of the ICLA pieces streaming ``tile_rows`` (mirrors the
    runtime: full blocks then a final partial one)."""
    blocks = []
    remaining = tile_rows
    while remaining > 0:
        take = min(block_rows, remaining)
        blocks.append(take)
        remaining -= take
    return blocks


class StageTimeModel:
    """Predict per-stage computation + I/O time for a candidate
    distribution, from the instrumented measurements."""

    def __init__(
        self,
        program: ProgramStructure,
        inputs: MhetaInputs,
        prefetch_issue_overhead: Optional[float] = None,
    ) -> None:
        self._program = program
        self._inputs = inputs
        self._issue_overhead = (
            prefetch_issue_overhead
            if prefetch_issue_overhead is not None
            else inputs.micro.prefetch_issue_overhead
        )

    # -- measured-cost lookups -------------------------------------------------

    def _node_costs(self, node: int) -> NodeCosts:
        try:
            return self._inputs.nodes[node]
        except IndexError:
            raise ModelError(f"no instrumented costs for node {node}")

    def scaled_compute(
        self, node: int, section: ParallelSection, stage: Stage, rows: int
    ) -> float:
        """``Tc' = Tc * W'/W`` for the whole stage (all tiles)."""
        costs = self._node_costs(node)
        cost = costs.stage_cost(section.name, stage.name)
        if cost is None:
            raise ModelError(
                f"node {node}: stage {section.name}/{stage.name} was not "
                "measured during the instrumented iteration"
            )
        if costs.rows0 <= 0:
            raise ModelError(
                f"node {node}: instrumented distribution assigned no rows"
            )
        return cost.compute_seconds * (rows / costs.rows0)

    def _read_pb(self, node: int, variable: str) -> float:
        io = self._node_costs(node).io.get(variable)
        if io is not None and io.read_seconds_per_byte > 0:
            return io.read_seconds_per_byte
        return self._inputs.micro.disks[node].read_byte_latency

    def _write_pb(self, node: int, variable: str) -> float:
        io = self._node_costs(node).io.get(variable)
        if io is not None and io.write_seconds_per_byte > 0:
            return io.write_seconds_per_byte
        return self._inputs.micro.disks[node].write_byte_latency

    def read_block_seconds(self, node: int, variable: str, nbytes: float) -> float:
        disk = self._inputs.micro.disks[node]
        return disk.read_seek + nbytes * self._read_pb(node, variable)

    def write_block_seconds(self, node: int, variable: str, nbytes: float) -> float:
        disk = self._inputs.micro.disks[node]
        return disk.write_seek + nbytes * self._write_pb(node, variable)

    # -- stage assembly ----------------------------------------------------------

    def tile_stage_times(
        self,
        node: int,
        rows: int,
        section: ParallelSection,
        stage: Stage,
        tile_rows: int,
        plan: MemoryPlan,
    ) -> StageTimes:
        """Predicted computation + I/O for ``stage`` over one tile's
        ``tile_rows`` of ``rows`` total node rows."""
        compute_total = self.scaled_compute(node, section, stage, rows)
        tile_compute = (
            compute_total * (tile_rows / rows) if rows > 0 else 0.0
        )
        variables = self._program.variable_map

        def _ooc(name: str) -> bool:
            p = plan.placements.get(name)
            return p is not None and not p.in_core

        reads_ooc = [v for v in stage.reads if _ooc(v)]
        writes_ooc = [v for v in stage.writes if _ooc(v)]
        primary = reads_ooc[0] if reads_ooc else None

        if primary is None or tile_rows == 0:
            io = 0.0
            for name in writes_ooc:
                io += self._stream_seconds(
                    node, name, plan, tile_rows, read=False, write=True
                )
            return StageTimes(compute_seconds=tile_compute, io_seconds=io)

        io = 0.0
        for name in reads_ooc[1:]:
            io += self._stream_seconds(
                node, name, plan, tile_rows, read=True, write=False
            )
        write_back = (
            primary in stage.writes and variables[primary].writes_back
        )
        if self._program.prefetch:
            io += self._prefetch_loop_seconds(
                node, primary, plan, tile_rows, tile_compute, write_back
            )
        else:
            io += self._sync_loop_seconds(
                node, primary, plan, tile_rows, write_back
            )
        for name in writes_ooc:
            if name == primary:
                continue
            io += self._stream_seconds(
                node, name, plan, tile_rows, read=False, write=True
            )
        return StageTimes(compute_seconds=tile_compute, io_seconds=io)

    # -- streaming loops ------------------------------------------------------------

    def _stream_seconds(
        self, node, name, plan, tile_rows, *, read: bool, write: bool
    ) -> float:
        if tile_rows == 0:
            return 0.0
        placement = plan.placements[name]
        row_bytes = self._program.variable(name).row_bytes
        total = 0.0
        for rows in _block_rows(tile_rows, placement.block_rows):
            nbytes = rows * row_bytes
            if read:
                total += self.read_block_seconds(node, name, nbytes)
            if write:
                total += self.write_block_seconds(node, name, nbytes)
        return total

    def _sync_loop_seconds(self, node, name, plan, tile_rows, write_back) -> float:
        """Equation 1, block by block (reads plus optional write-backs)."""
        return self._stream_seconds(
            node, name, plan, tile_rows, read=True, write=write_back
        )

    def _prefetch_loop_seconds(
        self, node, name, plan, tile_rows, tile_compute, write_back
    ) -> float:
        """Equation 2 evaluated over the actual unrolled loop: the first
        read is cold; each later read hides behind the previous block's
        computation; write-backs are synchronous.

        Returns only the I/O-attributable seconds: total loop time minus
        the tile's computation (which the caller adds separately).
        """
        placement = plan.placements[name]
        row_bytes = self._program.variable(name).row_bytes
        blocks = _block_rows(tile_rows, placement.block_rows)
        if len(blocks) == 1:
            return self._sync_loop_seconds(node, name, plan, tile_rows, write_back)
        shares = [tile_compute * b / tile_rows for b in blocks]
        io = self.read_block_seconds(node, name, blocks[0] * row_bytes)
        for i in range(1, len(blocks)):
            read = self.read_block_seconds(node, name, blocks[i] * row_bytes)
            overlap = shares[i - 1]
            # Issue overhead, plus whatever latency the overlap fails to
            # hide (compute itself is accounted by the caller).
            io += self._issue_overhead + max(0.0, read - overlap)
            if write_back:
                io += self.write_block_seconds(
                    node, name, blocks[i - 1] * row_bytes
                )
        if write_back:
            io += self.write_block_seconds(node, name, blocks[-1] * row_bytes)
        return io

    # -- telemetry helpers -------------------------------------------------------

    def node_prefetch_io_seconds(
        self,
        node: int,
        rows: int,
        section: ParallelSection,
        plan: MemoryPlan,
    ) -> float:
        """The Equation-2 (prefetch-loop) share of this node's section
        I/O, summed over every tile and stage; zero for non-prefetching
        programs.

        Telemetry-only: the phase breakdown reports ``io_prefetch`` from
        this and ``io_sync`` as the remainder of the stage tables' I/O,
        so the two always sum to the table I/O exactly regardless of
        kernel.  Scalar replay of the same per-tile loop the reference
        kernel uses — cheap at report granularity, never on a hot path.
        """
        if not self._program.prefetch:
            return 0.0
        variables = self._program.variable_map
        placements = plan.placements

        def _ooc(name: str) -> bool:
            p = placements.get(name)
            return p is not None and not p.in_core

        tile_rows_all = self.section_tile_rows(rows, section.tiles)
        total = 0.0
        for stage in section.stages:
            reads_ooc = [v for v in stage.reads if _ooc(v)]
            if not reads_ooc:
                continue
            primary = reads_ooc[0]
            write_back = (
                primary in stage.writes and variables[primary].writes_back
            )
            compute_total = self.scaled_compute(node, section, stage, rows)
            for trows in tile_rows_all.tolist():
                if trows == 0:
                    continue
                tile_compute = (
                    compute_total * (trows / rows) if rows > 0 else 0.0
                )
                total += self._prefetch_loop_seconds(
                    node, primary, plan, trows, tile_compute, write_back
                )
        return total

    # -- vectorized section kernel ----------------------------------------------
    #
    # The scalar methods above walk tiles, then ICLA blocks, in Python.
    # Every block of one tile is full-sized except possibly the last, so
    # the per-tile streaming loops collapse to closed forms in the number
    # of full blocks and the remainder — which makes all tiles of a
    # section one set of array expressions.  These methods are the
    # ``kernel="numpy"`` evaluation path; they agree with the scalar
    # reference to rounding (associativity of the sums differs, nothing
    # else), which the golden equivalence suite pins to <= 1e-12
    # relative error.

    def section_tile_rows(self, rows: int, tiles: int) -> np.ndarray:
        """Row counts of every tile at once (the vectorised counterpart
        of the model's per-tile ``(rows * t) // tiles`` bounds)."""
        bounds = (rows * np.arange(tiles + 1, dtype=np.int64)) // tiles
        return bounds[1:] - bounds[:-1]

    def section_tile_times(
        self,
        node: int,
        rows: int,
        section: ParallelSection,
        plan: MemoryPlan,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-tile ``(totals, computes)`` for every stage of ``section``
        summed, as float64 arrays of length ``section.tiles``."""
        tiles = section.tiles
        tile_rows = self.section_tile_rows(rows, tiles)
        variables = self._program.variable_map
        placements = plan.placements

        def _ooc(name: str) -> bool:
            p = placements.get(name)
            return p is not None and not p.in_core

        totals = np.zeros(tiles)
        computes = np.zeros(tiles)
        for stage in section.stages:
            compute_total = self.scaled_compute(node, section, stage, rows)
            if rows > 0:
                tile_compute = compute_total * (tile_rows / rows)
            else:
                tile_compute = np.zeros(tiles)
            reads_ooc = [v for v in stage.reads if _ooc(v)]
            writes_ooc = [v for v in stage.writes if _ooc(v)]
            primary = reads_ooc[0] if reads_ooc else None
            io = np.zeros(tiles)
            if primary is None:
                for name in writes_ooc:
                    io = io + self._stream_seconds_array(
                        node, name, plan, tile_rows, read=False, write=True
                    )
            else:
                for name in reads_ooc[1:]:
                    io = io + self._stream_seconds_array(
                        node, name, plan, tile_rows, read=True, write=False
                    )
                write_back = (
                    primary in stage.writes and variables[primary].writes_back
                )
                if self._program.prefetch:
                    io = io + self._prefetch_loop_seconds_array(
                        node, primary, plan, tile_rows, tile_compute,
                        write_back,
                    )
                else:
                    io = io + self._stream_seconds_array(
                        node, primary, plan, tile_rows,
                        read=True, write=write_back,
                    )
                for name in writes_ooc:
                    if name == primary:
                        continue
                    io = io + self._stream_seconds_array(
                        node, name, plan, tile_rows, read=False, write=True
                    )
            computes = computes + tile_compute
            totals = totals + (tile_compute + io)
        return totals, computes

    def _block_split(self, placement, tile_rows: np.ndarray):
        """Full-block count and remainder rows of every tile's ICLA
        stream (the closed form of :func:`_block_rows`)."""
        block = placement.block_rows
        n_full = tile_rows // block
        rem = tile_rows - n_full * block
        return block, n_full, rem

    def _stream_seconds_array(
        self, node, name, plan, tile_rows: np.ndarray, *, read: bool,
        write: bool,
    ) -> np.ndarray:
        """Closed form of :meth:`_stream_seconds` over all tiles."""
        block, n_full, rem = self._block_split(plan.placements[name], tile_rows)
        row_bytes = self._program.variable(name).row_bytes
        disk = self._inputs.micro.disks[node]
        has_rem = rem > 0
        n_full_f = n_full.astype(np.float64)
        total = np.zeros(len(tile_rows))
        if read:
            pb = self._read_pb(node, name)
            full = disk.read_seek + (block * row_bytes) * pb
            partial = disk.read_seek + (rem * row_bytes) * pb
            total = total + (n_full_f * full + has_rem * partial)
        if write:
            pb = self._write_pb(node, name)
            full = disk.write_seek + (block * row_bytes) * pb
            partial = disk.write_seek + (rem * row_bytes) * pb
            total = total + (n_full_f * full + has_rem * partial)
        return total

    def _prefetch_loop_seconds_array(
        self, node, name, plan, tile_rows: np.ndarray,
        tile_compute: np.ndarray, write_back: bool,
    ) -> np.ndarray:
        """Closed form of :meth:`_prefetch_loop_seconds` over all tiles.

        With ``K`` blocks (all full-sized except possibly the last), the
        unrolled loop is: one cold read, ``K - 2`` full reads each
        overlapped by a full block's computation share, one last read
        (full or partial) overlapped the same way, plus synchronous
        write-backs of every block.  Tiles streaming a single block fall
        back to the synchronous form, exactly like the scalar path.
        """
        block, n_full, rem = self._block_split(plan.placements[name], tile_rows)
        row_bytes = self._program.variable(name).row_bytes
        disk = self._inputs.micro.disks[node]
        rpb = self._read_pb(node, name)
        has_rem = rem > 0
        n_blocks = n_full + has_rem
        read_full = disk.read_seek + (block * row_bytes) * rpb
        read_partial = disk.read_seek + (rem * row_bytes) * rpb
        safe_rows = np.where(tile_rows > 0, tile_rows, 1)
        share_full = tile_compute * block / safe_rows
        issue = self._issue_overhead
        hidden_full = np.maximum(0.0, read_full - share_full)
        hidden_last = np.maximum(0.0, read_partial - share_full)
        n_mid = np.maximum(n_full - 1, 0).astype(np.float64)
        prefetched = (
            read_full
            + n_mid * (issue + hidden_full)
            + has_rem * (issue + hidden_last)
        )
        if write_back:
            wpb = self._write_pb(node, name)
            write_full = disk.write_seek + (block * row_bytes) * wpb
            write_partial = disk.write_seek + (rem * row_bytes) * wpb
            prefetched = prefetched + (
                n_full.astype(np.float64) * write_full
                + has_rem * write_partial
            )
        sync = self._stream_seconds_array(
            node, name, plan, tile_rows, read=True, write=write_back
        )
        return np.where(n_blocks >= 2, prefetched, sync)
