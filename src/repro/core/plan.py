"""Compiled evaluation plans: one-time specialization of the predictor.

The batched numpy kernel still re-derives a lot of structure on every
``predict(batch=True)`` call: per-node ``np.unique`` passes over the
candidate matrix, fresh ``(B, P, P)`` section matrices, generic max-plus
composition, and closure dispatch per section.  All of that depends only
on the *(app structure, cluster shape, kernel options)* triple — not on
the candidate distributions — so :class:`EvaluationPlan` lowers the
triple once into a flat program:

1. **Table store** — plan-resident ``(node, rows) -> row`` storage laid
   out column-wise per section: single-tile sections store their section
   total, nearest-neighbour sections store the three *pre-baked* band
   values (diag / from-left / from-right contributions of that node, the
   exact two-operand add sequence of
   :meth:`SectionTimeline._nn_bands`), pipeline sections store the full
   per-tile table.  A dense ``(P, n_rows + 1)`` index map turns a whole
   ``(B, P)`` candidate matrix into one fancy gather; misses route
   through the model's shared table LRU so warmth is never split across
   tiers.
2. **Lowering** — consecutive sections fold at compile time through a
   small state machine (diagonal / tridiagonal-band / dense-plus-rank-1
   / materialized matrix): diagonal sections fold for free into their
   neighbours, a tridiagonal section folds into a following collective
   with a banded build (no generic ``(B, P, P, P)`` composition), chains
   of tridiagonal sections fold by banded matrix updates, and pipeline
   sections split the fold with a precomputed prefix-scan op.  The
   result is a short list of *builders* (run once per batch) and *walk
   ops* (run once per iteration).
3. **Steady-state walk** — the per-candidate freezing rule of
   :meth:`MhetaModel._steady_walk_batch` (identical tolerances and
   extrapolation arithmetic) runs over preallocated rotating buffers;
   single-matrix programs take a fused walk loop that is JIT-compiled
   with numba when available (``REPRO_PLAN_NUMBA=0`` disables) and
   always has a pure-numpy twin with bit-identical semantics — explicit
   loops replay numpy's elementwise adds and exact max reductions, so
   both modes agree bit-for-bit.

Compiled plans are shared process-wide through a bounded LRU keyed by a
content fingerprint of the triple, beside the per-model table LRU;
:func:`plan_cache_stats` exposes hit/miss/compile counters for
``repro stats`` and benchmark JSON.  The array layout is deliberately
flat and contiguous — ``(B, P)`` clocks, ``(B, P, P)`` matrices, one
gather per batch — so a future GPU backend can adopt the same plan IR.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.obs import Recorder
from repro.program.sections import CommPattern
from repro.util.lru import LRUCache

__all__ = [
    "EvaluationPlan",
    "DEFAULT_PLAN_CACHE_ENTRIES",
    "MAX_STORE_ROWS",
    "get_plan",
    "discard_plan",
    "plan_cache_stats",
    "reset_plan_cache",
    "numba_active",
]

#: Bound of the process-wide compiled-plan LRU.  Plans are small (a few
#: hundred KB of index map dominates); the bound exists so unattended
#: services cycling through many (app, cluster) pairs stay flat.
DEFAULT_PLAN_CACHE_ENTRIES = 32

#: Table-store row bound per plan.  A store row is a handful of floats;
#: when a very long sweep exceeds the bound the store resets rather than
#: grow without limit (the model's table LRU keeps the warmth).
MAX_STORE_ROWS = 1 << 16

#: Dense-index entry bound: above this the (P, n_rows + 1) map would be
#: unreasonably large and a dict index is used instead.
_MAX_DENSE_INDEX = 1 << 25

# Convergence tolerances of the steady-state walk — must match
# MhetaModel._steady_walk_batch exactly.
_ATOL = 1e-12
_RTOL = 1e-9

# Section kinds after classification (see _classify).
_DIAG = 0  # NONE pattern or P == 1: diagonal max-plus matrix
_TRI = 1  # nearest neighbour: tridiagonal matrix, stored as bands
_DENSE = 2  # reduction / allgather: constant base matrix + column add
_PIPE = 3  # pipeline: no clock-independent matrix, prefix-scan replay


# -- numba (optional JIT for the fused single-matrix walk) -------------------
#
# numba is strictly optional: the import is attempted lazily on first
# plan compile, disabled by REPRO_PLAN_NUMBA=0, and any failure (absent
# package, unsupported platform) silently selects the numpy twin.  The
# jitted walk replays the numpy walk loop-for-loop (elementwise adds,
# exact max reductions, identical tolerance arithmetic), so the two
# modes return bit-identical totals.

_numba_walk: Optional[Callable] = None
_numba_tried = False


def _numba_disabled() -> bool:
    return os.environ.get("REPRO_PLAN_NUMBA", "").strip().lower() in (
        "0", "false", "off", "no",
    )


def numba_active() -> bool:
    """Whether compiled plans are currently using the numba walk."""
    return _numba_walk is not None


def _resolve_numba_walk() -> Optional[Callable]:
    """Build (once) the jitted fused walk, or ``None`` when unavailable."""
    global _numba_walk, _numba_tried
    if _numba_tried:
        return _numba_walk
    _numba_tried = True
    if _numba_disabled():
        return None
    try:
        import numba
    except Exception:
        return None
    try:
        @numba.njit(cache=False)
        def _walk_jit(M, n_iter):  # pragma: no cover - exercised when
            # numba is installed (CI matrix leg); semantics pinned by
            # the numpy twin below.
            B = M.shape[0]
            P = M.shape[1]
            cur = np.zeros((B, P))
            nxt = np.empty((B, P))
            last = np.empty((B, P))
            second = np.empty((B, P))
            steady = np.empty((B, P))
            prev_steady = np.empty((B, P))
            totals = np.empty((B, P))
            active = np.ones(B, np.bool_)
            n_active = B
            have_last = False
            have_second = False
            have_prev = False
            simulate = 0
            while simulate < n_iter:
                for b in range(B):
                    for n in range(P):
                        m = -np.inf
                        for j in range(P):
                            v = M[b, n, j] + cur[b, j]
                            if v > m:
                                m = v
                        nxt[b, n] = m
                second, last, cur, nxt = last, nxt, nxt, second
                have_second = have_last
                have_last = True
                simulate += 1
                if have_second:
                    prev_steady, steady = steady, prev_steady
                    for b in range(B):
                        for n in range(P):
                            steady[b, n] = last[b, n] - second[b, n]
                    if have_prev:
                        k = n_iter - simulate
                        for b in range(B):
                            if not active[b]:
                                continue
                            ok = True
                            for n in range(P):
                                tol = _ATOL + _RTOL * abs(prev_steady[b, n])
                                if abs(steady[b, n] - prev_steady[b, n]) > tol:
                                    ok = False
                                    break
                            if ok:
                                for n in range(P):
                                    totals[b, n] = (
                                        last[b, n] + steady[b, n] * k
                                    )
                                active[b] = False
                                n_active -= 1
                        if n_active == 0:
                            return totals
                    have_prev = True
            for b in range(B):
                if active[b]:
                    for n in range(P):
                        totals[b, n] = last[b, n]
            return totals

        # Warm the dispatcher so the first real execute pays no JIT.
        _walk_jit(np.zeros((1, 1, 1)), 3)
        _numba_walk = _walk_jit
    except Exception:
        _numba_walk = None
    return _numba_walk


def _reset_numba_for_tests() -> None:
    """Drop the resolved walk so tests can re-exercise the gate."""
    global _numba_walk, _numba_tried
    _numba_walk = None
    _numba_tried = False


# -- lowering state machine ---------------------------------------------------


class _TriState:
    """A pending tridiagonal max-plus matrix, held as band *expressions*.

    Each band is a list of ``(column, node_offset)`` terms over the
    gathered store columns; the band value at node index ``k`` is the
    ordered sum of ``g[:, k + offset, column]``.  Diagonal sections fold
    in as extra terms (a column add shifts the from-right band by one
    node, a row add shifts the from-left band), so no matrix is built
    until a collective, a second exchange, or the end of the program
    forces one.
    """

    __slots__ = ("dterms", "lterms", "rterms")

    def __init__(self, dcol: int, lcol: int, rcol: int) -> None:
        self.dterms: List[Tuple[int, int]] = [(dcol, 0)]
        self.lterms: List[Tuple[int, int]] = [(lcol, 0)]
        self.rterms: List[Tuple[int, int]] = [(rcol, 1)]

    def fold_inner_diag(self, cols: Sequence[int]) -> None:
        """Compose with ``diag(v)`` applied *before* the exchange
        (column add: entry ``[n, j] += v[j]``)."""
        for c in cols:
            self.dterms.append((c, 0))
            self.lterms.append((c, 0))
            self.rterms.append((c, 1))

    def fold_outer_diag(self, col: int) -> None:
        """Compose with ``diag(v)`` applied *after* the exchange
        (row add: entry ``[n, j] += v[n]``)."""
        self.dterms.append((col, 0))
        self.lterms.append((col, 1))
        self.rterms.append((col, 0))


def _band(g: np.ndarray, terms: Sequence[Tuple[int, int]],
          length: int) -> np.ndarray:
    """Evaluate one band expression over the gathered ``(B, P, C)``
    store rows; returns ``(B, length)``."""
    col, off = terms[0]
    v = g[:, off:off + length, col]
    for col, off in terms[1:]:
        v = v + g[:, off:off + length, col]
    return v


def _colsum(g: np.ndarray, cols: Sequence[int]) -> np.ndarray:
    """Ordered sum of store columns (the composition of a run of
    diagonal sections); returns ``(B, P)``."""
    v = g[:, :, cols[0]]
    for c in cols[1:]:
        v = v + g[:, :, c]
    return v


class EvaluationPlan:
    """A compiled evaluator for one (app structure, cluster shape,
    kernel options) triple.

    Built once by :func:`get_plan` (or :meth:`MhetaModel.ensure_plan`);
    :meth:`execute` then scores validated ``(B, P)`` candidate-count
    matrices.  Per-candidate results are bit-identical across batch
    sizes (no reduction crosses the candidate axis, and the steady-state
    freeze is per-candidate), so ``execute`` backs both the batched and
    the single-candidate ``kernel="plan"`` paths.

    Plans hold per-batch-size scratch buffers and are **not**
    thread-safe — exactly like the default table LRU.  The serving layer
    runs all model passes on one executor thread, which satisfies this.
    """

    def __init__(self, model) -> None:
        self._model = model
        self._timeline = model.timeline
        self.P = model.n_nodes
        self.n_rows = model.program.n_rows
        self.fingerprint = model.fingerprint
        self.executes = 0
        self.store_resets = 0
        # -- store layout ----------------------------------------------
        sections = model.program.sections
        offsets = model._tile_offsets
        self._col_specs: List[tuple] = []
        col = 0
        kinds: List[int] = []
        for si, section in enumerate(sections):
            pattern = section.comm.pattern
            if self.P == 1 or pattern is CommPattern.NONE:
                kind = _DIAG
                ncols = 1
            elif pattern is CommPattern.PIPELINE:
                kind = _PIPE
                ncols = section.tiles
            elif pattern is CommPattern.NEAREST_NEIGHBOR:
                kind = _TRI
                ncols = 3
            elif pattern in (CommPattern.REDUCTION, CommPattern.ALLGATHER):
                kind = _DENSE
                ncols = 1
            else:
                raise ModelError(
                    f"unknown communication pattern: {pattern}"
                )
            kinds.append(kind)
            self._col_specs.append(
                (kind, si, offsets[si], offsets[si + 1], col)
            )
            col += ncols
        self.n_cols = col
        self._nn_consts = self._bake_nn_constants(sections, kinds)
        # -- store -----------------------------------------------------
        self._nodes = np.arange(self.P)
        index_entries = self.P * (self.n_rows + 1)
        if index_entries <= _MAX_DENSE_INDEX:
            self._index: Optional[np.ndarray] = np.full(
                (self.P, self.n_rows + 1), -1, dtype=np.int32
            )
            self._index_dict: Optional[dict] = None
        else:
            self._index = None
            self._index_dict = {}
        self._data = np.empty((64, self.n_cols))
        self._used = 0
        # -- lowering --------------------------------------------------
        self._buf_factories: List[Callable[[int], object]] = []
        self._ctx_cache: dict = {}
        self._builders: List[Callable] = []
        self._op_makers: List[Callable] = []
        self._matrix_buf: Optional[int] = None
        self._ops_tmp: Optional[int] = None
        self._lower(sections, kinds)
        # Gather memo: store rows are immutable pure functions of
        # ``(node, rows)``, so a repeated candidate batch (steady-state
        # populations, benchmark reps, coalesced serve rounds) reuses
        # its gathered ``(B, P, C)`` block and skips the scattered
        # index/store touches entirely.
        self._g_memo: dict = {}
        # Walk scratch (matrix mode only; ops mode allocates per call).
        if self._matrix_buf is not None:
            P = self.P

            # Clock buffers carry their ``(P, B, 1)`` transposed view so
            # the per-iteration broadcast add never re-derives it.
            def _clock(B: int, P: int = P) -> tuple:
                c = np.empty((B, P))
                return c, c.T[:, :, None]

            self._walk_clocks = [
                self._register_buf(_clock) for _ in range(3)
            ]
            self._walk_bufs = [
                self._register_buf(lambda B, P=P: np.empty((B, P)))
                for _ in range(5)
            ]

            # Transposed scratch: the walk copies the built matrix
            # into ``(P, B, P)`` once per execute so every iteration's
            # broadcast add and max fold run over contiguous slices.
            # The per-``k`` row views ride along.
            def _tmp(B: int, P: int = P) -> tuple:
                t = np.empty((P, B, P))
                return t, tuple(t)

            self._walk_tmp = self._register_buf(_tmp)
            self._walk_mt = self._register_buf(
                lambda B, P=P: np.empty((P, B, P))
            )
            # When the whole build is one fused tri+dense step, swap in
            # its transposed twin: it writes ``_walk_mt`` directly and
            # the walk skips the per-execute transpose copy.
            self._matrix_transposed = False
            if len(self._builders) == 1:
                maker = getattr(
                    self._builders[0], "make_transposed", None
                )
                if maker is not None:
                    self._builders = [maker(self._walk_mt)]
                    self._matrix_transposed = True

    # -- compile-time helpers ------------------------------------------

    def _bake_nn_constants(self, sections, kinds) -> dict:
        """Per nearest-neighbour section: the node-constant vectors of
        :meth:`SectionTimeline._nn_bands`, so store rows carry finished
        band values and the hot path does zero band arithmetic."""
        tl = self._timeline
        micro = self._model.inputs.micro
        out = {}
        for si, section in enumerate(sections):
            if kinds[si] != _TRI:
                continue
            x = tl._transfer(section.comm.message_bytes)
            left_add = np.zeros(self.P)
            left_add[: self.P - 1] = x + tl._nn_or2_tail
            out[si] = {
                "os": micro.send_overhead,
                "post_mult": tl._nn_post_mult,
                "or12": tl._nn_or12,
                "left_add": left_add,
                "right_add": x + micro.recv_overhead,
            }
        return out

    def _register_buf(self, factory: Callable[[int], object]) -> int:
        self._buf_factories.append(factory)
        return len(self._buf_factories) - 1

    def _ctx(self, B: int) -> list:
        ctx = self._ctx_cache.get(B)
        if ctx is None:
            if len(self._ctx_cache) >= 8:
                self._ctx_cache.clear()
            ctx = [f(B) for f in self._buf_factories]
            self._ctx_cache[B] = ctx
        return ctx

    def _neginf_buf(self) -> int:
        P = self.P
        return self._register_buf(
            lambda B, P=P: np.full((B, P, P), -np.inf)
        )

    def _tri_view_buf(self) -> int:
        """A -inf-prefilled matrix buffer plus strided views of its
        three bands (off-band cells are written once, at allocation)."""
        P = self.P

        def make(B: int, P: int = P):
            buf = np.full((B, P, P), -np.inf)
            flat = buf.reshape(B, P * P)
            return (
                buf,
                flat[:, :: P + 1],        # diagonal, P entries
                flat[:, P:: P + 1],       # sub-diagonal  A[k+1, k]
                flat[:, 1:: P + 1],       # super-diagonal A[k, k+1]
            )

        return self._register_buf(make)

    # -- lowering -------------------------------------------------------

    def _lower(self, sections, kinds) -> None:
        """Fold the section chain into builders + walk ops.

        The pending state tracks the max-plus matrix of the sections
        composed so far; every transition either folds the new section
        into the state for free (diagonals, banded builds) or flushes
        the state as a walk op.  The batch kernel composes the same
        chain generically at run time; here the composition order and
        operand pairing are preserved so results stay within rounding
        of that path (and well within the 1e-12 scalar contract).
        """
        state: object = None  # None | list[int] (diag cols) | _TriState
        state_kind = "empty"  # empty | diag | tri | densep | mat
        dense_base: Optional[np.ndarray] = None
        dense_cols: List[int] = []
        dense_rows: List[int] = []
        mat_buf: Optional[int] = None
        tri_fold_bufs: Optional[Tuple[int, int]] = None
        n_matrix_ops = 0
        tl = self._timeline

        def flush() -> None:
            nonlocal state, state_kind, dense_base, dense_cols, dense_rows
            nonlocal mat_buf, n_matrix_ops
            if state_kind == "empty":
                return
            if state_kind == "diag":
                cols = tuple(state)
                vbuf = self._register_buf(
                    lambda B, P=self.P: np.empty((B, P))
                )

                def build_vec(g, ctx, cols=cols, vbuf=vbuf):
                    ctx[vbuf][:] = _colsum(g, cols)

                self._builders.append(build_vec)
                self._op_makers.append(
                    lambda g, ctx, vbuf=vbuf:
                        (lambda clocks, v=ctx[vbuf]: clocks + v)
                )
            elif state_kind == "tri":
                buf = self._tri_view_buf()
                self._builders.append(self._make_tri_materialize(state, buf))
                self._emit_matrix_op(buf)
                n_matrix_ops += 1
                mat_buf = buf
            elif state_kind == "densep":
                buf = self._neginf_buf()
                self._builders.append(
                    self._make_dense_materialize(
                        dense_base, tuple(dense_cols), tuple(dense_rows), buf
                    )
                )
                self._emit_matrix_op(buf)
                n_matrix_ops += 1
                mat_buf = buf
            elif state_kind == "mat":
                self._emit_matrix_op(state)
                n_matrix_ops += 1
                mat_buf = state
            state = None
            state_kind = "empty"
            dense_base = None
            dense_cols = []
            dense_rows = []

        for si, section in enumerate(sections):
            kind = kinds[si]
            spec = self._col_specs[si]
            c0 = spec[4]
            if kind == _DIAG:
                if state_kind == "empty":
                    state = [c0]
                    state_kind = "diag"
                elif state_kind == "diag":
                    state.append(c0)
                elif state_kind == "tri":
                    state.fold_outer_diag(c0)
                elif state_kind == "densep":
                    dense_rows.append(c0)
                else:  # mat
                    buf = state

                    def fold_diag(g, ctx, buf=buf, c0=c0):
                        M = ctx[buf][0] if isinstance(ctx[buf], tuple) \
                            else ctx[buf]
                        M += g[:, :, c0][:, :, None]

                    self._builders.append(fold_diag)
            elif kind == _TRI:
                tri = _TriState(c0, c0 + 1, c0 + 2)
                if state_kind == "empty":
                    state = tri
                    state_kind = "tri"
                elif state_kind == "diag":
                    tri.fold_inner_diag(state)
                    state = tri
                    state_kind = "tri"
                elif state_kind == "tri":
                    # Materialize the pending exchange, then fold this
                    # one onto it with banded row updates.
                    buf = self._tri_view_buf()
                    self._builders.append(
                        self._make_tri_materialize(state, buf)
                    )
                    if tri_fold_bufs is None:
                        tri_fold_bufs = (
                            self._neginf_buf(), self._neginf_buf()
                        )
                    self._builders.append(
                        self._make_tri_fold(tri, buf, tri_fold_bufs)
                    )
                    state = buf
                    state_kind = "mat"
                elif state_kind == "mat":
                    if tri_fold_bufs is None:
                        tri_fold_bufs = (
                            self._neginf_buf(), self._neginf_buf()
                        )
                    self._builders.append(
                        self._make_tri_fold(tri, state, tri_fold_bufs)
                    )
                else:  # densep: no cheap banded fold onto a pending
                    # dense column structure — flush and restart.
                    flush()
                    state = tri
                    state_kind = "tri"
            elif kind == _DENSE:
                base = tl._maxplus_matrix(
                    section.comm.pattern, section.comm.message_bytes
                )
                if state_kind == "empty":
                    dense_base = base
                    dense_cols = [c0]
                    state_kind = "densep"
                elif state_kind == "diag":
                    dense_base = base
                    dense_cols = [c0] + list(state)
                    state = None
                    state_kind = "densep"
                elif state_kind == "tri":
                    buf = self._neginf_buf()
                    self._builders.append(
                        self._make_tri_dense_fuse(state, base, c0, buf)
                    )
                    state = buf
                    state_kind = "mat"
                else:  # densep or mat
                    flush()
                    dense_base = base
                    dense_cols = [c0]
                    state_kind = "densep"
            else:  # _PIPE
                flush()
                self._emit_pipe_op(section, spec)
        flush()
        if n_matrix_ops == 1 and len(self._op_makers) == 1:
            self._matrix_buf = mat_buf

    def _emit_matrix_op(self, buf: int) -> None:
        P = self.P
        if self._ops_tmp is None:
            # One (P, B, P) scratch shared by every matrix op: ops run
            # sequentially and each finishes with the scratch before
            # the next starts.
            self._ops_tmp = self._register_buf(
                lambda B, P=P: np.empty((P, B, P))
            )
        tmp_buf = self._ops_tmp
        # Each matrix op keeps its own transposed copy alive across
        # the whole walk (the shared scratch is overwritten per op).
        mt_buf = self._register_buf(lambda B, P=P: np.empty((P, B, P)))

        def make(g, ctx, buf=buf):
            entry = ctx[buf]
            M = entry[0] if isinstance(entry, tuple) else entry

            if P == 1:
                return lambda clocks: (M + clocks[:, None, :]).max(axis=2)

            # ``MT[k, b, n] = M[b, n, k]``: one strided copy per
            # execute; every iteration then adds and folds over
            # contiguous slices (see _walk_fused).
            MT = ctx[mt_buf]
            np.copyto(MT, M.transpose(2, 0, 1))
            tmp = ctx[tmp_buf]
            tviews = [tmp[k] for k in range(P)]

            def op(clocks):
                np.add(MT, clocks.T[:, :, None], out=tmp)
                # Unrolled k-axis max: identical fold order to
                # ``.max(axis=2)`` at a fraction of the dispatch cost.
                out = np.maximum(tviews[0], tviews[1])
                for k in range(2, P):
                    np.maximum(out, tviews[k], out=out)
                return out

            return op

        self._op_makers.append(make)

    def _emit_pipe_op(self, section, spec) -> None:
        """A pipeline walk op with the clock-independent prefix sums
        hoisted into the builder (the arithmetic replays
        :meth:`SectionTimeline._pipeline_arrays_batch` exactly)."""
        _, _, lo, hi, c0 = spec
        tiles = hi - lo
        P = self.P
        micro = self._model.inputs.micro
        os_ = micro.send_overhead
        or_ = micro.recv_overhead
        x = self._timeline._transfer(section.comm.message_bytes)
        pre_buf = self._register_buf(
            lambda B, P=P, tiles=tiles: np.empty((P, B, tiles))
        )
        off_buf = self._register_buf(
            lambda B, P=P, tiles=tiles: np.empty((P, B, tiles))
        )

        def build_prefix(g, ctx, c0=c0, tiles=tiles):
            prefix = ctx[pre_buf]
            offsets = ctx[off_buf]
            for n in range(P):
                cost = g[:, n, c0:c0 + tiles].astype(np.float64, copy=True)
                if n < P - 1:
                    cost += os_
                if n > 0:
                    cost += or_
                np.cumsum(cost, axis=1, out=prefix[n])
                offsets[n, :, 0] = 0.0
                offsets[n, :, 1:] = prefix[n, :, :-1]

        self._builders.append(build_prefix)

        def make_op(g, ctx):
            prefix = ctx[pre_buf]
            offsets = ctx[off_buf]

            def pipe(clocks):
                B = clocks.shape[0]
                end = np.empty((B, P))
                upstream = None
                for n in range(P):
                    if upstream is None:
                        now = clocks[:, n, None] + prefix[n]
                    else:
                        frontier = np.maximum.accumulate(
                            upstream - offsets[n], axis=1
                        )
                        now = prefix[n] + np.maximum(
                            clocks[:, n, None], frontier
                        )
                    if n < P - 1:
                        upstream = now + x
                    end[:, n] = now[:, -1]
                return end

            return pipe

        self._op_makers.append(make_op)

    def _make_tri_materialize(self, tri: _TriState, buf: int) -> Callable:
        P = self.P
        dterms = tuple(tri.dterms)
        lterms = tuple(tri.lterms)
        rterms = tuple(tri.rterms)

        def build(g, ctx):
            M, diag_v, sub_v, sup_v = ctx[buf]
            # Later folds mutate M in place, so the off-band cells must
            # be re-cleared on every build, not just at allocation.
            M.fill(-np.inf)
            diag_v[:] = _band(g, dterms, P)
            sub_v[:] = _band(g, lterms, P - 1)
            sup_v[:] = _band(g, rterms, P - 1)

        return build

    def _make_tri_fold(
        self, tri: _TriState, mbuf: int, scratch: Tuple[int, int]
    ) -> Callable:
        """Fold a tridiagonal section *onto* a materialized matrix:
        ``new[n, j] = max(D[n] + M[n, j], L[n-1] + M[n-1, j],
        R[n] + M[n+1, j])`` via three banded row updates (edge rows of
        the scratch buffers stay -inf from allocation)."""
        P = self.P
        dterms = tuple(tri.dterms)
        lterms = tuple(tri.lterms)
        rterms = tuple(tri.rterms)
        s1, s2 = scratch

        def build(g, ctx):
            entry = ctx[mbuf]
            M = entry[0] if isinstance(entry, tuple) else entry
            D = _band(g, dterms, P)
            L = _band(g, lterms, P - 1)
            R = _band(g, rterms, P - 1)
            t1 = ctx[s1]
            t2 = ctx[s2]
            np.add(M[:, :-1, :], L[:, :, None], out=t1[:, 1:, :])
            np.add(M[:, 1:, :], R[:, :, None], out=t2[:, :-1, :])
            np.add(M, D[:, :, None], out=M)
            np.maximum(M, t1, out=M)
            np.maximum(M, t2, out=M)

        return build

    def _make_tri_dense_fuse(
        self, tri: _TriState, base: np.ndarray, ts_col: int, buf: int
    ) -> Callable:
        """The fused collective-after-exchange build (e.g. Jacobi's
        reduction after its boundary exchange): the composed matrix's
        column ``j`` only sees the exchange matrix's three band values
        of node ``j``, so the ``(B, P, P, P)`` generic composition
        collapses to three broadcast adds and two maxima."""
        P = self.P
        dterms = tuple(tri.dterms)
        lterms = tuple(tri.lterms)
        rterms = tuple(tri.rterms)
        # Constant-fold the three base alignments into contiguous
        # copies, and pre-register the band work buffers with both
        # broadcast views (row-major and transposed): the hot build is
        # then six out= ufunc calls.
        base3 = np.ascontiguousarray(base[None, :, :])
        base_sup = np.ascontiguousarray(base[None, :, 1:])
        base_sub = np.ascontiguousarray(base[None, :, : P - 1])

        def _wband(width: int) -> int:
            def f(B: int, width: int = width) -> tuple:
                w = np.empty((B, width))
                return w, w[:, None, :], w.T[:, :, None]

            return self._register_buf(f)

        w0buf = _wband(P)
        w1wbuf = _wband(P - 1)
        w2wbuf = _wband(P - 1)

        def _sup(B: int, P: int = P) -> tuple:
            t = np.full((B, P, P), -np.inf)
            return t, t[:, :, : P - 1]

        def _sub(B: int, P: int = P) -> tuple:
            t = np.full((B, P, P), -np.inf)
            return t, t[:, :, 1:]

        w1buf = self._register_buf(_sup)
        w2buf = self._register_buf(_sub)

        def build(g, ctx):
            M = ctx[buf]
            t1, t1s = ctx[w1buf]
            t2, t2s = ctx[w2buf]
            w0 = ctx[w0buf]
            w1 = ctx[w1wbuf]
            w2 = ctx[w2wbuf]
            ts = g[:, :, ts_col]
            np.add(ts, _band(g, dterms, P), out=w0[0])
            np.add(ts[:, 1:], _band(g, lterms, P - 1), out=w1[0])
            np.add(ts[:, : P - 1], _band(g, rterms, P - 1), out=w2[0])
            np.add(base3, w0[1], out=M)
            np.add(base_sup, w1[1], out=t1s)
            np.add(base_sub, w2[1], out=t2s)
            np.maximum(M, t1, out=M)
            np.maximum(M, t2, out=M)

        def make_transposed(mt_buf: int) -> Callable:
            """Specialized variant writing the walk's ``(P, B, P)``
            transposed matrix directly — every output of the six ufunc
            calls is contiguous and the walk skips its transpose copy.
            Values are identical element for element (the same three
            pairwise maxima of the same sums), only the layout differs.
            """
            baseT3 = np.ascontiguousarray(base.T[:, None, :])
            base_supT = np.ascontiguousarray(base.T[1:, None, :])
            base_subT = np.ascontiguousarray(base.T[: P - 1, None, :])

            def _edge(drop_last: bool):
                def f(B: int, P: int = P, drop_last: bool = drop_last
                      ) -> tuple:
                    t = np.full((P, B, P), -np.inf)
                    return t, (t[: P - 1] if drop_last else t[1:])

                return self._register_buf(f)

            t1tbuf = _edge(True)
            t2tbuf = _edge(False)

            def build_t(g, ctx):
                MT = ctx[mt_buf]
                t1, t1s = ctx[t1tbuf]
                t2, t2s = ctx[t2tbuf]
                w0 = ctx[w0buf]
                w1 = ctx[w1wbuf]
                w2 = ctx[w2wbuf]
                ts = g[:, :, ts_col]
                np.add(ts, _band(g, dterms, P), out=w0[0])
                np.add(ts[:, 1:], _band(g, lterms, P - 1), out=w1[0])
                np.add(ts[:, : P - 1], _band(g, rterms, P - 1), out=w2[0])
                np.add(baseT3, w0[2], out=MT)
                np.add(base_supT, w1[2], out=t1s)
                np.add(base_subT, w2[2], out=t2s)
                np.maximum(MT, t1, out=MT)
                np.maximum(MT, t2, out=MT)

            return build_t

        build.make_transposed = make_transposed
        return build

    def _make_dense_materialize(
        self,
        base: np.ndarray,
        cols: Tuple[int, ...],
        rows: Tuple[int, ...],
        buf: int,
    ) -> Callable:
        def build(g, ctx):
            M = ctx[buf]
            np.add(base[None, :, :], _colsum(g, cols)[:, None, :], out=M)
            if rows:
                M += _colsum(g, rows)[:, :, None]

        return build

    # -- table store ----------------------------------------------------

    def _lookup(self, counts: np.ndarray) -> np.ndarray:
        if self._index is not None:
            return self._index[self._nodes, counts]
        idx = np.empty(counts.shape, dtype=np.int64)
        get = self._index_dict.get
        B, P = counts.shape
        for b in range(B):
            row = counts[b]
            for n in range(P):
                idx[b, n] = get((n, int(row[n])), -1)
        return idx

    def _fill_missing(self, counts: np.ndarray, idx: np.ndarray) -> None:
        model = self._model
        cache = model._tables_cache
        for b, n in np.argwhere(idx < 0):
            n = int(n)
            rows = int(counts[b, n])
            if self._index is not None:
                if self._index[n, rows] >= 0:
                    continue
            elif (n, rows) in self._index_dict:
                continue
            entry = cache.get((n, rows)) if cache is not None else None
            if entry is None:
                entry = model._node_tables_numpy(
                    n, rows, model.oracle.plan(n, rows)
                )
                if cache is not None:
                    cache.put((n, rows), entry)
            self._insert(n, rows, entry)

    def _insert(self, n: int, rows: int, entry) -> None:
        if self._used >= MAX_STORE_ROWS:
            # Reset rather than grow without bound; the model's table
            # LRU keeps the expensive closed-form work warm.
            if self._index is not None:
                self._index.fill(-1)
            else:
                self._index_dict.clear()
            self._used = 0
            self.store_resets += 1
        if self._used == self._data.shape[0]:
            grown = np.empty(
                (min(self._data.shape[0] * 2, MAX_STORE_ROWS), self.n_cols)
            )
            grown[: self._used] = self._data[: self._used]
            self._data = grown
        totals, _computes, source = entry
        vec = self._data[self._used]
        for kind, si, lo, hi, c0 in self._col_specs:
            if kind == _TRI:
                consts = self._nn_consts[si]
                ts = totals[lo]
                post = source[si] + consts["os"]
                local = ts + consts["post_mult"][n] * post
                vec[c0] = local + consts["or12"][n]
                vec[c0 + 1] = local + consts["left_add"][n]
                vec[c0 + 2] = (ts + post) + consts["right_add"]
            elif kind == _PIPE:
                vec[c0:c0 + (hi - lo)] = totals[lo:hi]
            elif hi - lo == 1:
                vec[c0] = totals[lo]
            else:
                # P == 1 pipeline folded to a diagonal: section total is
                # the tile sum, matching the batch kernel's axis sum.
                vec[c0] = totals[lo:hi].sum()
        if self._index is not None:
            self._index[n, rows] = self._used
        else:
            self._index_dict[(n, rows)] = self._used
        self._used += 1

    # -- execution ------------------------------------------------------

    def execute(self, counts: np.ndarray, n_iter: int) -> np.ndarray:
        """Score a validated ``(B, P)`` int64 candidate matrix; returns
        the ``(B,)`` predicted totals (slowest node per candidate)."""
        B = counts.shape[0]
        self.executes += 1
        key = counts.tobytes()
        g = self._g_memo.get(key)
        if g is None:
            idx = self._lookup(counts)
            if idx.min() < 0:
                self._fill_missing(counts, idx)
                idx = self._lookup(counts)
            # ``mode="clip"`` skips bounds checks — every index is
            # valid after the fill above.
            g = self._data.take(idx, axis=0, mode="clip")
            if B <= 64:  # bound the memo's footprint
                if len(self._g_memo) >= 8:
                    self._g_memo.pop(next(iter(self._g_memo)))
                self._g_memo[key] = g
        ctx = self._ctx(B)
        for builder in self._builders:
            builder(g, ctx)
        if self._matrix_buf is not None:
            if self._matrix_transposed:
                M = None
            else:
                entry = ctx[self._matrix_buf]
                M = entry[0] if isinstance(entry, tuple) else entry
            walk = _numba_walk
            if walk is not None:
                try:
                    # The jitted walk wants ``(B, n, k)`` indexing; the
                    # transposed build hands it a strided view.
                    nM = (ctx[self._walk_mt].transpose(1, 2, 0)
                          if M is None else M)
                    totals = walk(nM, n_iter)
                except Exception:
                    totals = self._walk_fused(M, n_iter, ctx)
            else:
                totals = self._walk_fused(M, n_iter, ctx)
        else:
            ops = [make(g, ctx) for make in self._op_makers]
            totals = self._walk_ops(ops, n_iter, B)
        P = self.P
        if P == 1:
            return totals[:, 0].copy()
        # Pairwise-halving max over nodes (totals is walk scratch).
        m = P
        while m > 2:
            h = m // 2
            np.maximum(
                totals[:, : m - h], totals[:, h:m], out=totals[:, : m - h]
            )
            m -= h
        return np.maximum(totals[:, 0], totals[:, 1])

    def _walk_fused(self, M: np.ndarray, n_iter: int, ctx: list
                    ) -> np.ndarray:
        """Single-matrix steady-state walk over rotating buffers.

        Per-candidate freezing replays
        :meth:`MhetaModel._steady_walk_batch` term for term: the same
        tolerance expression, the same ``last + steady * k``
        extrapolation, the same final fallback.
        """
        wb = self._walk_bufs
        cbufs = tuple(ctx[i] for i in self._walk_clocks)
        s0, s1 = ctx[wb[0]], ctx[wb[1]]
        absb, diffb, tolb = ctx[wb[2]], ctx[wb[3]], ctx[wb[4]]
        # ``MT[k, b, n] = M[b, n, k]``: one strided copy per execute
        # buys contiguous reads for every iteration's add and fold.
        # ``M is None`` means the transposed build already wrote it.
        MT = ctx[self._walk_mt]
        if M is not None:
            np.copyto(MT, M.transpose(2, 0, 1))
        P, B = MT.shape[0], MT.shape[1]
        tmp, tviews = ctx[self._walk_tmp]
        totals = np.empty((B, P))
        cur, curT = cbufs[0]
        cur.fill(0.0)
        last = None
        second_last = None
        steady_now = None
        prev_steady = None
        active: Optional[np.ndarray] = None
        ci = 0
        si = 0
        simulate = 0
        while simulate < n_iter:
            ci = (ci + 1) % 3
            nxt, nxtT = cbufs[ci]
            np.add(MT, curT, out=tmp)
            # Pairwise-halving k-axis max: numpy's reduce machinery
            # costs ~4x more than explicit maxima on these tiny
            # arrays, and halving folds P slabs in ceil(log2 P) calls
            # (max is exact, so any association is bit-identical).
            # Matrix mode implies P >= 2 (P == 1 lowers every section
            # to a diagonal column, never to a matrix).
            m = P
            while m > 2:
                h = m // 2
                np.maximum(tmp[: m - h], tmp[h:m], out=tmp[: m - h])
                m -= h
            np.maximum(tviews[0], tviews[1], out=nxt)
            second_last, last = last, nxt
            cur, curT = nxt, nxtT
            simulate += 1
            if second_last is None:
                continue
            steady_now = (s0, s1)[si]
            si ^= 1
            np.subtract(last, second_last, out=steady_now)
            if prev_steady is not None:
                np.subtract(steady_now, prev_steady, out=diffb)
                np.abs(diffb, out=diffb)
                # Certain-convergence shortcut: the tolerance is
                # ``_ATOL + _RTOL * |prev|`` >= ``_ATOL`` everywhere,
                # so a max abs diff within ``_ATOL`` proves every
                # candidate converged this iteration — same freeze
                # point, same extrapolation, without the elementwise
                # tolerance machinery.
                if active is None and diffb.max() <= _ATOL:
                    np.multiply(steady_now, n_iter - simulate, out=diffb)
                    np.add(last, diffb, out=totals)
                    return totals
                np.multiply(absb, _RTOL, out=tolb)
                tolb += _ATOL
                converged = (diffb <= tolb).all(axis=1)
                if converged.any():
                    if active is None and converged.all():
                        np.multiply(
                            steady_now, n_iter - simulate, out=diffb
                        )
                        np.add(last, diffb, out=totals)
                        return totals
                    if active is None:
                        active = np.ones(B, dtype=bool)
                    newly = active & converged
                    if newly.any():
                        totals[newly] = (
                            last[newly]
                            + steady_now[newly] * (n_iter - simulate)
                        )
                        active[newly] = False
                        if not active.any():
                            return totals
            prev_steady = steady_now
            np.abs(steady_now, out=absb)
        if active is None:
            totals[:] = last
        else:
            totals[active] = last[active]
        return totals

    def _walk_ops(self, ops, n_iter: int, B: int) -> np.ndarray:
        """Generic walk for multi-op plans (collective chains,
        pipelines) — the exact control flow of
        :meth:`MhetaModel._steady_walk_batch`."""
        P = self.P
        clocks = np.zeros((B, P))
        totals = np.empty((B, P))
        active = np.ones(B, dtype=bool)
        frozen_none = True
        second_last = None
        last = None
        prev_steady = None
        simulate = 0
        while simulate < n_iter:
            for op in ops:
                clocks = op(clocks)
            second_last, last = last, clocks
            simulate += 1
            if second_last is not None:
                steady_now = last - second_last
                if prev_steady is not None:
                    diff = np.abs(steady_now - prev_steady)
                    # Certain-convergence shortcut (see _walk_fused):
                    # a max abs diff within ``_ATOL`` converges every
                    # candidate at this same freeze point.
                    if frozen_none and diff.max() <= _ATOL:
                        totals[:] = last
                        totals += steady_now * (n_iter - simulate)
                        return totals
                    converged = (
                        diff <= _ATOL + _RTOL * np.abs(prev_steady)
                    ).all(axis=1)
                    newly = active & converged
                    if newly.any():
                        frozen_none = False
                        totals[newly] = (
                            last[newly]
                            + steady_now[newly] * (n_iter - simulate)
                        )
                        active[newly] = False
                        if not active.any():
                            return totals
                prev_steady = steady_now
        totals[active] = last[active]
        return totals

    @property
    def stats(self) -> dict:
        """Per-plan diagnostics (store occupancy, execute count)."""
        return {
            "mode": "matrix" if self._matrix_buf is not None else "ops",
            "store_rows": self._used,
            "store_resets": self.store_resets,
            "executes": self.executes,
            "columns": self.n_cols,
        }


# -- process-wide plan cache --------------------------------------------------

_plan_cache = LRUCache(DEFAULT_PLAN_CACHE_ENTRIES, threadsafe=True)
_compiles = 0
_compile_seconds = 0.0


def get_plan(
    model,
    telemetry: Optional[Recorder] = None,
    *,
    key: Optional[str] = None,
    factory: Optional[Callable] = None,
):
    """The compiled plan for ``model``'s triple: a cache hit when an
    equivalent model (same structure fingerprint) compiled one earlier
    in this process, otherwise a fresh compile under
    ``span/plan/compile``.

    ``key`` and ``factory`` let other plan kinds (the 2-D kernel's
    :class:`repro.twod.plan2d.EvaluationPlan2D`) share this same
    process-wide LRU, compile telemetry, and numba resolution: ``key``
    defaults to ``model.fingerprint`` and ``factory`` to
    :class:`EvaluationPlan`.
    """
    global _compiles, _compile_seconds
    if key is None:
        key = model.fingerprint
    plan = _plan_cache.get(key)
    if plan is None:
        build = factory if factory is not None else EvaluationPlan
        _resolve_numba_walk()
        t0 = time.perf_counter()
        if telemetry:
            with telemetry.span("plan/compile"):
                plan = build(model)
        else:
            plan = build(model)
        dt = time.perf_counter() - t0
        _compiles += 1
        _compile_seconds += dt
        _plan_cache.put(key, plan)
        if telemetry:
            telemetry.count("model/plan_cache/compiles")
    return plan


def discard_plan(fingerprint: str) -> bool:
    """Drop one compiled plan (resident-model eviction); returns
    whether an entry was present."""
    return _plan_cache.pop(fingerprint, None) is not None


def plan_cache_stats() -> dict:
    """Hit/miss/compile counters of the process-wide plan cache, in the
    same shape the table-LRU counters use (plus compile totals)."""
    stats = _plan_cache.stats
    stats["compiles"] = _compiles
    stats["compile_seconds"] = _compile_seconds
    stats["numba_active"] = numba_active()
    return stats


def reset_plan_cache() -> None:
    """Clear the plan cache and counters (tests and benchmarks)."""
    global _compiles, _compile_seconds
    _plan_cache.clear()
    _plan_cache.hits = 0
    _plan_cache.misses = 0
    _plan_cache.evictions = 0
    _compiles = 0
    _compile_seconds = 0.0
