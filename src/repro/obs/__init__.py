"""``repro.obs`` — telemetry (spans, counters, phase breakdowns).

Create a :class:`Recorder`, pass it as the ``telemetry=`` keyword of
any entry point (``MhetaModel.predict``, ``Searcher.search``,
``emulate``, ``run_spectrum``, ``predict_seconds_sharded``, ...), and
read the result with :meth:`Recorder.describe`, ``to_json`` or
``to_csv``::

    from repro import Recorder
    rec = Recorder()
    model.predict(dist, report=True, telemetry=rec)
    print(rec.describe())

Passing ``telemetry=None`` (the default everywhere) keeps every
instrumented path a near-no-op.
"""

from repro.obs.deprecation import reset_warnings, warn_once
from repro.obs.recorder import NULL_RECORDER, NullRecorder, Recorder, as_recorder

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "as_recorder",
    "warn_once",
    "reset_warnings",
]
