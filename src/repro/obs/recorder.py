"""Lightweight, zero-dependency telemetry: spans, counters, gauges.

The whole observability layer is one mutable :class:`Recorder` that
entry points accept as a ``telemetry=`` keyword.  Three primitives
cover everything the reproduction needs:

``count(name, n)``
    monotonic counters (cache hits, evaluations, emulator runs);
``set(name, value)``
    gauges — last-write-wins scalars (phase breakdowns, cache sizes);
``observe(name, value, n)``
    accumulating series with total/count/min/max (per-round candidate
    batches, per-node emulated phase seconds);
``span(name)``
    a context manager timing a region; nested spans build a
    slash-joined hierarchical path (``predict/tables``) and feed the
    wall time into ``observe("span/" + path, dt)``.

Names are flat slash-separated strings (``model/table_cache/hits``);
there is no registry and no schema — a name exists once something
records to it.

Cost discipline: a *disabled* recorder must be near-free.  Two
mechanisms enforce that.  ``Recorder.__bool__`` returns ``enabled``,
so hot paths guard with ``if telemetry:`` and pay one truthiness
check when telemetry is off (``None`` and a disabled recorder are both
falsy).  For call sites that prefer unconditional calls,
:data:`NULL_RECORDER` (a :class:`NullRecorder`) turns every primitive
into a constant-return no-op with no allocation; :func:`as_recorder`
normalises ``None``/falsy to it.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "as_recorder",
]


class _Span:
    """Timed region handle; re-entrant per instance is not supported —
    each ``span()`` call makes a fresh one."""

    __slots__ = ("_rec", "_name", "_start")

    def __init__(self, rec: "Recorder", name: str) -> None:
        self._rec = rec
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        rec = self._rec
        rec._stack.append(self._name)
        self._start = rec._clock()
        return self

    def __exit__(self, *exc: object) -> None:
        rec = self._rec
        dt = rec._clock() - self._start
        path = "/".join(rec._stack)
        rec._stack.pop()
        rec.observe("span/" + path, dt)


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Recorder:
    """Collects counters, gauges, and observation series in plain dicts.

    A recorder is cheap to create and purely in-memory; nothing is
    global.  It is *not* thread- or process-safe — parallel layers
    record on the coordinating side only (worker processes cannot
    mutate the parent's recorder) and :meth:`merge` folds one
    recorder into another when a caller collects several.
    """

    __slots__ = ("enabled", "counters", "gauges", "series", "_stack", "_clock")

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.enabled = bool(enabled)
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        # name -> [total, count, min, max]
        self.series: Dict[str, List[float]] = {}
        self._stack: List[str] = []
        self._clock = clock

    def __bool__(self) -> bool:
        return self.enabled

    # -- primitives ----------------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    def set(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.gauges[name] = value

    def observe(self, name: str, value: float, n: int = 1) -> None:
        if not self.enabled:
            return
        cell = self.series.get(name)
        if cell is None:
            self.series[name] = [value, n, value, value]
        else:
            cell[0] += value
            cell[1] += n
            if value < cell[2]:
                cell[2] = value
            if value > cell[3]:
                cell[3] = value

    def span(self, name: str):
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "Recorder") -> None:
        """Fold ``other``'s data into this recorder: counters add,
        gauges take the other's value, series combine."""
        for k, v in other.counters.items():
            self.counters[k] = self.counters.get(k, 0) + v
        self.gauges.update(other.gauges)
        for k, cell in other.series.items():
            mine = self.series.get(k)
            if mine is None:
                self.series[k] = list(cell)
            else:
                mine[0] += cell[0]
                mine[1] += cell[1]
                mine[2] = min(mine[2], cell[2])
                mine[3] = max(mine[3], cell[3])

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.series.clear()
        del self._stack[:]

    # -- export --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        series = {}
        for name, (total, count, lo, hi) in sorted(self.series.items()):
            series[name] = {
                "total": total,
                "count": count,
                "min": lo,
                "max": hi,
                "mean": total / count if count else 0.0,
            }
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "series": series,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    def to_csv(self) -> str:
        """Flat CSV: ``kind,name,value,count,min,max,mean`` — counters
        and gauges leave the statistics columns empty."""
        lines = ["kind,name,value,count,min,max,mean"]
        for name, v in sorted(self.counters.items()):
            lines.append(f"counter,{name},{v!r},,,,")
        for name, v in sorted(self.gauges.items()):
            lines.append(f"gauge,{name},{v!r},,,,")
        for name, (total, count, lo, hi) in sorted(self.series.items()):
            mean = total / count if count else 0.0
            lines.append(
                f"series,{name},{total!r},{count},{lo!r},{hi!r},{mean!r}"
            )
        return "\n".join(lines) + "\n"

    def describe(self) -> str:
        """Human-readable dump, sections in counter/gauge/series order."""
        out: List[str] = []
        if self.counters:
            out.append("counters:")
            for name, v in sorted(self.counters.items()):
                out.append(f"  {name:<44s} {v:g}")
        if self.gauges:
            out.append("gauges:")
            for name, v in sorted(self.gauges.items()):
                out.append(f"  {name:<44s} {v:.6g}")
        if self.series:
            out.append("series:")
            for name, (total, count, lo, hi) in sorted(self.series.items()):
                mean = total / count if count else 0.0
                out.append(
                    f"  {name:<44s} total={total:.6g} n={count:g}"
                    f" mean={mean:.3g} min={lo:.3g} max={hi:.3g}"
                )
        return "\n".join(out) if out else "(no telemetry recorded)"


class NullRecorder(Recorder):
    """A recorder that records nothing and is always falsy.

    Exists so internal code can normalise ``telemetry=None`` once (via
    :func:`as_recorder`) and then call primitives unconditionally in
    warm-but-not-hot paths without per-call ``if`` guards.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def __bool__(self) -> bool:
        return False

    def count(self, name: str, n: float = 1) -> None:
        return None

    def set(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float, n: int = 1) -> None:
        return None

    def span(self, name: str):
        return _NULL_SPAN


NULL_RECORDER = NullRecorder()


def as_recorder(telemetry: Optional[Recorder]) -> Recorder:
    """Normalise a ``telemetry=`` argument: ``None`` (or any falsy
    recorder) becomes :data:`NULL_RECORDER`."""
    return telemetry if telemetry else NULL_RECORDER
