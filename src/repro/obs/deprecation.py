"""Warn-once machinery for deprecated public aliases.

The PR-5 API consolidation keeps the old entry points
(``predict_seconds`` and friends) as thin shims.  Each shim calls
:func:`warn_once` with its own key, so a long sweep that calls a
deprecated alias a million times emits exactly one
``DeprecationWarning`` per process.  Tests that assert the warning
call :func:`reset_warnings` first.
"""

from __future__ import annotations

import warnings
from typing import Set

__all__ = ["warn_once", "reset_warnings"]

_WARNED: Set[str] = set()


def warn_once(alias: str, replacement: str, stacklevel: int = 3) -> None:
    """Emit one ``DeprecationWarning`` per ``alias`` per process."""
    if alias in _WARNED:
        return
    _WARNED.add(alias)
    warnings.warn(
        f"{alias} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset_warnings() -> None:
    """Forget which aliases have warned (test hook)."""
    _WARNED.clear()
