"""Command-line interface: ``python -m repro <command>``.

Exposes the experiment harness and the runtime system without writing
any Python:

* ``table1``      — print the Table-1 configurations;
* ``sweep``       — actual-vs-predicted across the spectrum for one
  application on one configuration;
* ``predict``     — MHETA's per-node prediction report for one
  distribution;
* ``search``      — run one search algorithm with MHETA;
* ``adaptive``    — the Section-6 adaptive runtime end to end;
* ``accuracy``    — one Figure-9 panel;
* ``timing``      — the evaluation-cost measurement;
* ``spreads``     — the Section-5.3 best-vs-worst table;
* ``ablation``    — the error-source ablation;
* ``robustness``  — the non-dedicated-environment study;
* ``stats``       — one instrumented seed run dumping the full
  telemetry surface (phase breakdown, cache and search counters);
* ``serve``       — the always-on distribution-advisor service
  (asyncio coordinator, micro-batched concurrent queries, warm
  caches);
* ``query``       — client for a running ``serve`` instance.

Every command takes ``--scale`` (default 0.1: seconds of wall time;
``--scale 1.0`` is paper scale).  ``sweep``, ``predict``, ``search``,
``adaptive`` and ``stats`` take ``--telemetry {text,json,csv}`` to dump
the run's :class:`repro.obs.Recorder` after the normal output.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cluster import table1_configs
from repro.apps import application_by_name
from repro.distribution import balanced, block, in_core, in_core_balanced
from repro.experiments import (
    build_model,
    dedicated_assumption_study,
    distribution_spread,
    error_ablation,
    fig9_accuracy,
    model_evaluation_timing,
    run_spectrum,
    table1,
)
from repro.runtime import AdaptiveRuntime
from repro.search import (
    GeneralizedBinarySearch,
    GeneticSearch,
    RandomSearch,
    SimulatedAnnealingSearch,
    SpectrumSweep,
)
from repro.obs import Recorder
from repro.sim import ClusterEmulator

__all__ = ["main", "build_parser"]

APPS = ("jacobi", "cg", "lanczos", "rna", "multigrid")
CONFIGS = ("DC", "IO", "HY1", "HY2")
ANCHORS = ("blk", "bal", "ic", "icbal")
ALGORITHMS = ("gbs", "genetic", "annealing", "random", "sweep")


def _cluster(name: str):
    try:
        return table1_configs()[name.upper()]
    except KeyError:
        raise SystemExit(f"unknown configuration {name!r}; choose from {CONFIGS}")


def _program(app: str, scale: float, prefetch: bool = False):
    application = application_by_name(app, scale)
    return application.prefetching() if prefetch else application.structure


def _anchor(name: str, cluster, program):
    name = name.lower()
    if name == "blk":
        return block(cluster, program.n_rows)
    if name == "bal":
        return balanced(cluster, program.n_rows)
    if name == "ic":
        return in_core(cluster, program)
    if name == "icbal":
        return in_core_balanced(cluster, program)
    raise SystemExit(f"unknown distribution {name!r}; choose from {ANCHORS}")


def _add_common(parser: argparse.ArgumentParser, config: bool = True) -> None:
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="problem-size scale (1.0 = paper scale; default 0.1)",
    )
    parser.add_argument(
        "--no-fast-forward", action="store_true",
        help="disable the emulator's steady-state cycle fast-forward: "
        "every run is simulated event by event (the fast path is "
        "equivalent to <= 1e-9 relative and falls back automatically "
        "for perturbed or non-converging runs)",
    )
    if config:
        parser.add_argument(
            "--config", default="HY1", help=f"configuration {CONFIGS}"
        )


def _add_dynamics(parser: argparse.ArgumentParser) -> None:
    from repro.cluster.configs import DYNAMICS_SCENARIOS

    parser.add_argument(
        "--dynamics", choices=DYNAMICS_SCENARIOS, default=None,
        metavar="SCENARIO",
        help=f"time-varying cluster scenario {DYNAMICS_SCENARIOS}: "
        "background-load spikes, CPU drift, disk fade or node loss "
        "(deterministic functions of the iteration index)",
    )
    parser.add_argument(
        "--dynamics-start", type=int, default=20, metavar="IT",
        help="global iteration at which the scenario's disturbance "
        "begins (default 20)",
    )


def _dynamics_spec(args, cluster):
    """Resolve ``--dynamics``/``--dynamics-start`` to a DynamicsSpec."""
    name = getattr(args, "dynamics", None)
    if name is None:
        return None
    from repro.cluster.configs import dynamics_scenario

    return dynamics_scenario(
        name, cluster.n_nodes, start=args.dynamics_start
    )


def _add_kernel(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel", choices=("numpy", "scalar", "plan"), default="numpy",
        help="MHETA evaluation kernel: vectorised (numpy, default), "
        "the scalar reference, or the compiled evaluation plan "
        "(plan; JIT-compiled when numba is available); predictions "
        "agree to <= 1e-12 relative",
    )


def _add_jobs(parser: argparse.ArgumentParser, cache: bool = False) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the embarrassingly parallel parts "
        "(1 = serial, 0 = one per CPU; results are bit-identical)",
    )
    if cache:
        parser.add_argument(
            "--cache", default=None, metavar="PATH",
            help="on-disk memoisation cache for (actual, predicted) "
            "pairs; repeated invocations skip redundant emulation",
        )


def _add_telemetry(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry", choices=("text", "json", "csv"), default=None,
        metavar="FMT",
        help="record telemetry (repro.obs.Recorder) during the run and "
        "dump it after the normal output: text, json or csv",
    )


def _telemetry_recorder(args) -> Optional[Recorder]:
    return Recorder() if getattr(args, "telemetry", None) else None


def _render_telemetry(rec: Optional[Recorder], args) -> str:
    """Render a recorder per ``--telemetry``; empty string when off."""
    if rec is None:
        return ""
    fmt = args.telemetry
    if fmt == "json":
        return rec.to_json()
    if fmt == "csv":
        return rec.to_csv()
    return rec.describe()


def _sweep_cache(args):
    from repro.parallel import SweepCache

    path = getattr(args, "cache", None)
    return SweepCache(path) if path is not None else None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MHETA (SC 2005) reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Table-1 configurations")

    p = sub.add_parser("sweep", help="actual vs predicted over the spectrum")
    p.add_argument("app", choices=APPS)
    p.add_argument("--steps", type=int, default=2)
    p.add_argument("--prefetch", action="store_true")
    p.add_argument("--chart", action="store_true", help="ASCII chart too")
    _add_common(p)
    _add_jobs(p, cache=True)
    _add_telemetry(p)

    p = sub.add_parser("predict", help="MHETA prediction for one distribution")
    p.add_argument("app", choices=APPS)
    p.add_argument("--dist", default="blk", help=f"one of {ANCHORS}")
    p.add_argument(
        "--verify", action="store_true",
        help="also run the emulator and report the error",
    )
    p.add_argument(
        "--inputs", default=None,
        help="load measurements from an internal MHETA file instead of "
        "re-running the instrumented iteration",
    )
    p.add_argument(
        "--twod", default=None, metavar="RxC",
        help="2-D mode (jacobi only): predict for an R x C processor "
        "grid over the square Jacobi array; --dist blk/bal map to the "
        "2-D anchors, --rows/--cols give explicit bands",
    )
    p.add_argument(
        "--rows", default=None, metavar="A,B,...",
        help="explicit 2-D row bands, comma-separated (requires --twod)",
    )
    p.add_argument(
        "--cols", default=None, metavar="A,B,...",
        help="explicit 2-D column bands, comma-separated (requires --twod)",
    )
    _add_common(p)
    _add_kernel(p)
    _add_telemetry(p)

    p = sub.add_parser(
        "instrument",
        help="run the instrumented iteration and write the internal "
        "MHETA file",
    )
    p.add_argument("app", choices=APPS)
    p.add_argument("output", help="path for the internal MHETA file (JSON)")
    _add_common(p)

    p = sub.add_parser(
        "analyse", help="per-node time breakdown of an emulated run"
    )
    p.add_argument("app", choices=APPS)
    p.add_argument("--dist", default="blk", help=f"one of {ANCHORS}")
    _add_common(p)

    p = sub.add_parser(
        "emulate",
        help="one ground-truth emulated run (optionally on a dynamic "
        "cluster)",
    )
    p.add_argument("app", choices=APPS)
    p.add_argument("--dist", default="blk", help=f"one of {ANCHORS}")
    p.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="override the program's iteration count",
    )
    p.add_argument(
        "--io-mode", choices=("auto", "sync", "prefetch", "instrumented"),
        default="auto",
        help="I/O handling: auto (the program's own mode), forced "
        "sync/prefetch, or the instrumented measurement pass",
    )
    p.add_argument("--prefetch", action="store_true")
    _add_common(p)
    _add_dynamics(p)
    _add_telemetry(p)

    p = sub.add_parser("search", help="distribution search driven by MHETA")
    p.add_argument("app", choices=APPS)
    p.add_argument(
        "--algorithm", choices=ALGORITHMS + ("all",), default="gbs"
    )
    p.add_argument("--budget", type=int, default=150)
    p.add_argument(
        "--batch-size", type=int, default=64, metavar="N",
        help="candidates scored per vectorized model pass (default 64); "
        "strategies with a natural population size (genetic, GBS legs) "
        "use that instead",
    )
    p.add_argument(
        "--verify", action="store_true",
        help="run the emulator on each winner and report the actual time",
    )
    p.add_argument(
        "--twod", default=None, metavar="RxC|all",
        help="2-D mode (jacobi only): search row x column band layouts "
        "for one R x C grid shape, or 'all' for every factor pair "
        "(degenerate strips ride the 1-D spectrum path)",
    )
    _add_common(p)
    _add_jobs(p)
    _add_kernel(p)
    _add_telemetry(p)

    p = sub.add_parser(
        "verify",
        help="batched ground-truth emulation of candidate distributions",
    )
    p.add_argument("app", choices=APPS)
    p.add_argument(
        "--dist", default="blk,bal,ic,icbal", metavar="A[,A...]",
        help=f"comma-separated anchors from {ANCHORS} "
        "(default: all four)",
    )
    p.add_argument(
        "--counts", action="append", default=None, metavar="N,N,...",
        help="explicit GEN_BLOCK row counts (repeatable; added after "
        "the --dist anchors)",
    )
    p.add_argument(
        "--batch", type=int, default=0, metavar="B",
        help="candidates per batched emulation pass (0 = the whole "
        "population in one pass; results are identical either way)",
    )
    p.add_argument("--prefetch", action="store_true")
    p.add_argument(
        "--run-cache", default=None, metavar="PATH",
        help="persistent on-disk RunCache tier (merge-on-save, atomic "
        "writes); repeated invocations skip redundant emulation",
    )
    _add_common(p)
    _add_jobs(p)
    _add_telemetry(p)

    p = sub.add_parser("adaptive", help="the Section-6 adaptive runtime")
    p.add_argument("app", choices=APPS)
    p.add_argument(
        "--check-interval", type=int, default=10, metavar="N",
        help="iterations between drift checks on dynamic clusters "
        "(default 10)",
    )
    p.add_argument(
        "--drift-threshold", type=float, default=0.25, metavar="X",
        help="worst per-node relative deviation (observed vs predicted "
        "iteration time) that triggers a new adaptation round "
        "(default 0.25)",
    )
    _add_common(p)
    _add_dynamics(p)
    _add_telemetry(p)

    p = sub.add_parser("accuracy", help="one Figure-9 panel")
    p.add_argument(
        "--panel",
        choices=("all", "jacobi-prefetch", "rna", "cg"),
        default="all",
    )
    p.add_argument("--steps", type=int, default=2)
    p.add_argument("--chart", action="store_true", help="ASCII chart too")
    _add_common(p, config=False)
    _add_jobs(p, cache=True)

    p = sub.add_parser("timing", help="model evaluation cost (paper: ~5.4 ms)")
    _add_kernel(p)

    p = sub.add_parser("spreads", help="best-vs-worst distribution spreads")
    p.add_argument("--steps", type=int, default=2)
    _add_common(p, config=False)
    _add_jobs(p)

    p = sub.add_parser("ablation", help="error-source ablation (CG on IO)")
    p.add_argument("--steps", type=int, default=2)
    _add_common(p, config=False)

    p = sub.add_parser("robustness", help="non-dedicated environment study")
    _add_common(p, config=False)

    p = sub.add_parser(
        "stats",
        help="instrumented seed run: phase breakdown + full telemetry",
    )
    p.add_argument("app", nargs="?", default="jacobi", choices=APPS)
    p.add_argument("--dist", default="blk", help=f"one of {ANCHORS}")
    p.add_argument("--budget", type=int, default=40,
                   help="search budget for the searcher-counter section")
    _add_common(p)
    _add_kernel(p)
    _add_telemetry(p)

    p = sub.add_parser(
        "serve",
        help="run the always-on distribution-advisor service",
    )
    _add_endpoint(p)
    p.add_argument(
        "--window-ms", type=float, default=2.0, metavar="MS",
        help="micro-batch gather window: concurrent queries arriving "
        "within it share one vectorized model pass (default 2 ms)",
    )
    p.add_argument(
        "--max-batch", type=int, default=256, metavar="N",
        help="distinct queries per shared pass before an early flush",
    )
    p.add_argument(
        "--batch-mode", choices=("vector", "serial"), default="vector",
        help="score coalesced rounds with the vectorized kernel "
        "(<= 1e-12 relative vs one-shot predict; default) or the "
        "bit-identical serial path",
    )
    p.add_argument(
        "--model-cache", type=int, default=16, metavar="N",
        help="resident (app, config, scale, kernel) models kept warm",
    )
    p.add_argument(
        "--sweep-cache", default=None, metavar="PATH",
        help="on-disk (actual, predicted) tier shared by a fleet of "
        "server processes (merge-on-save, atomic writes)",
    )
    p.add_argument(
        "--run-cache", default=None, metavar="PATH",
        help="on-disk RunCache tier for the raw emulation results "
        "behind verify queries (same merge-on-save discipline)",
    )
    p.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="exit after handling N requests (smoke tests / CI)",
    )
    _add_jobs(p)
    _add_kernel(p)
    _add_telemetry(p)
    p.add_argument(
        "--no-fast-forward", action="store_true",
        help="disable the emulator fast path for verify queries",
    )

    from repro.cluster.configs import DYNAMICS_SCENARIOS

    p = sub.add_parser(
        "query",
        help="query a running `repro serve` instance",
    )
    p.add_argument(
        "op", choices=("predict", "search", "verify", "stats", "ping",
                       "shutdown"),
    )
    p.add_argument("app", nargs="?", choices=APPS)
    p.add_argument("--dist", default=None, help=f"one of {ANCHORS}")
    p.add_argument(
        "--counts", default=None, metavar="N,N,...",
        help="explicit GEN_BLOCK row counts (overrides --dist)",
    )
    p.add_argument("--config", default="HY1", help=f"configuration {CONFIGS}")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--algorithm", choices=ALGORITHMS, default="gbs")
    p.add_argument("--budget", type=int, default=150)
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument(
        "--dynamics", choices=DYNAMICS_SCENARIOS, default=None,
        help="verify under a named dynamics scenario (verify op only)",
    )
    p.add_argument(
        "--json", action="store_true", help="print the raw result JSON"
    )
    _add_endpoint(p)

    return parser


def _add_endpoint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind/connect address"
    )
    parser.add_argument(
        "--port", type=int, default=7421,
        help="TCP port (serve: 0 picks a free one)",
    )
    parser.add_argument(
        "--socket", default=None, metavar="PATH",
        help="unix-domain socket path (overrides --host/--port)",
    )


def _cmd_sweep(args) -> str:
    cluster = _cluster(args.config)
    program = _program(args.app, args.scale, args.prefetch)
    cache = _sweep_cache(args)
    rec = _telemetry_recorder(args)
    run = run_spectrum(
        cluster,
        program,
        steps_per_leg=args.steps,
        jobs=args.jobs,
        cache=cache,
        telemetry=rec,
    )
    if cache is not None:
        cache.save()
    from repro.util.tables import render_table

    rows = [
        [p.label, p.actual_seconds, p.predicted_seconds, p.error_percent]
        for p in run.points
    ]
    table = render_table(
        ["distribution", "actual (s)", "predicted (s)", "error %"],
        rows,
        float_fmt=".3f",
        title=(
            f"{program.name} on {cluster.name}: mean error "
            f"{run.mean_error_percent:.2f}%, spread {run.spread:.2f}x, "
            f"best {run.best_actual.label!r}"
        ),
    )
    if getattr(args, "chart", False):
        table = table + "\n\n" + run.chart()
    if rec is not None:
        table = table + "\n\n" + _render_telemetry(rec, args)
    return table


def _cmd_instrument(args) -> str:
    from repro.instrument import collect_inputs

    cluster = _cluster(args.config)
    program = _program(args.app, args.scale)
    inputs = collect_inputs(
        cluster, program, block(cluster, program.n_rows)
    )
    inputs.save(args.output)
    return (
        f"wrote internal MHETA file for {program.name!r} "
        f"({cluster.name}, Blk-instrumented) to {args.output}"
    )


def _cmd_analyse(args) -> str:
    from repro.sim import ClusterEmulator, analyse_run
    from repro.sim.trace import TraceCollector

    cluster = _cluster(args.config)
    program = _program(args.app, args.scale)
    distribution = _anchor(args.dist, cluster, program)
    trace = TraceCollector()
    result = ClusterEmulator(cluster, program).run(
        distribution, observer=trace
    )
    return analyse_run(trace, result).describe()


# -- 2-D subpaths --------------------------------------------------------------


def _parse_grid(text: str, n_nodes: int):
    try:
        r, c = (int(x) for x in text.lower().split("x"))
    except ValueError:
        raise SystemExit(f"--twod expects RxC (e.g. 2x4), got {text!r}")
    if r < 1 or c < 1 or r * c != n_nodes:
        raise SystemExit(
            f"grid {r}x{c} does not cover the cluster's {n_nodes} nodes"
        )
    return r, c


def _parse_bands(text: str, label: str, count: int, total: int):
    try:
        bands = [int(x) for x in text.split(",")]
    except ValueError:
        raise SystemExit(f"--{label} expects comma-separated integers")
    if len(bands) != count:
        raise SystemExit(f"--{label} needs {count} bands, got {len(bands)}")
    if sum(bands) != total or min(bands) < 1:
        raise SystemExit(
            f"--{label} bands must be >= 1 and sum to {total}"
        )
    return bands


def _twod_model(args, cluster, program, shape):
    """Build the 2-D Jacobi model matching the 1-D program's scale."""
    from repro.twod import Jacobi2DSpec, block2d, build_2d_model

    if args.app != "jacobi":
        raise SystemExit("--twod supports only the jacobi application")
    side = program.n_rows
    spec = Jacobi2DSpec(
        n_rows=side, n_cols=side, iterations=program.iterations
    )
    d0 = block2d(spec.n_rows, spec.n_cols, shape)
    return build_2d_model(cluster, spec, d0, kernel=args.kernel), spec


def _cmd_predict_twod(args, cluster, program) -> str:
    from repro.twod import GenBlock2D, TwoDEmulator, balanced2d, block2d

    shape = _parse_grid(args.twod, cluster.n_nodes)
    model, spec = _twod_model(args, cluster, program, shape)
    if args.rows or args.cols:
        rows = (
            _parse_bands(args.rows, "rows", shape[0], spec.n_rows)
            if args.rows
            else block2d(spec.n_rows, spec.n_cols, shape).row_counts
        )
        cols = (
            _parse_bands(args.cols, "cols", shape[1], spec.n_cols)
            if args.cols
            else block2d(spec.n_rows, spec.n_cols, shape).col_counts
        )
        dist = GenBlock2D(rows, cols)
    elif args.dist.lower() == "bal":
        dist = balanced2d(cluster, spec.n_rows, spec.n_cols, shape)
    elif args.dist.lower() == "blk":
        dist = block2d(spec.n_rows, spec.n_cols, shape)
    else:
        raise SystemExit("2-D anchors are blk and bal")
    rec = _telemetry_recorder(args)
    report = model.predict(dist, report=True, telemetry=rec)
    out = [
        f"jacobi-2d on {args.config} ({shape[0]}x{shape[1]} grid, "
        f"{spec.n_rows}x{spec.n_cols} array, kernel={args.kernel})",
        f"rows={list(dist.row_counts)} cols={list(dist.col_counts)}",
        f"predicted: {report.total_seconds:.3f}s",
    ]
    for node in report.nodes:
        out.append(
            f"  rank {node.rank} @ {node.grid_coords} "
            f"tile {node.tile[0]}x{node.tile[1]}: "
            f"{node.total_seconds:.3f}s"
        )
    if args.verify:
        actual = TwoDEmulator(cluster, spec).run(dist, telemetry=rec)
        error = (
            abs(report.total_seconds - actual)
            / min(report.total_seconds, actual)
            * 100.0
        )
        out.append(f"actual: {actual:.3f}s -> error {error:.2f}%")
    if rec is not None:
        out.append("")
        out.append(_render_telemetry(rec, args))
    return "\n".join(out)


def _cmd_search_twod(args, cluster, program) -> str:
    from repro.twod import TwoDEmulator, TwoDLayoutSearch, factor_pairs

    if args.twod.lower() == "all":
        shapes = None
        d0_shape = sorted(
            factor_pairs(cluster.n_nodes), key=lambda s: abs(s[0] - s[1])
        )[0]
    else:
        shapes = [_parse_grid(args.twod, cluster.n_nodes)]
        d0_shape = shapes[0]
    model, spec = _twod_model(args, cluster, program, d0_shape)
    rec = _telemetry_recorder(args)
    names = list(ALGORITHMS) if args.algorithm == "all" else [args.algorithm]
    out = []
    for name in names:
        result = TwoDLayoutSearch(
            model,
            algorithm=name,
            shapes=shapes,
            batch_size=args.batch_size,
            jobs=args.jobs,
        ).search(args.budget, telemetry=rec)
        out.append(str(result))
        for shape, value in sorted(result.per_shape.items()):
            marker = " <-" if shape == result.best.grid_shape else ""
            out.append(f"  {shape[0]}x{shape[1]}: {value:.3f}s{marker}")
        if args.verify:
            actual = TwoDEmulator(cluster, spec).run(
                result.best, telemetry=rec
            )
            out.append(
                f"  emulator verifies {actual:.3f}s "
                f"(predicted {result.predicted_seconds:.3f}s)"
            )
    if rec is not None:
        out.append("")
        out.append(_render_telemetry(rec, args))
    return "\n".join(out)


def _cmd_predict(args) -> str:
    from repro.core import MhetaModel
    from repro.instrument import MhetaInputs

    cluster = _cluster(args.config)
    program = _program(args.app, args.scale)
    if args.twod:
        return _cmd_predict_twod(args, cluster, program)
    if args.inputs:
        model = MhetaModel(
            program, cluster, MhetaInputs.load(args.inputs),
            kernel=args.kernel,
        )
    else:
        model = build_model(cluster, program, kernel=args.kernel)
    distribution = _anchor(args.dist, cluster, program)
    rec = _telemetry_recorder(args)
    report = model.predict(distribution, report=True, telemetry=rec)
    out = [report.describe()]
    if args.verify:
        from repro.sim import emulate

        actual = emulate(cluster, program, distribution, telemetry=rec)
        error = (
            abs(report.total_seconds - actual.total_seconds)
            / min(report.total_seconds, actual.total_seconds)
            * 100.0
        )
        out.append(
            f"actual: {actual.total_seconds:.3f}s -> error {error:.2f}%"
        )
    if rec is not None:
        out.append("")
        out.append(_render_telemetry(rec, args))
    return "\n".join(out)


#: Uniform searcher constructors: every algorithm takes
#: ``(model, cluster, *, batch_size=...)`` since the API consolidation.
SEARCHER_FACTORIES = {
    "gbs": GeneralizedBinarySearch,
    "genetic": GeneticSearch,
    "annealing": SimulatedAnnealingSearch,
    "random": RandomSearch,
    "sweep": SpectrumSweep,
}


def _cmd_search(args) -> str:
    from repro.parallel import verify_distributions

    cluster = _cluster(args.config)
    program = _program(args.app, args.scale)
    if args.twod:
        return _cmd_search_twod(args, cluster, program)
    model = build_model(cluster, program, kernel=args.kernel)
    rec = _telemetry_recorder(args)
    names = list(ALGORITHMS) if args.algorithm == "all" else [args.algorithm]
    results = [
        SEARCHER_FACTORIES[n](
            model, cluster, batch_size=args.batch_size
        ).search(budget=args.budget, telemetry=rec)
        for n in names
    ]
    blk = model.predict(block(cluster, program.n_rows), telemetry=rec)
    out = []
    for result in results:
        out.append(
            f"{result}\n"
            f"Blk predicts {blk:.3f}s -> "
            f"{(1 - result.predicted_seconds / blk) * 100:.1f}% improvement"
        )
    if args.verify:
        actuals = verify_distributions(
            cluster,
            program,
            [r.best for r in results],
            jobs=args.jobs,
            telemetry=rec,
        )
        for result, actual in zip(results, actuals):
            out.append(
                f"{result.algorithm}: emulator verifies {actual:.3f}s "
                f"(predicted {result.predicted_seconds:.3f}s)"
            )
    if rec is not None:
        out.append("")
        out.append(_render_telemetry(rec, args))
    return "\n".join(out)


def _cmd_emulate(args) -> str:
    from repro.sim.executor import emulate

    cluster = _cluster(args.config)
    program = _program(args.app, args.scale, args.prefetch)
    dist = _anchor(args.dist, cluster, program)
    dynamics = _dynamics_spec(args, cluster)
    rec = _telemetry_recorder(args)
    result = emulate(
        cluster,
        program,
        dist,
        iterations=args.iterations,
        io_mode=args.io_mode,
        dynamics=dynamics,
        fast_forward=False if args.no_fast_forward else None,
        telemetry=rec,
    )
    out = [
        f"app {args.app!r} on {cluster.name}"
        + (f" (dynamics: {dynamics.name or 'custom'})" if dynamics else ""),
        f"  distribution : {list(dist.counts)}",
        f"  iterations   : {result.iterations}",
        f"  total        : {result.total_seconds:.6f} s"
        + ("  (fast-forwarded)" if result.fast_forwarded else ""),
        "  per node     : "
        + ", ".join(f"{s:.3f}" for s in result.per_node_seconds),
    ]
    if rec is not None:
        out.append("")
        out.append(_render_telemetry(rec, args))
    return "\n".join(out)


def _cmd_adaptive(args) -> str:
    cluster = _cluster(args.config)
    program = _program(args.app, args.scale)
    dynamics = _dynamics_spec(args, cluster)
    rec = _telemetry_recorder(args)
    runtime = AdaptiveRuntime(
        cluster,
        program,
        dynamics=dynamics,
        check_interval=args.check_interval,
        drift_threshold=args.drift_threshold,
    )
    out = runtime.run(telemetry=rec).describe()
    if rec is not None:
        out = out + "\n\n" + _render_telemetry(rec, args)
    return out


def _cmd_stats(args) -> str:
    """One instrumented seed run exercising the whole telemetry surface:
    a reported prediction (phase breakdown), repeated predictions (table
    cache hits), two identical emulations (run-cache miss then hit), and
    a small search (searcher counters)."""
    from repro.sim import emulate

    cluster = _cluster(args.config)
    program = _program(args.app, args.scale)
    distribution = _anchor(args.dist, cluster, program)
    rec = Recorder()

    model = build_model(cluster, program, kernel=args.kernel)
    report = model.predict(distribution, report=True, telemetry=rec)
    # Second pass over the same distribution: section-table cache hits.
    model.predict(distribution, telemetry=rec)

    # Emulate twice: first call misses the run cache, second hits it.
    emulate(cluster, program, distribution, telemetry=rec)
    actual = emulate(cluster, program, distribution, telemetry=rec)

    search = GeneralizedBinarySearch(model, cluster)
    result = search.search(budget=args.budget, telemetry=rec)

    phases = {
        name.rsplit("/", 1)[-1]: value
        for name, value in rec.gauges.items()
        if name.startswith("model/phase/") and name.count("/") == 2
    }
    total = report.total_seconds
    lines = [
        f"{program.name} on {cluster.name}, {args.dist} distribution",
        f"predicted {total:.6f}s, emulated {actual.total_seconds:.6f}s",
        "",
        "phase breakdown (bottleneck node, whole run):",
    ]
    phase_keys = ("comp", "io_sync", "io_prefetch", "comm_overhead", "blocked")
    for key in phase_keys:
        if key in phases:
            lines.append(f"  {key:<14s} {phases[key]:.9f}s")
    phase_sum = sum(phases.get(k, 0.0) for k in phase_keys)
    lines.append(
        f"  {'sum':<14s} {phase_sum:.9f}s "
        f"(predicted total {total:.9f}s, |diff| {abs(phase_sum - total):.2e})"
    )
    lines += [
        "",
        f"search: {result.algorithm} best {result.predicted_seconds:.6f}s "
        f"in {result.evaluations} evaluations",
    ]

    def _fmt_cache(stats: dict) -> str:
        return "  ".join(
            f"{k}={v:.6f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in sorted(stats.items())
        )

    from repro.core.plan import plan_cache_stats
    from repro.parallel import default_run_cache

    lines += [
        "",
        "cache tiers:",
        f"  table LRU   {_fmt_cache(model.table_cache_stats)}",
        f"  run cache   {_fmt_cache(default_run_cache().stats)}",
        f"  plan cache  {_fmt_cache(plan_cache_stats())}",
        "",
        _render_telemetry(rec, args) if args.telemetry else rec.describe(),
    ]
    return "\n".join(lines)


def _cmd_verify(args) -> str:
    """Batched ground-truth emulation of a population of candidates."""
    from repro.distribution import GenBlock
    from repro.sim.executor import emulate_many

    cluster = _cluster(args.config)
    program = _program(args.app, args.scale, args.prefetch)
    dists, labels = [], []
    for name in [n for n in args.dist.split(",") if n]:
        dists.append(_anchor(name, cluster, program))
        labels.append(name.lower())
    for spec in args.counts or []:
        try:
            counts = tuple(int(v) for v in spec.replace(" ", "").split(","))
        except ValueError:
            raise SystemExit(f"--counts expects comma-separated integers, got {spec!r}")
        if len(counts) != len(cluster.nodes):
            raise SystemExit(
                f"--counts needs {len(cluster.nodes)} entries for "
                f"{args.config}, got {len(counts)}"
            )
        if sum(counts) != program.n_rows:
            raise SystemExit(
                f"--counts must sum to the program's {program.n_rows} rows "
                f"at scale {args.scale}, got {sum(counts)}"
            )
        dists.append(GenBlock(counts))
        labels.append("counts")
    if not dists:
        raise SystemExit("no distributions to verify")

    store = None
    if args.run_cache:
        from repro.parallel.cache import RunCache

        store = RunCache(path=args.run_cache)
    rec = _telemetry_recorder(args)

    if args.jobs != 1:
        from repro.parallel import verify_distributions

        seconds = verify_distributions(
            cluster, program, dists,
            jobs=args.jobs, run_cache=store, telemetry=rec,
        )
        flags = [""] * len(dists)
    else:
        batch = args.batch if args.batch > 0 else len(dists)
        seconds, flags = [], []
        for lo in range(0, len(dists), batch):
            for result in emulate_many(
                cluster, program, dists[lo:lo + batch],
                run_cache=store, telemetry=rec,
            ):
                seconds.append(result.total_seconds)
                flags.append(
                    "  (fast-forwarded)" if result.fast_forwarded else ""
                )
    if store is not None:
        store.save()

    width = max(len(label) for label in labels)
    lines = [
        f"verify {args.app} on {args.config} "
        f"(scale {args.scale}, {len(dists)} candidates)"
    ]
    for label, d, actual, flag in zip(labels, dists, seconds, flags):
        lines.append(
            f"  {label:<{width}s}  {actual:12.6f}s  "
            f"{list(d.counts)}{flag}"
        )
    tele = _render_telemetry(rec, args)
    if tele:
        lines.append("")
        lines.append(tele)
    return "\n".join(lines)


def _cmd_serve(args) -> str:
    """Run the advisor service until a ``shutdown`` query (or
    ``--max-requests``) stops it; returns the final telemetry dump."""
    import asyncio

    from repro.serve import ServeCoordinator

    rec = Recorder()
    from repro.parallel import SweepCache

    cache = SweepCache(args.sweep_cache) if args.sweep_cache else None
    run_cache = None
    if getattr(args, "run_cache", None):
        from repro.parallel.cache import RunCache

        run_cache = RunCache(path=args.run_cache)
    coordinator = ServeCoordinator(
        kernel=args.kernel,
        window_seconds=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        batch_mode=args.batch_mode,
        jobs=args.jobs,
        sweep_cache=cache,
        run_cache=run_cache,
        model_cache_entries=args.model_cache,
        telemetry=rec,
    )

    async def _run() -> None:
        handle = await coordinator.start(
            host=args.host, port=args.port, socket_path=args.socket
        )
        print(f"repro serve: listening on {handle.address}", flush=True)
        if args.max_requests is not None:

            async def _watch() -> None:
                while coordinator.requests_handled < args.max_requests:
                    await asyncio.sleep(0.01)
                coordinator.request_shutdown()

            watcher = asyncio.ensure_future(_watch())
            try:
                await handle.serve_until_shutdown()
            finally:
                watcher.cancel()
        else:
            await handle.serve_until_shutdown()

    asyncio.run(_run())
    out = (
        f"repro serve: stopped after "
        f"{coordinator.requests_handled} requests"
    )
    if getattr(args, "telemetry", None):
        out = out + "\n\n" + _render_telemetry(rec, args)
    return out


def _cmd_query(args) -> str:
    import json as _json

    from repro.serve import ServeClient

    payload = {"op": args.op}
    if args.op in ("predict", "search", "verify"):
        if not args.app:
            raise SystemExit(f"op {args.op!r} requires an app {APPS}")
        payload.update(
            app=args.app, config=args.config.upper(), scale=args.scale
        )
        if args.op == "search":
            payload.update(
                algorithm=args.algorithm,
                budget=args.budget,
                batch_size=args.batch_size,
            )
        elif args.counts is not None:
            payload["counts"] = [
                int(c) for c in args.counts.split(",") if c.strip()
            ]
        else:
            payload["dist"] = args.dist or "blk"
        if getattr(args, "dynamics", None) is not None:
            payload["dynamics"] = args.dynamics
    client = ServeClient(
        host=args.host, port=args.port, socket_path=args.socket
    )
    try:
        result = client.request(payload)
    finally:
        client.close()
    if args.json:
        return _json.dumps(result, indent=2, sort_keys=True)
    if args.op == "ping":
        return f"pong (protocol v{result['version']})"
    if args.op == "shutdown":
        return "server stopping"
    if args.op == "stats":
        return _json.dumps(result, indent=2, sort_keys=True)
    lines = [
        f"{result['app']} on {result['config']}: "
        f"predicted {result['predicted_seconds']:.6f}s"
    ]
    if args.op == "search":
        lines.append(
            f"{result['algorithm']}: best {result['counts']} after "
            f"{result['evaluations']} evaluations "
            f"({result['cache_hits']} cache hits)"
        )
    else:
        lines.append(f"counts: {result['counts']}")
    if "actual_seconds" in result:
        lines.append(
            f"actual (emulated): {result['actual_seconds']:.6f}s -> "
            f"error {result['error_percent']:.2f}%"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "no_fast_forward", False):
        from repro.sim import set_fast_forward_default

        set_fast_forward_default(False)
    if args.command == "table1":
        print(table1())
    elif args.command == "sweep":
        print(_cmd_sweep(args))
    elif args.command == "predict":
        print(_cmd_predict(args))
    elif args.command == "instrument":
        print(_cmd_instrument(args))
    elif args.command == "analyse":
        print(_cmd_analyse(args))
    elif args.command == "search":
        print(_cmd_search(args))
    elif args.command == "verify":
        print(_cmd_verify(args))
    elif args.command == "emulate":
        print(_cmd_emulate(args))
    elif args.command == "adaptive":
        print(_cmd_adaptive(args))
    elif args.command == "accuracy":
        cache = _sweep_cache(args)
        bands = fig9_accuracy(
            panel=args.panel,
            scale=args.scale,
            steps_per_leg=args.steps,
            jobs=args.jobs,
            cache=cache,
        )
        if cache is not None:
            cache.save()
        print(bands.describe())
        if args.chart:
            print()
            print(bands.chart())
    elif args.command == "timing":
        print(model_evaluation_timing(kernel=args.kernel).describe())
    elif args.command == "spreads":
        print(
            distribution_spread(
                steps_per_leg=args.steps, scale=args.scale, jobs=args.jobs
            ).describe()
        )
    elif args.command == "ablation":
        print(
            error_ablation(steps_per_leg=args.steps, scale=args.scale).describe()
        )
    elif args.command == "robustness":
        print(dedicated_assumption_study(scale=args.scale).describe())
    elif args.command == "stats":
        print(_cmd_stats(args))
    elif args.command == "serve":
        print(_cmd_serve(args))
    elif args.command == "query":
        print(_cmd_query(args))
    else:  # pragma: no cover - argparse enforces choices
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
