"""Interconnect description.

The paper measures three network microbenchmark quantities (Section 4.1):
send overhead, receive overhead, and per-byte send latency between nodes,
and assumes they stay constant in the dedicated environment.  We add a
fixed wire latency for realism; setting it to zero recovers the paper's
two-parameter-per-direction model.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["NetworkSpec"]


@dataclass(frozen=True)
class NetworkSpec:
    """Uniform cluster interconnect.

    Parameters
    ----------
    send_overhead:
        ``os`` — fixed CPU time spent preparing and copying a message into
        a system buffer on the sender (seconds).  Excludes any disk read
        needed to materialise the message; MHETA adds that separately.
    recv_overhead:
        ``or`` — fixed CPU time to process an incoming message (seconds).
    latency_per_byte:
        Transfer time per payload byte (seconds/byte); the reciprocal of
        effective bandwidth.
    fixed_latency:
        Wire/stack latency added once per message (seconds).
    """

    send_overhead: float = 40e-6
    recv_overhead: float = 40e-6
    latency_per_byte: float = 1e-8  # 100 MB/s effective bandwidth
    fixed_latency: float = 60e-6

    def __post_init__(self) -> None:
        for field in (
            "send_overhead",
            "recv_overhead",
            "latency_per_byte",
            "fixed_latency",
        ):
            if getattr(self, field) < 0:
                raise ConfigurationError(f"{field} must be non-negative")

    def transfer_seconds(self, nbytes: float) -> float:
        """In-flight transfer time ``X(m)`` for an ``nbytes`` message.

        This covers the interval between the sender finishing its send
        overhead and the message being available at the receiver; the
        receiver still pays ``recv_overhead`` to consume it.
        """
        return self.fixed_latency + nbytes * self.latency_per_byte

    def with_(self, **changes) -> "NetworkSpec":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)
