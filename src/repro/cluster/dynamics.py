"""Time-varying node models: load traces, drift, degradation, failure.

Every scenario the emulator ran before this module was *static*: a
:class:`~repro.cluster.cluster.ClusterSpec` pinned each node's CPU power
and disk bandwidth for the whole job.  Real shared clusters drift — the
self-adaptable-algorithms premise (Lastovetsky et al.): competing jobs
steal cycles, thermal/DVFS throttling bleeds CPU speed, disks degrade
under contention, and nodes drop out or come back.  This module models
those as deterministic, seedable functions of the *global iteration
index*, attached to a cluster as a :class:`DynamicsSpec`:

* :class:`LoadTrace` — the AR(1) background-load process that previously
  lived inside :class:`~repro.sim.perturbation.PerturbationModel`, now
  first-class and seedable on its own stream (so flipping unrelated
  perturbation knobs never changes a sampled load trajectory);
* :class:`NodeLoad` — a load trace bound to one node from some iteration;
* :class:`CpuDrift` — thermal/DVFS throttling: CPU power decays
  exponentially towards a floor;
* :class:`DiskDegradation` — disk bandwidth decays the same way;
* :class:`NodeEvent` — loss/join events.  A *loss* drops the node's
  service rate to a small residual (fail-slow semantics: the runtime's
  recovery proxy keeps the rank answering, so static runs stay finite
  and comparable); a *join* restores it.

:meth:`DynamicsSpec.compile` lowers a spec to a dense per-(node,
iteration) factor timeline the emulator multiplies into compute and
disk durations.  Because every factor is indexed by the *global*
iteration, a mid-run segment (``iteration_offset > 0``) sees exactly
the conditions the same iterations of a continuous run would — the
invariant the adaptive runtime's what-if emulations rely on.

Dynamics are *non-stationary by construction*: the steady-state
fast-forward and the compiled emulation plans refuse any run with an
active spec (:func:`repro.sim.steady.supports_fast_forward`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.util.rng import stream

__all__ = [
    "LoadTrace",
    "LoadSampler",
    "NodeLoad",
    "CpuDrift",
    "DiskDegradation",
    "NodeEvent",
    "DynamicsSpec",
    "DynamicsTimeline",
]

#: Load fractions are clipped here: a node never loses more than 90 % of
#: its CPU to competitors (matches the historic in-perturbation clip).
LOAD_CEILING = 0.9


@dataclass(frozen=True)
class LoadTrace:
    """A seedable AR(1) background-load process.

    The load fraction follows ``state' = rho * state + innovation`` with
    ``innovation ~ N(mean * (1 - rho), volatility * mean * (1 - rho))``,
    clipped to ``[0, ceiling]`` — a slowly drifting competitor-job
    profile whose stationary mean is ``mean``.  A node under load
    fraction ``x`` runs compute ``1 / (1 - x)`` times slower.

    The trace owns its RNG stream (seeded from ``seed_label`` plus the
    caller's labels), so two samplers with equal labels replay the same
    trajectory regardless of what else draws randomness around them.
    """

    mean: float
    volatility: float = 0.5
    persistence: float = 0.9
    ceiling: float = LOAD_CEILING
    seed_label: str = "load"

    def __post_init__(self) -> None:
        if not 0.0 <= self.mean < 1.0:
            raise ConfigurationError(
                f"load mean must be in [0, 1), got {self.mean}"
            )
        if not 0.0 <= self.persistence < 1.0:
            raise ConfigurationError(
                f"persistence must be in [0, 1), got {self.persistence}"
            )
        if self.volatility < 0.0:
            raise ConfigurationError(
                f"volatility must be >= 0, got {self.volatility}"
            )

    def sampler(self, *labels) -> "LoadSampler":
        """A stateful sampler replaying this trace's trajectory for the
        given seed labels."""
        return LoadSampler(self, stream(self.seed_label, *labels))

    def series(self, n: int, *labels) -> np.ndarray:
        """The first ``n`` load fractions of the trajectory for the
        given seed labels (one sample per step)."""
        sampler = self.sampler(*labels)
        return np.array([sampler.step() for _ in range(n)], dtype=float)


class LoadSampler:
    """Stateful walker of one :class:`LoadTrace` trajectory."""

    __slots__ = ("_trace", "_rng", "_state")

    def __init__(self, trace: LoadTrace, rng) -> None:
        self._trace = trace
        self._rng = rng
        self._state = trace.mean

    @property
    def state(self) -> float:
        return self._state

    def step(self) -> float:
        """Advance one step; returns the new load fraction."""
        trace = self._trace
        if trace.mean <= 0.0:
            return 0.0
        rho = trace.persistence
        sigma = trace.volatility * trace.mean
        innovation = self._rng.normal(
            trace.mean * (1.0 - rho), sigma * (1.0 - rho)
        )
        self._state = float(
            np.clip(rho * self._state + innovation, 0.0, trace.ceiling)
        )
        return self._state

    def factor(self) -> float:
        """Advance one step; returns the compute slowdown ``1/(1-load)``."""
        return 1.0 / (1.0 - self.step())


def _check_node(node: int, what: str) -> None:
    if node < 0:
        raise ConfigurationError(f"{what}: node index must be >= 0, got {node}")


@dataclass(frozen=True)
class NodeLoad:
    """A background-load trace bound to one node from some iteration on."""

    node: int
    trace: LoadTrace
    start_iteration: int = 0

    def __post_init__(self) -> None:
        _check_node(self.node, "NodeLoad")


@dataclass(frozen=True)
class CpuDrift:
    """Thermal/DVFS throttling: from ``start_iteration`` on, the node's
    CPU power decays exponentially towards ``floor`` of nominal —
    ``factor(it) = floor + (1 - floor) * exp(-rate * (it - start))``."""

    node: int
    rate: float  #: per-iteration decay rate (1/iterations)
    floor: float = 0.6  #: asymptotic fraction of nominal CPU power
    start_iteration: int = 0

    def __post_init__(self) -> None:
        _check_node(self.node, "CpuDrift")
        if self.rate < 0.0:
            raise ConfigurationError(f"CpuDrift rate must be >= 0, got {self.rate}")
        if not 0.0 < self.floor <= 1.0:
            raise ConfigurationError(
                f"CpuDrift floor must be in (0, 1], got {self.floor}"
            )

    def factor_at(self, iteration: int) -> float:
        dt = iteration - self.start_iteration
        if dt < 0:
            return 1.0
        return self.floor + (1.0 - self.floor) * float(np.exp(-self.rate * dt))


@dataclass(frozen=True)
class DiskDegradation:
    """Disk bandwidth decay (contention, failing media): same shape as
    :class:`CpuDrift`, applied to the node's disk service rate."""

    node: int
    rate: float
    floor: float = 0.5
    start_iteration: int = 0

    def __post_init__(self) -> None:
        _check_node(self.node, "DiskDegradation")
        if self.rate < 0.0:
            raise ConfigurationError(
                f"DiskDegradation rate must be >= 0, got {self.rate}"
            )
        if not 0.0 < self.floor <= 1.0:
            raise ConfigurationError(
                f"DiskDegradation floor must be in (0, 1], got {self.floor}"
            )

    def factor_at(self, iteration: int) -> float:
        dt = iteration - self.start_iteration
        if dt < 0:
            return 1.0
        return self.floor + (1.0 - self.floor) * float(np.exp(-self.rate * dt))


@dataclass(frozen=True)
class NodeEvent:
    """A node loss or join at a given iteration.

    ``loss`` drops the node's compute *and* disk service rate to
    ``residual`` of nominal from ``at_iteration`` on — fail-slow
    semantics: the rank keeps participating in communication (think of
    the runtime keeping a recovery proxy alive), so un-adapted runs
    finish, just catastrophically slowly.  ``join`` restores the rate to
    ``residual`` (default 1.0: full service), e.g. a repaired node or a
    spare arriving.  Later events on the same node override earlier
    ones.
    """

    node: int
    at_iteration: int
    kind: str = "loss"  #: "loss" | "join"
    residual: float = 0.05

    def __post_init__(self) -> None:
        _check_node(self.node, "NodeEvent")
        if self.kind not in ("loss", "join"):
            raise ConfigurationError(
                f"NodeEvent kind must be 'loss' or 'join', got {self.kind!r}"
            )
        if not 0.0 < self.residual <= 1.0:
            raise ConfigurationError(
                f"NodeEvent residual must be in (0, 1], got {self.residual}"
            )


@dataclass(frozen=True)
class DynamicsSpec:
    """Everything time-varying about a cluster, as one frozen value.

    An empty spec is falsy and behaves exactly like ``dynamics=None``
    (the emulator takes the static path, fast-forward stays eligible).
    Any non-empty spec is treated as non-stationary.
    """

    loads: Tuple[NodeLoad, ...] = ()
    cpu_drift: Tuple[CpuDrift, ...] = ()
    disk_degradation: Tuple[DiskDegradation, ...] = ()
    events: Tuple[NodeEvent, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "loads", tuple(self.loads))
        object.__setattr__(self, "cpu_drift", tuple(self.cpu_drift))
        object.__setattr__(
            self, "disk_degradation", tuple(self.disk_degradation)
        )
        object.__setattr__(self, "events", tuple(self.events))

    def __bool__(self) -> bool:
        return bool(
            self.loads or self.cpu_drift or self.disk_degradation or self.events
        )

    @property
    def stationary(self) -> bool:
        """True when nothing varies (the spec is a no-op)."""
        return not self

    def with_(self, **changes) -> "DynamicsSpec":
        return replace(self, **changes)

    # -- lowering ----------------------------------------------------------

    def _max_node(self) -> int:
        nodes = [c.node for c in self.loads]
        nodes += [c.node for c in self.cpu_drift]
        nodes += [c.node for c in self.disk_degradation]
        nodes += [c.node for c in self.events]
        return max(nodes) if nodes else -1

    def validate(self, n_nodes: int) -> None:
        """Raise when any component names a node the cluster lacks."""
        top = self._max_node()
        if top >= n_nodes:
            raise ConfigurationError(
                f"dynamics reference node {top}, cluster has {n_nodes} nodes"
            )

    def compile(
        self, n_nodes: int, n_iterations: int, iteration_offset: int = 0
    ) -> "DynamicsTimeline":
        """Dense factor timeline for global iterations
        ``[iteration_offset, iteration_offset + n_iterations)``.

        Load traces are sampled from global iteration 0 and sliced, so a
        segment replays exactly the loads the same iterations of a
        continuous run would see.
        """
        self.validate(n_nodes)
        if n_iterations < 0 or iteration_offset < 0:
            raise ConfigurationError(
                "compile() needs n_iterations >= 0 and iteration_offset >= 0"
            )
        horizon = iteration_offset + n_iterations
        cpu = np.ones((n_nodes, n_iterations), dtype=float)
        disk = np.ones((n_nodes, n_iterations), dtype=float)
        load = np.zeros((n_nodes, n_iterations), dtype=float)
        its = np.arange(iteration_offset, horizon, dtype=float)

        for drift in self.cpu_drift:
            dt = its - drift.start_iteration
            factor = np.where(
                dt < 0,
                1.0,
                drift.floor + (1.0 - drift.floor) * np.exp(-drift.rate * np.maximum(dt, 0.0)),
            )
            cpu[drift.node] *= factor
        for deg in self.disk_degradation:
            dt = its - deg.start_iteration
            factor = np.where(
                dt < 0,
                1.0,
                deg.floor + (1.0 - deg.floor) * np.exp(-deg.rate * np.maximum(dt, 0.0)),
            )
            disk[deg.node] *= factor

        # Events: chronological sweep, later events override earlier.
        event_factor = np.ones((n_nodes, n_iterations), dtype=float)
        for ev in sorted(self.events, key=lambda e: e.at_iteration):
            lo = max(ev.at_iteration - iteration_offset, 0)
            if lo >= n_iterations:
                continue
            event_factor[ev.node, lo:] = (
                ev.residual if ev.kind == "loss" else 1.0
            )
        cpu *= event_factor
        disk *= event_factor

        for nl in self.loads:
            series = nl.trace.series(horizon, "node", nl.node)
            active = np.arange(horizon) >= nl.start_iteration
            values = np.where(active, series, 0.0)[iteration_offset:horizon]
            # Loads on one node combine by capping at the ceiling.
            load[nl.node] = np.minimum(
                load[nl.node] + values, nl.trace.ceiling
            )

        return DynamicsTimeline(
            cpu_factor=cpu,
            disk_factor=disk,
            load=load,
            iteration_offset=iteration_offset,
        )

    # -- model-facing snapshot ---------------------------------------------

    def expected_load(self, node: int, iteration: int) -> float:
        """The load traces' stationary mean on ``node`` at ``iteration``
        (the model's best estimate — it cannot see future samples)."""
        total = 0.0
        ceiling = LOAD_CEILING
        for nl in self.loads:
            if nl.node == node and iteration >= nl.start_iteration:
                total += nl.trace.mean
                ceiling = nl.trace.ceiling
        return min(total, ceiling)

    def effective_cluster(self, cluster, iteration: int):
        """A *static* snapshot of ``cluster`` as this spec leaves it at
        ``iteration``: CPU powers and disk bandwidths scaled by the
        deterministic factors, loads folded in at their expected value,
        and no dynamics attached (the snapshot is what the adaptive
        runtime instruments and searches against mid-run)."""
        timeline = self.compile(cluster.n_nodes, 1, iteration)
        nodes = []
        for rank, node in enumerate(cluster.nodes):
            cpu_factor = float(timeline.cpu_factor[rank, 0])
            disk_factor = float(timeline.disk_factor[rank, 0])
            load = self.expected_load(rank, iteration)
            effective_power = node.cpu_power * cpu_factor * (1.0 - load)
            changes = {"cpu_power": max(effective_power, 1e-9)}
            if disk_factor != 1.0:
                changes["disk_read_bw"] = node.disk_read_bw * disk_factor
                changes["disk_write_bw"] = node.disk_write_bw * disk_factor
            nodes.append(node.with_(**changes))
        snapshot = cluster.with_nodes(
            nodes, name=f"{cluster.name}@it{iteration}"
        )
        return replace(snapshot, dynamics=None)

    # -- reporting ---------------------------------------------------------

    def describe(self) -> str:
        if not self:
            return "dynamics: none (stationary)"
        lines = [f"dynamics {self.name or '(unnamed)'}:"]
        for nl in self.loads:
            lines.append(
                f"  load      node {nl.node}: mean={nl.trace.mean:.2f} "
                f"from it {nl.start_iteration}"
            )
        for d in self.cpu_drift:
            lines.append(
                f"  cpu drift node {d.node}: -> {d.floor:.2f}x "
                f"(rate {d.rate:.3f}/it) from it {d.start_iteration}"
            )
        for d in self.disk_degradation:
            lines.append(
                f"  disk fade node {d.node}: -> {d.floor:.2f}x "
                f"(rate {d.rate:.3f}/it) from it {d.start_iteration}"
            )
        for e in self.events:
            lines.append(
                f"  {e.kind:9s} node {e.node} at it {e.at_iteration}"
                + (f" (residual {e.residual:.2f}x)" if e.kind == "loss" else "")
            )
        return "\n".join(lines)


@dataclass
class DynamicsTimeline:
    """Dense per-(node, iteration) factors for one emulated segment.

    ``cpu_factor`` and ``disk_factor`` multiply the node's *service
    rate* (1.0 = nominal, smaller = slower); ``load`` is the sampled
    background-load fraction.  The emulator turns them into duration
    multipliers via :meth:`compute_multiplier` / :meth:`disk_slowdown`.
    """

    cpu_factor: np.ndarray  #: (P, T) service-rate factor for compute
    disk_factor: np.ndarray  #: (P, T) service-rate factor for disk
    load: np.ndarray  #: (P, T) sampled load fraction
    iteration_offset: int = 0

    @property
    def n_iterations(self) -> int:
        return self.cpu_factor.shape[1]

    def _col(self, iteration: int) -> int:
        return iteration - self.iteration_offset

    def compute_multiplier(self, rank: int, iteration: int) -> float:
        """Duration multiplier for compute on ``rank`` at the *global*
        ``iteration``: ``1 / (cpu_factor * (1 - load))``."""
        j = self._col(iteration)
        return 1.0 / (
            self.cpu_factor[rank, j] * (1.0 - self.load[rank, j])
        )

    def disk_slowdown(self, rank: int, iteration: int) -> float:
        """Duration multiplier for disk service on ``rank`` at the
        *global* ``iteration``."""
        return 1.0 / self.disk_factor[rank, self._col(iteration)]
