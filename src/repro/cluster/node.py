"""Per-node hardware description.

The paper emulates heterogeneity on identical physical machines by
(1) slowing a CPU down with extra work, (2) capping the memory an
application may use for its in-core local arrays (ICLAs), and
(3) artificially scaling I/O speed.  :class:`NodeSpec` captures the
resulting *effective* node: relative CPU power, application memory, and
local-disk seek/bandwidth figures.

``os_cache_bytes`` models the *physical* page cache of the underlying
machine.  It is deliberately separate from ``memory_bytes``: in the
paper's emulation the application memory is capped artificially while the
operating system still caches file pages in the machine's full RAM, which
is why the authors observed "better than expected I/O performance" for
nearly-in-core distributions (Section 5.2.2).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["NodeSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one cluster node.

    Parameters
    ----------
    name:
        Human-readable node label (``"node3"``).
    cpu_power:
        Relative CPU power.  A stage that takes ``t`` seconds of work at
        power 1.0 takes ``t / cpu_power`` seconds on this node.
    memory_bytes:
        Application memory available for local arrays.  Determines ICLA
        sizes and whether a local array is in core.
    disk_read_seek, disk_write_seek:
        Fixed per-access overheads ``rs`` / ``ws`` (seconds), independent
        of the variable being accessed (paper Section 4.1.1).
    disk_read_bw, disk_write_bw:
        Sustained transfer bandwidth in bytes/second.  Per-element
        latencies ``r(v)`` / ``w(v)`` follow from the element size.
    os_cache_bytes:
        Physical page-cache capacity of the underlying machine (not
        scaled by the emulated memory cap).  The default mimics the
        paper's Solaris 2.8 servers, whose segmap file cache is limited
        to roughly 12%% of physical RAM (~32 MiB on a 256 MiB server).
    """

    name: str
    cpu_power: float = 1.0
    memory_bytes: int = 96 * 1024 * 1024
    disk_read_seek: float = 8e-3
    disk_write_seek: float = 10e-3
    disk_read_bw: float = 50e6
    disk_write_bw: float = 40e6
    os_cache_bytes: int = 32 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.cpu_power <= 0:
            raise ConfigurationError(
                f"{self.name}: cpu_power must be positive, got {self.cpu_power}"
            )
        if self.memory_bytes <= 0:
            raise ConfigurationError(
                f"{self.name}: memory_bytes must be positive, got {self.memory_bytes}"
            )
        for field in ("disk_read_seek", "disk_write_seek"):
            if getattr(self, field) < 0:
                raise ConfigurationError(
                    f"{self.name}: {field} must be non-negative"
                )
        for field in ("disk_read_bw", "disk_write_bw"):
            if getattr(self, field) <= 0:
                raise ConfigurationError(
                    f"{self.name}: {field} must be positive"
                )
        if self.os_cache_bytes < 0:
            raise ConfigurationError(
                f"{self.name}: os_cache_bytes must be non-negative"
            )

    # -- derived quantities -------------------------------------------------

    def read_seconds(self, nbytes: float) -> float:
        """Seconds for one synchronous disk read of ``nbytes`` (seek + xfer)."""
        return self.disk_read_seek + nbytes / self.disk_read_bw

    def write_seconds(self, nbytes: float) -> float:
        """Seconds for one synchronous disk write of ``nbytes`` (seek + xfer)."""
        return self.disk_write_seek + nbytes / self.disk_write_bw

    def compute_seconds(self, work: float) -> float:
        """Seconds to execute ``work`` seconds-at-power-1.0 of computation."""
        return work / self.cpu_power

    # -- convenient copies ---------------------------------------------------

    def with_(self, **changes) -> "NodeSpec":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def scaled_io(self, factor: float) -> "NodeSpec":
        """Return a copy whose disk is ``factor``x slower (factor > 1) or
        faster (factor < 1); both seek and bandwidth are scaled, matching
        the paper's 'artificially increasing or decreasing the ICLA sizes
        read or written' emulation of differing I/O speeds."""
        if factor <= 0:
            raise ConfigurationError("I/O scale factor must be positive")
        return self.with_(
            disk_read_seek=self.disk_read_seek * factor,
            disk_write_seek=self.disk_write_seek * factor,
            disk_read_bw=self.disk_read_bw / factor,
            disk_write_bw=self.disk_write_bw / factor,
        )
