"""Heterogeneous cluster descriptions (paper Figure 2).

A cluster is a set of nodes, each with its own relative CPU power, memory
capacity and local-disk characteristics, joined by a uniform network.
:mod:`repro.cluster.configs` provides the four named configurations of
the paper's Table 1 (``DC``, ``IO``, ``HY1``, ``HY2``) and generators for
the seventeen/twelve emulated-architecture suites of Section 5.
:mod:`repro.cluster.dynamics` adds time-varying behaviour — background
load traces, CPU drift, disk degradation, node loss/join — attached to a
cluster as a :class:`DynamicsSpec`.
"""

from repro.cluster.node import NodeSpec
from repro.cluster.network import NetworkSpec
from repro.cluster.dynamics import (
    CpuDrift,
    DiskDegradation,
    DynamicsSpec,
    LoadTrace,
    NodeEvent,
    NodeLoad,
)
from repro.cluster.cluster import ClusterSpec
from repro.cluster.configs import (
    DYNAMICS_SCENARIOS,
    baseline_node,
    baseline_cluster,
    config_dc,
    config_io,
    config_hy1,
    config_hy2,
    dynamics_scenario,
    dynamics_scenarios,
    table1_configs,
    architecture_suite,
    prefetch_suite,
)

__all__ = [
    "NodeSpec",
    "NetworkSpec",
    "ClusterSpec",
    "DynamicsSpec",
    "LoadTrace",
    "NodeLoad",
    "CpuDrift",
    "DiskDegradation",
    "NodeEvent",
    "DYNAMICS_SCENARIOS",
    "dynamics_scenario",
    "dynamics_scenarios",
    "baseline_node",
    "baseline_cluster",
    "config_dc",
    "config_io",
    "config_hy1",
    "config_hy2",
    "table1_configs",
    "architecture_suite",
    "prefetch_suite",
]
