"""Whole-cluster specification (paper Figure 2)."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.dynamics import DynamicsSpec
from repro.cluster.network import NetworkSpec
from repro.cluster.node import NodeSpec
from repro.exceptions import ConfigurationError
from repro.util.units import bytes_to_human

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """A heterogeneous cluster: an ordered set of nodes plus a network.

    Node order matters: GEN_BLOCK distributions assign contiguous row
    ranges to nodes in this order, nearest-neighbour exchanges pair
    adjacent nodes, and pipelines flow from node 0 towards node n-1.
    """

    name: str
    nodes: Tuple[NodeSpec, ...]
    network: NetworkSpec = field(default_factory=NetworkSpec)
    #: Optional time-varying behaviour (load traces, drift, node loss);
    #: ``None`` — the common case — means a fully static cluster.  An
    #: attached spec is validated against the node count and honored by
    #: the emulators unless a call site overrides ``dynamics=``.
    dynamics: Optional[DynamicsSpec] = None

    def __post_init__(self) -> None:
        if len(self.nodes) < 1:
            raise ConfigurationError("a cluster needs at least one node")
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate node names in {self.name}")
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if self.dynamics is not None:
            self.dynamics.validate(len(self.nodes))

    # -- basic accessors -----------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[NodeSpec]:
        return iter(self.nodes)

    def __getitem__(self, i: int) -> NodeSpec:
        return self.nodes[i]

    # -- aggregate views (handy for distribution factories) ------------------

    @property
    def cpu_powers(self) -> np.ndarray:
        """Relative CPU power per node, as a float array."""
        return np.array([n.cpu_power for n in self.nodes], dtype=float)

    @property
    def memory_bytes(self) -> np.ndarray:
        """Application memory per node, as an int array."""
        return np.array([n.memory_bytes for n in self.nodes], dtype=np.int64)

    @property
    def total_memory_bytes(self) -> int:
        return int(self.memory_bytes.sum())

    @property
    def is_cpu_homogeneous(self) -> bool:
        """True when all nodes have equal relative CPU power (the paper's
        precondition for collapsing the spectrum to Blk..I-C)."""
        powers = self.cpu_powers
        return bool(np.allclose(powers, powers[0]))

    def memory_pressure(self, dataset_bytes: int) -> float:
        """Ratio of dataset size to aggregate application memory.  Above
        roughly 1.0 the dataset cannot be fully in core for *any*
        distribution."""
        return dataset_bytes / self.total_memory_bytes

    # -- construction helpers --------------------------------------------------

    def with_nodes(self, nodes: Sequence[NodeSpec], name: str = "") -> "ClusterSpec":
        """Return a copy with a replaced node list (and optionally name)."""
        return dataclasses.replace(
            self, nodes=tuple(nodes), name=name or self.name
        )

    def replace_node(self, index: int, node: NodeSpec) -> "ClusterSpec":
        """Return a copy with node ``index`` replaced."""
        nodes = list(self.nodes)
        nodes[index] = node
        return self.with_nodes(nodes)

    def with_dynamics(
        self, dynamics: Optional[DynamicsSpec], name: str = ""
    ) -> "ClusterSpec":
        """Return a copy with ``dynamics`` attached (or detached, with
        ``None``)."""
        return dataclasses.replace(
            self, dynamics=dynamics, name=name or self.name
        )

    # -- reporting ---------------------------------------------------------

    def describe(self) -> str:
        """Multi-line human-readable summary of the cluster."""
        lines = [f"cluster {self.name!r}: {self.n_nodes} nodes"]
        for i, n in enumerate(self.nodes):
            lines.append(
                f"  [{i}] {n.name}: power={n.cpu_power:.2f} "
                f"mem={bytes_to_human(n.memory_bytes)} "
                f"disk(r)={n.disk_read_bw / 1e6:.0f}MB/s "
                f"seek={n.disk_read_seek * 1e3:.1f}ms"
            )
        net = self.network
        lines.append(
            f"  net: os={net.send_overhead * 1e6:.0f}us "
            f"or={net.recv_overhead * 1e6:.0f}us "
            f"bw={1.0 / net.latency_per_byte / 1e6:.0f}MB/s"
            if net.latency_per_byte > 0
            else "  net: infinite bandwidth"
        )
        if self.dynamics is not None and self.dynamics:
            lines.extend(
                "  " + line for line in self.dynamics.describe().splitlines()
            )
        return "\n".join(lines)
