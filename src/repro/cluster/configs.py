"""Named cluster configurations (paper Table 1) and architecture suites.

The paper emulates heterogeneous clusters on eight identical Dell Quad
servers.  We reproduce the four configurations described in Table 1
exactly as specified there, and generate deterministic suites of
seventeen (non-prefetching) and twelve (prefetching) emulated
architectures for the Figure-9 accuracy sweeps.  The suites always
include the four Table-1 configurations; the remainder vary CPU powers,
memory caps and I/O scalings over the same ranges the named
configurations span.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.cluster import ClusterSpec
from repro.cluster.dynamics import (
    CpuDrift,
    DiskDegradation,
    DynamicsSpec,
    LoadTrace,
    NodeEvent,
    NodeLoad,
)
from repro.cluster.network import NetworkSpec
from repro.cluster.node import NodeSpec
from repro.exceptions import ConfigurationError
from repro.util.rng import stream
from repro.util.units import gib, mib

__all__ = [
    "N_NODES",
    "baseline_node",
    "baseline_cluster",
    "config_dc",
    "config_io",
    "config_hy1",
    "config_hy2",
    "table1_configs",
    "architecture_suite",
    "prefetch_suite",
    "DYNAMICS_SCENARIOS",
    "dynamics_scenario",
    "dynamics_scenarios",
]

#: The paper's cluster has eight nodes (one process per Dell Quad server).
N_NODES = 8

#: Memory cap meaning "no memory restriction" (paper: "no nodes with
#: memory restrictions (so I/O is not a concern)").
_AMPLE_MEMORY = gib(1)
_LARGE_MEMORY = mib(256)
_SMALL_MEMORY = mib(32)
_BASE_MEMORY = mib(96)

#: Physical page cache of the underlying (identical) machines.  This is a
#: property of the real hardware, so it is *not* varied per emulated
#: architecture.  Solaris 2.8's segmap cache is limited to ~12% of
#: physical RAM, so a 256 MiB server caches roughly 32 MiB of file pages.
_OS_CACHE = mib(32)


def baseline_node(index: int) -> NodeSpec:
    """The homogeneous node every configuration starts from."""
    return NodeSpec(
        name=f"node{index}",
        cpu_power=1.0,
        memory_bytes=_BASE_MEMORY,
        os_cache_bytes=_OS_CACHE,
    )


def baseline_cluster(name: str = "base", n_nodes: int = N_NODES) -> ClusterSpec:
    """A homogeneous ``n_nodes`` cluster with the baseline node and network."""
    return ClusterSpec(
        name=name,
        nodes=tuple(baseline_node(i) for i in range(n_nodes)),
        network=NetworkSpec(),
    )


def config_dc() -> ClusterSpec:
    """Table 1 ``DC`` ("different CPUs"): two nodes with lower relative CPU
    power, two with higher, the rest unchanged.  Memories are ample so I/O
    is not a concern and the distribution spectrum collapses to Blk..Bal.
    """
    nodes = []
    powers = [0.25, 0.25, 1.0, 1.0, 1.0, 1.0, 2.0, 2.0]
    for i, p in enumerate(powers):
        nodes.append(
            baseline_node(i).with_(cpu_power=p, memory_bytes=_AMPLE_MEMORY)
        )
    return ClusterSpec(name="DC", nodes=tuple(nodes))


def config_io() -> ClusterSpec:
    """Table 1 ``IO`` ("I/O-induced"): half the nodes have high I/O latency
    and small memories, but all nodes have equal relative CPU power.  With
    homogeneous CPUs the spectrum collapses to Blk..I-C."""
    nodes = []
    for i in range(N_NODES):
        node = baseline_node(i)
        if i < N_NODES // 2:
            node = node.with_(memory_bytes=_SMALL_MEMORY).scaled_io(2.0)
        else:
            node = node.with_(memory_bytes=_LARGE_MEMORY)
        nodes.append(node)
    return ClusterSpec(name="IO", nodes=tuple(nodes))


def config_hy1() -> ClusterSpec:
    """Table 1 ``HY1``: four nodes with varying relative CPU powers, the
    other four with low I/O latencies (fast disks) and small memories."""
    nodes = []
    varying = [0.5, 0.75, 1.5, 2.0]
    for i in range(N_NODES):
        node = baseline_node(i)
        if i < 4:
            node = node.with_(cpu_power=varying[i], memory_bytes=_LARGE_MEMORY)
        else:
            node = node.with_(memory_bytes=_SMALL_MEMORY).scaled_io(0.25)
        nodes.append(node)
    return ClusterSpec(name="HY1", nodes=tuple(nodes))


def config_hy2() -> ClusterSpec:
    """Table 1 ``HY2``: four nodes with varying relative CPU power, two
    with high I/O latencies, and two with large memories."""
    nodes = []
    varying = [0.5, 0.75, 1.25, 1.5]
    for i in range(N_NODES):
        node = baseline_node(i)
        if i < 4:
            node = node.with_(cpu_power=varying[i])
        elif i < 6:
            node = node.scaled_io(4.0)
        else:
            node = node.with_(memory_bytes=_LARGE_MEMORY)
        nodes.append(node)
    return ClusterSpec(name="HY2", nodes=tuple(nodes))


def table1_configs() -> Dict[str, ClusterSpec]:
    """The four named configurations of the paper's Table 1."""
    return {
        "DC": config_dc(),
        "IO": config_io(),
        "HY1": config_hy1(),
        "HY2": config_hy2(),
    }


def _random_architecture(index: int, label: str) -> ClusterSpec:
    """One deterministic pseudo-random architecture for a suite.

    Varies the three emulated axes the paper varies: relative CPU power
    (0.5x .. 2x), application memory (small .. ample), and I/O speed
    (4x slower .. 2x faster), over random subsets of the nodes.
    """
    rng = stream("architecture-suite", label, index)
    nodes: List[NodeSpec] = []
    kind = rng.choice(["dc-like", "io-like", "hybrid"])
    for i in range(N_NODES):
        node = baseline_node(i)
        if kind in ("dc-like", "hybrid") and rng.random() < 0.5:
            node = node.with_(
                cpu_power=float(rng.choice([0.5, 0.75, 1.25, 1.5, 2.0]))
            )
        if kind in ("io-like", "hybrid"):
            roll = rng.random()
            if roll < 0.35:
                node = node.with_(
                    memory_bytes=int(rng.choice([mib(24), mib(32), mib(48)]))
                ).scaled_io(float(rng.choice([2.0, 4.0])))
            elif roll < 0.55:
                node = node.with_(
                    memory_bytes=int(rng.choice([_LARGE_MEMORY, _AMPLE_MEMORY]))
                )
            elif roll < 0.70:
                node = node.scaled_io(0.5)
        if kind == "dc-like":
            node = node.with_(memory_bytes=_AMPLE_MEMORY)
        nodes.append(node)
    return ClusterSpec(name=f"{label}{index}", nodes=tuple(nodes))


def architecture_suite(n: int = 17) -> List[ClusterSpec]:
    """The emulated architectures for the non-prefetching accuracy sweep.

    The paper tests seventeen; the first four are always the Table-1
    configurations, the rest are deterministic pseudo-random variations.
    """
    named = list(table1_configs().values())
    if n <= len(named):
        return named[:n]
    extra = [
        _random_architecture(i, "ARCH") for i in range(n - len(named))
    ]
    return named + extra


def prefetch_suite(n: int = 12) -> List[ClusterSpec]:
    """The emulated architectures for the prefetching (Jacobi) sweep.

    The paper tests twelve.  Prefetching only matters when I/O occurs, so
    this suite keeps IO/HY1/HY2 from Table 1 and adds deterministic
    I/O-flavoured variations.
    """
    named = [config_io(), config_hy1()]
    if n <= len(named):
        return named[:n]
    extra = []
    i = 0
    while len(extra) < n - len(named):
        arch = _random_architecture(i, "PFARCH")
        i += 1
        # Prefetching architectures must exhibit memory pressure somewhere.
        if (arch.memory_bytes < _BASE_MEMORY).any():
            extra.append(arch)
    return named + extra


# -- dynamics scenarios ------------------------------------------------------

#: Named time-varying scenarios for the adaptive benchmark and CLI
#: (``repro adaptive --dynamics <name>``).  All are deterministic
#: functions of the global iteration index (load traces are seeded).
DYNAMICS_SCENARIOS = (
    "drift",
    "load-spike",
    "node-loss",
    "disk-fade",
    "stationary",
)


def dynamics_scenario(
    name: str, n_nodes: int = N_NODES, *, start: int = 20
) -> DynamicsSpec:
    """Build one named :class:`DynamicsSpec` for an ``n_nodes`` cluster.

    ``start`` is the global iteration at which the disturbance begins
    (round 0's instrumented measurement happens well before it, so an
    adaptive run must *re*-detect the change mid-run to profit).

    * ``drift`` — thermal/DVFS throttling: two nodes decay towards 45%
      of nominal speed from ``start`` on.
    * ``load-spike`` — competing jobs land on two nodes at ``start``
      (mean 50% CPU stolen, slowly drifting AR(1) traces).
    * ``node-loss`` — one node fail-slows to 10% capacity at ``start``.
    * ``disk-fade`` — two nodes' disk bandwidth decays to 40% from
      ``start`` on.
    * ``stationary`` — an attached-but-empty spec: behaves exactly like
      a static cluster (the control arm of the payoff benchmark).
    """
    if name not in DYNAMICS_SCENARIOS:
        raise ConfigurationError(
            f"unknown dynamics scenario {name!r}; "
            f"choose from {DYNAMICS_SCENARIOS}"
        )
    if n_nodes < 2:
        raise ConfigurationError("dynamics scenarios need >= 2 nodes")
    a, b = 0, n_nodes // 2
    if name == "drift":
        return DynamicsSpec(
            cpu_drift=(
                CpuDrift(a, rate=0.08, floor=0.45, start_iteration=start),
                CpuDrift(b, rate=0.08, floor=0.45, start_iteration=start),
            ),
            name="drift",
        )
    if name == "load-spike":
        trace = LoadTrace(mean=0.5, volatility=0.2, persistence=0.9)
        return DynamicsSpec(
            loads=(
                NodeLoad(a, trace, start_iteration=start),
                NodeLoad(b, trace, start_iteration=start),
            ),
            name="load-spike",
        )
    if name == "node-loss":
        return DynamicsSpec(
            events=(NodeEvent(a, at_iteration=start, residual=0.1),),
            name="node-loss",
        )
    if name == "disk-fade":
        return DynamicsSpec(
            disk_degradation=(
                DiskDegradation(a, rate=0.1, floor=0.4, start_iteration=start),
                DiskDegradation(b, rate=0.1, floor=0.4, start_iteration=start),
            ),
            name="disk-fade",
        )
    return DynamicsSpec(name="stationary")


def dynamics_scenarios(n_nodes: int = N_NODES) -> Dict[str, DynamicsSpec]:
    """All named scenarios, keyed by name."""
    return {
        name: dynamics_scenario(name, n_nodes) for name in DYNAMICS_SCENARIOS
    }
