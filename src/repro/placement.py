"""Shared ICLA placement logic: which variables are in core, and how big
their in-core pieces are.

Both the emulator and MHETA's out-of-core oracle answer the same
question — given a node's available memory and the local rows a
distribution assigns, which distributed variables fit entirely in memory
(in core) and what ICLA size do the others stream through? — using the
same greedy rule, so the *only* systematic difference between them is the
amount of memory they believe is available:

* MHETA's heuristic assumes the full application memory is usable
  (paper: "MHETA currently uses a simple heuristic");
* the emulator's runtime reserves buffer/bookkeeping memory, which is
  precisely the misclassification window behind limitation 2 of paper
  Section 5.4.

Rule: replicated variables are resident everywhere.  Distributed
variables are considered smallest-first; each fits in core while memory
remains (keeping at least one block row per remaining variable); the
leftover memory is divided among the out-of-core variables pro rata to
their local sizes, giving each its ICLA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.exceptions import SimulationError
from repro.program.structure import ProgramStructure
from repro.program.variables import Variable

__all__ = ["VariablePlacement", "MemoryPlan", "plan_memory"]


@dataclass(frozen=True)
class VariablePlacement:
    """Placement of one distributed variable on one node."""

    name: str
    local_rows: int
    local_bytes: float
    in_core: bool
    icla_bytes: float  #: bytes per in-core piece (== local_bytes when in core)
    block_rows: int  #: rows per ICLA piece (== local_rows when in core)
    n_io: int  #: disk passes to stream the whole local array (1 if in core)

    @property
    def ocla_bytes(self) -> float:
        """Out-of-core local array size (0 when in core)."""
        return 0.0 if self.in_core else self.local_bytes


@dataclass(frozen=True)
class MemoryPlan:
    """Complete placement for one node under one distribution."""

    node_name: str
    local_rows: int
    available_bytes: float  #: memory usable for distributed data
    placements: Dict[str, VariablePlacement]

    def __getitem__(self, var: str) -> VariablePlacement:
        return self.placements[var]

    @property
    def any_out_of_core(self) -> bool:
        return any(not p.in_core for p in self.placements.values())

    @property
    def out_of_core_bytes(self) -> float:
        return sum(p.ocla_bytes for p in self.placements.values())

    @property
    def resident_bytes(self) -> float:
        """Bytes of distributed data resident in memory (full in-core
        arrays plus one ICLA per streamed variable)."""
        return sum(
            p.local_bytes if p.in_core else p.icla_bytes
            for p in self.placements.values()
        )


def plan_memory(
    program: ProgramStructure,
    local_rows: int,
    memory_bytes: float,
    *,
    reserved_bytes: float = 0.0,
    icla_reserved_bytes: float = 0.0,
    conservative_reserved_bytes: float = 0.0,
    forced_out_of_core: bool = False,
    variables: Optional[Sequence[Variable]] = None,
    order_policy: str = "size",
    share_policy: str = "prorata",
) -> MemoryPlan:
    """Compute variable placements for a node.

    Parameters
    ----------
    program:
        The application structure (provides variables and replicated
        sizes).
    local_rows:
        Rows assigned to this node by the distribution.
    memory_bytes:
        The node's application memory.
    reserved_bytes:
        Memory subtracted before the in-core determination.  Both the
        model's oracle and the emulated runtime pass 0 here: a local
        array that nominally fits in memory *is* kept in core (the
        runtime swaps buffer space for lazier double buffering rather
        than spilling a fitting array to disk).
    icla_reserved_bytes:
        Memory the runtime's buffers take away from the ICLAs of
        variables that are *already* out of core.  The model's oracle
        passes 0, so its predicted ICLA sizes (and hence ``N_IO``) are
        slightly optimistic — part of limitation 2 of paper Section 5.4.
    conservative_reserved_bytes:
        Extra headroom the runtime demands before keeping a *secondary*
        variable in core (the primary — largest — array's placement is
        never affected: the runtime pins its working set first).  The
        oracle passes 0, so near the boundary it occasionally declares a
        vector in core that the runtime actually streams — the paper's
        "occasionally placing what should be an out-of-core variable in
        the in-core variable set", with the bounded (~10%) cost the
        paper observed because only small variables flip.
    forced_out_of_core:
        Instrumented-iteration mode (paper Section 4.1.1): every
        distributed variable is forced to stream through disk so its I/O
        latencies can be measured, using an ICLA of at most half the
        local array.
    variables:
        Restrict planning to these variables (defaults to all distributed
        variables of the program).
    order_policy:
        Order in which variables are considered for in-core placement:
        ``"size"`` (smallest first — the model heuristic's assumption) or
        ``"declaration"`` (program order — what the runtime actually
        does).  The divergence between the two is part of why MHETA's
        out-of-core heuristic is "not sophisticated" (Section 5.4).
    share_policy:
        How leftover memory is split among out-of-core variables:
        ``"prorata"`` to local sizes (model) or ``"equal"`` (runtime).
    """
    if local_rows < 0:
        raise SimulationError("local_rows must be non-negative")
    if variables is None:
        variables = program.distributed_variables
    available = max(
        0.0, memory_bytes - program.replicated_bytes - reserved_bytes
    )

    locals_: Dict[str, float] = {
        v.name: v.local_bytes(local_rows) for v in variables
    }
    if order_policy == "size":
        order = sorted(variables, key=lambda v: locals_[v.name])
    elif order_policy == "declaration":
        order = list(variables)
    else:
        raise SimulationError(f"unknown order_policy {order_policy!r}")
    if share_policy not in ("prorata", "equal"):
        raise SimulationError(f"unknown share_policy {share_policy!r}")

    in_core: Dict[str, bool] = {}
    remaining = available
    pending = list(order)
    if forced_out_of_core:
        for v in order:
            in_core[v.name] = False
    else:
        largest = max(locals_.values(), default=0.0)
        for i, v in enumerate(order):
            size = locals_[v.name]
            # Keep at least one row's worth of memory for every variable
            # still to be placed, so ICLAs never collapse to zero.
            tail_reserve = sum(
                max(w.row_bytes, 1.0) for w in order[i + 1 :]
            )
            headroom = (
                0.0 if size >= largest else conservative_reserved_bytes
            )
            if size <= remaining - tail_reserve - headroom:
                in_core[v.name] = True
                remaining -= size
            else:
                in_core[v.name] = False
        pending = [v for v in order if not in_core[v.name]]

    # Divide what is left among the out-of-core variables (minus the
    # runtime's buffer reservation, which only squeezes ICLA sizes; on
    # very tight nodes the runtime shrinks its buffers rather than
    # letting ICLAs collapse into seek-thrashing slivers, so the
    # reservation never takes more than half of what is left).
    remaining = max(remaining - min(icla_reserved_bytes, 0.5 * remaining), 0.0)
    ooc_total = sum(locals_[v.name] for v in pending)
    placements: Dict[str, VariablePlacement] = {}
    for v in order:
        size = locals_[v.name]
        if in_core.get(v.name, False) or local_rows == 0 or size == 0.0:
            placements[v.name] = VariablePlacement(
                name=v.name,
                local_rows=local_rows,
                local_bytes=size,
                in_core=True,
                icla_bytes=size,
                block_rows=max(local_rows, 1),
                n_io=1,
            )
            continue
        if share_policy == "prorata":
            share = (
                remaining * (size / ooc_total) if ooc_total > 0 else remaining
            )
        else:  # equal split among out-of-core variables
            share = remaining / max(len(pending), 1)
        block_rows = max(1, int(share // max(v.row_bytes, 1e-12)))
        if forced_out_of_core:
            # At most half the local array per piece => at least 2 passes.
            block_rows = max(1, min(block_rows, local_rows // 2 or 1))
        block_rows = min(block_rows, local_rows)
        n_io = -(-local_rows // block_rows)  # ceil division
        placements[v.name] = VariablePlacement(
            name=v.name,
            local_rows=local_rows,
            local_bytes=size,
            in_core=False,
            icla_bytes=block_rows * v.row_bytes,
            block_rows=block_rows,
            n_io=n_io,
        )
    return MemoryPlan(
        node_name="",
        local_rows=local_rows,
        available_bytes=available,
        placements=placements,
    )
