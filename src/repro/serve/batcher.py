"""Micro-batching request collector for the advisor coordinator.

The service's throughput lever is the same one the search layer pulls:
one vectorised ``predict(batch=True)`` pass over ``B`` candidates costs
far less than ``B`` scalar calls.  The :class:`MicroBatcher` turns the
request stream into such passes: the first submission of a round opens
a short *gather window* (default 2 ms); everything arriving inside the
window joins the round; when the window closes (or the round hits
``max_batch`` distinct keys) the whole round is flushed through one
handler call.

Coalescing is by key: submissions sharing a
:meth:`~repro.serve.protocol.Query.coalesce_key` are answered by a
*single* computation — every waiter gets the same result object.  The
telemetry story (all under ``serve/``):

* ``serve/requests`` — submissions accepted;
* ``serve/batches`` — handler flushes;
* ``serve/coalesced`` — submissions answered without their own
  computation (duplicates within a round);
* ``serve/batch_distinct`` / ``serve/batch_requests`` — per-round
  series of distinct keys vs. total waiters;
* ``serve/queue_depth`` — gauge of pending distinct keys, sampled at
  each submission.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.obs import Recorder, as_recorder

__all__ = ["MicroBatcher"]


class _Pending:
    """One distinct key's round state: the payload to compute and every
    future waiting on the answer."""

    __slots__ = ("payload", "futures")

    def __init__(self, payload: Any) -> None:
        self.payload = payload
        self.futures: List[asyncio.Future] = []


class MicroBatcher:
    """Coalesce concurrent submissions into shared handler flushes.

    Parameters
    ----------
    flush:
        ``async (payloads: List) -> List`` — computes one result per
        *distinct* payload, in order.  A returned ``BaseException``
        instance fails that payload's waiters only (how the coordinator
        keeps one malformed query from poisoning its round); a *raised*
        exception fails every waiter of the round.  Either way the
        batcher stays usable.
    window_seconds:
        Gather window opened by the first submission of a round.  ``0``
        still yields once through the event loop, so truly concurrent
        submitters coalesce even with no added latency.
    max_batch:
        Distinct-key ceiling per round; reaching it flushes immediately.
    """

    def __init__(
        self,
        flush: Callable[[List[Any]], Awaitable[List[Any]]],
        *,
        window_seconds: float = 0.002,
        max_batch: int = 256,
        telemetry: Optional[Recorder] = None,
    ) -> None:
        if window_seconds < 0:
            raise ValueError("window_seconds must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._flush = flush
        self.window_seconds = float(window_seconds)
        self.max_batch = int(max_batch)
        self.telemetry = as_recorder(telemetry)
        self._pending: Dict[Any, _Pending] = {}
        self._flusher: Optional[asyncio.Task] = None

    async def submit(self, key: Any, payload: Any) -> Any:
        """Join the current round (opening one if needed); resolves to
        the result of ``payload``'s computation once the round flushes."""
        rec = self.telemetry
        loop = asyncio.get_running_loop()
        entry = self._pending.get(key)
        if entry is None:
            entry = _Pending(payload)
            self._pending[key] = entry
        elif rec:
            rec.count("serve/coalesced")
        future: asyncio.Future = loop.create_future()
        entry.futures.append(future)
        if rec:
            rec.count("serve/requests")
            rec.set("serve/queue_depth", len(self._pending))
        if len(self._pending) >= self.max_batch:
            self._flush_now()
        elif self._flusher is None:
            self._flusher = asyncio.ensure_future(self._window())
        return await future

    async def _window(self) -> None:
        await asyncio.sleep(self.window_seconds)
        self._flusher = None
        await self._run_round(self._take())
    # asyncio.sleep(0) yields at least once, so a zero window still
    # gathers everything already sitting on the loop's ready queue.

    def _flush_now(self) -> None:
        """Hit the max_batch ceiling: detach the full round and flush it
        without waiting for the window timer (which is cancelled)."""
        if self._flusher is not None:
            self._flusher.cancel()
            self._flusher = None
        asyncio.ensure_future(self._run_round(self._take()))

    def _take(self) -> List[Tuple[Any, _Pending]]:
        round_ = list(self._pending.items())
        self._pending.clear()
        return round_

    async def _run_round(self, round_: List[Tuple[Any, _Pending]]) -> None:
        if not round_:
            return
        rec = self.telemetry
        if rec:
            rec.count("serve/batches")
            rec.observe("serve/batch_distinct", len(round_))
            rec.observe(
                "serve/batch_requests",
                sum(len(e.futures) for _, e in round_),
            )
        try:
            results = await self._flush([e.payload for _, e in round_])
        except Exception as exc:  # noqa: BLE001 - fanned out to waiters
            for _, entry in round_:
                for future in entry.futures:
                    if not future.done():
                        future.set_exception(exc)
            return
        if len(results) != len(round_):
            exc = RuntimeError(
                f"flush returned {len(results)} results for "
                f"{len(round_)} distinct payloads"
            )
            for _, entry in round_:
                for future in entry.futures:
                    if not future.done():
                        future.set_exception(exc)
            return
        for (_, entry), result in zip(round_, results):
            for future in entry.futures:
                if future.done():
                    continue
                if isinstance(result, BaseException):
                    future.set_exception(result)
                else:
                    future.set_result(result)

    async def drain(self) -> None:
        """Flush anything pending and wait for it (shutdown path)."""
        while self._pending or self._flusher is not None:
            if self._flusher is not None:
                self._flusher.cancel()
                self._flusher = None
            await self._run_round(self._take())
