"""Clients for the distribution-advisor service.

Two flavours over the same line protocol
(:mod:`repro.serve.protocol`):

* :class:`ServeClient` — blocking, stdlib-socket, one outstanding
  request at a time.  What ``repro query`` and simple scripts use.
* :class:`AsyncServeClient` — asyncio, *pipelined*: many outstanding
  requests share one connection, matched back to their futures by
  request ``id``.  What the load benchmark and the concurrency suite
  drive thousands of simultaneous queries with.

Both raise :class:`~repro.exceptions.ServeError` when the server
answers ``ok: false``; transport failures surface as the usual
``OSError`` family.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Dict, Optional

from repro.exceptions import ServeError
from repro.serve.protocol import encode_message

__all__ = ["ServeClient", "AsyncServeClient"]


def _check(response: Dict[str, Any]) -> Dict[str, Any]:
    if not isinstance(response, dict) or "ok" not in response:
        raise ServeError(f"malformed server response: {response!r}")
    if not response["ok"]:
        raise ServeError(response.get("error", "unknown server error"))
    return response.get("result", {})


class _QueryMixin:
    """op-specific convenience wrappers shared by both clients; the
    subclass provides ``request(payload) -> result`` (sync or async)."""

    def predict(self, app: str, **fields) -> Any:
        return self.request({"op": "predict", "app": app, **fields})

    def verify(self, app: str, **fields) -> Any:
        return self.request({"op": "verify", "app": app, **fields})

    def search(self, app: str, **fields) -> Any:
        return self.request({"op": "search", "app": app, **fields})

    def stats(self) -> Any:
        return self.request({"op": "stats"})

    def ping(self) -> Any:
        return self.request({"op": "ping"})

    def shutdown(self) -> Any:
        return self.request({"op": "shutdown"})


class ServeClient(_QueryMixin):
    """Blocking client: one connection, sequential request/response.

    ``socket_path`` selects a unix-domain socket; otherwise TCP to
    ``host:port``.  Usable as a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7421,
        socket_path: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            self._sock = socket.create_connection(
                (host, port), timeout=timeout
            )
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._next_id += 1
        request_id = self._next_id
        self._sock.sendall(encode_message({"id": request_id, **payload}))
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        response = json.loads(line.decode("utf-8"))
        if response.get("id") != request_id:
            raise ServeError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}"
            )
        return _check(response)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class AsyncServeClient(_QueryMixin):
    """Pipelining asyncio client.

    Create with :meth:`open`; every :meth:`request` writes immediately
    and awaits its own future, so any number of requests may be in
    flight on the one connection — the server answers out of order and
    a background reader routes each response by ``id``.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._waiting: Dict[int, asyncio.Future] = {}
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def open(
        cls,
        host: str = "127.0.0.1",
        port: int = 7421,
        socket_path: Optional[str] = None,
    ) -> "AsyncServeClient":
        if socket_path is not None:
            reader, writer = await asyncio.open_unix_connection(socket_path)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line.decode("utf-8"))
                future = self._waiting.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            closed = ServeError("server closed the connection")
            for future in self._waiting.values():
                if not future.done():
                    future.set_exception(closed)
            self._waiting.clear()

    async def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self._next_id += 1
        request_id = self._next_id
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiting[request_id] = future
        self._writer.write(encode_message({"id": request_id, **payload}))
        await self._writer.drain()
        return _check(await future)

    async def aclose(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:
            pass

    async def __aenter__(self) -> "AsyncServeClient":
        return self

    async def __aexit__(self, *exc: object) -> None:
        await self.aclose()
