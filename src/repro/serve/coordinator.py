"""The always-on distribution-advisor coordinator.

``repro serve`` turns the call-per-use library stack into a resident
service: an asyncio server accepts concurrent ``(app, cluster, budget)``
queries over a local TCP or unix-domain socket, and a single
:class:`ServeCoordinator` answers all of them from one warm set of
model state — the same shape an inference server takes.

Where the speed comes from:

* **Resident models.**  Building a model instruments an iteration (an
  emulator run); the coordinator builds each ``(app, config, scale,
  kernel)`` model once and keeps it in a bounded LRU, so its persistent
  table cache stays warm across every later query.
* **Micro-batched predictions.**  Concurrent ``predict``/``verify``
  queries gather for a short window (:class:`~repro.serve.batcher.
  MicroBatcher`), identical queries coalesce to one computation, and
  the distinct candidates that share a model are scored by one
  vectorised ``predict(batch=True)`` pass.
* **Shared search rounds.**  Searches are deterministic given their
  parameters, so identical concurrent ``search`` queries await one
  in-flight run and repeats hit a bounded result cache.
* **Warm cache tiers.**  Per-model :class:`~repro.search.base.
  EvaluationCache` entries persist across requests (a repeat candidate
  never reaches the kernel), emulator runs share the process-wide
  :class:`~repro.parallel.cache.RunCache`, and an optional on-disk
  :class:`~repro.parallel.cache.SweepCache` lets a fleet of server
  processes share ``(actual, predicted)`` history (its merge-on-save
  makes interleaved saves safe).

Model and emulator work runs on a single executor thread so the event
loop keeps accepting and coalescing while a pass computes; the caches
it touches are constructed thread-safe (see ``repro.util.lru``).
Telemetry is recorded on the loop side only — the
:class:`~repro.obs.Recorder` is not thread-safe, so worker-side
recorders are merged back after each call returns.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ReproError, ServeError
from repro.obs import Recorder, as_recorder
from repro.serve.batcher import MicroBatcher
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    Query,
    decode_message,
    encode_message,
    error_response,
    ok_response,
)
from repro.util.lru import LRUCache

__all__ = ["ServeCoordinator", "ServerHandle"]

#: Evaluation-cache ceiling per resident model: past this many distinct
#: candidates the cache is reset rather than grown without bound (it is
#: a plain dict by design — see ``repro.search.base``).
EVAL_CACHE_CEILING = 100_000

#: Periodic persistence of the shared disk tier: every N stored pairs.
SWEEP_CACHE_SAVE_EVERY = 64


class _ModelEntry:
    """One resident model plus the per-model caches kept warm for it."""

    __slots__ = ("model", "cluster", "program", "eval_cache")

    def __init__(self, model, cluster, program) -> None:
        from repro.search.base import EvaluationCache

        self.model = model
        self.cluster = cluster
        self.program = program
        self.eval_cache = EvaluationCache(model.predict)


class ServeCoordinator:
    """Answer advisor queries from one warm, shared set of model state.

    Parameters
    ----------
    kernel:
        Default evaluation kernel for queries that do not name one.
    window_seconds / max_batch:
        Gather window and distinct-key ceiling of the predict/verify
        micro-batcher.
    batch_mode:
        ``"vector"`` (default) scores a round's distinct candidates with
        one ``predict(batch=True)`` pass (<= 1e-12 relative vs. serial);
        ``"serial"`` uses ``predict(batch="serial")`` — bit-identical to
        one-shot calls, for callers that need exact equality.
    jobs:
        Worker processes for the emulator fan-out of ``verify`` rounds
        (:func:`repro.parallel.verify_distributions`); ``1`` = serial.
    sweep_cache:
        Optional :class:`~repro.parallel.cache.SweepCache`; ``verify``
        answers are looked up there first and stored back, and the
        cache is saved (merge + atomic replace) every
        ``SWEEP_CACHE_SAVE_EVERY`` stores and at shutdown.
    run_cache:
        Optional :class:`~repro.parallel.cache.RunCache` used by the
        batched emulation passes behind ``verify`` (``None`` keeps the
        process-default in-memory cache).  When constructed with a
        ``path`` it is persisted on the same cadence as the sweep
        cache, so a fleet shares raw emulation history too.
    model_cache_entries:
        Bound of the resident-model LRU.
    telemetry:
        Server-side :class:`~repro.obs.Recorder`; every request lands in
        counters and per-op latency series (``span/serve/<op>``).
    """

    def __init__(
        self,
        *,
        kernel: str = "numpy",
        window_seconds: float = 0.002,
        max_batch: int = 256,
        batch_mode: str = "vector",
        jobs: int = 1,
        sweep_cache=None,
        run_cache=None,
        model_cache_entries: int = 16,
        telemetry: Optional[Recorder] = None,
    ) -> None:
        if batch_mode not in ("vector", "serial"):
            raise ServeError(f"unknown batch_mode {batch_mode!r}")
        self.kernel = kernel
        self.batch_mode = batch_mode
        self.jobs = jobs
        self.sweep_cache = sweep_cache
        self.run_cache = run_cache
        self.telemetry = as_recorder(telemetry)
        # Eviction must also drop the model's compiled evaluation plan
        # from the process-wide plan LRU: a resident model is the only
        # holder keeping that plan warm, and leaking it across cache
        # tiers would let dead plans crowd out live ones.
        self._models = LRUCache(
            model_cache_entries,
            threadsafe=True,
            on_evict=lambda key, entry: entry.model.release_plan(),
        )
        self._model_locks: Dict[Tuple, asyncio.Lock] = {}
        # One worker thread: passes serialise, the loop keeps gathering.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-model"
        )
        self._batcher = MicroBatcher(
            self._flush_round,
            window_seconds=window_seconds,
            max_batch=max_batch,
            telemetry=self.telemetry,
        )
        self._search_results = LRUCache(256)
        self._search_inflight: Dict[Tuple, asyncio.Future] = {}
        self._sweep_stores = 0
        self._run_cache_stores = 0
        self.requests_handled = 0
        self._shutdown = asyncio.Event()

    # -- model residency -----------------------------------------------------

    async def _entry(self, query: Query) -> _ModelEntry:
        """The resident model for the query, building it on first use.

        The per-key asyncio lock makes concurrent first queries build
        one model, not one each; later queries hit the LRU.
        """
        key = query.model_key()
        entry = self._models.get(key)
        if entry is not None:
            return entry
        lock = self._model_locks.setdefault(key, asyncio.Lock())
        async with lock:
            entry = self._models.get(key)
            if entry is None:
                rec = self.telemetry
                started = time.perf_counter()
                entry = await self._run_blocking(self._build_entry, query)
                self._models.put(key, entry)
                if rec:
                    rec.count("serve/models_built")
                    rec.observe(
                        "span/serve/build_model",
                        time.perf_counter() - started,
                    )
        return entry

    def _build_entry(self, query: Query) -> _ModelEntry:
        from repro.apps import application_by_name
        from repro.cluster import table1_configs
        from repro.experiments import build_model

        cluster = table1_configs()[query.config]
        program = application_by_name(query.app, query.scale).structure
        model = build_model(
            cluster, program, kernel=query.kernel or self.kernel
        )
        if model.kernel == "plan":
            # Warm the compiled plan with the model build (still on the
            # executor thread), so the first query pays compile cost
            # here rather than inside its scoring pass.  Compile time
            # lands in the plan-cache counters either way.
            model.ensure_plan()
        return _ModelEntry(model, cluster, program)

    async def _run_blocking(self, fn, *args):
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    # -- request handling ----------------------------------------------------

    async def handle(self, query: Query) -> Dict[str, Any]:
        """Answer one parsed query (the transport-independent core)."""
        rec = self.telemetry
        started = time.perf_counter()
        try:
            if query.op == "ping":
                return {"pong": True, "version": PROTOCOL_VERSION}
            if query.op == "stats":
                return self._stats()
            if query.op == "shutdown":
                self._shutdown.set()
                return {"stopping": True}
            if query.op == "search":
                return await self._handle_search(query)
            # predict / verify ride the micro-batcher.
            return await self._batcher.submit(query.coalesce_key(), query)
        finally:
            self.requests_handled += 1
            if rec:
                rec.count(f"serve/op/{query.op}")
                # Recorded directly (not via Recorder.span): concurrent
                # handlers interleave, and the span stack is shared.
                rec.observe(
                    f"span/serve/{query.op}", time.perf_counter() - started
                )

    # -- predict / verify rounds ---------------------------------------------

    async def _flush_round(self, queries: List[Query]) -> List[Dict[str, Any]]:
        """Score one gathered round: group by model, resolve candidates,
        batch the distinct evaluation-cache misses through the kernel,
        and (for ``verify``) fan the emulator runs out in parallel."""
        groups: Dict[Tuple, List[int]] = {}
        for i, query in enumerate(queries):
            groups.setdefault(query.model_key(), []).append(i)
        results: List[Optional[Dict[str, Any]]] = [None] * len(queries)
        for key, indices in groups.items():
            try:
                entry = await self._entry(queries[indices[0]])
                await self._score_group(
                    entry, [queries[i] for i in indices], indices, results
                )
            except ReproError as exc:
                # A group-level failure (model build, batched pass)
                # answers this model's queries; other groups proceed.
                for i in indices:
                    if results[i] is None:
                        results[i] = exc
        return results  # type: ignore[return-value]

    def _resolve(self, entry: _ModelEntry, query: Query):
        from repro.distribution import (
            balanced,
            block,
            GenBlock,
            in_core,
            in_core_balanced,
        )

        if query.counts is not None:
            return GenBlock(query.counts)
        name = query.dist or "blk"
        if name == "blk":
            return block(entry.cluster, entry.program.n_rows)
        if name == "bal":
            return balanced(entry.cluster, entry.program.n_rows)
        if name == "ic":
            return in_core(entry.cluster, entry.program)
        return in_core_balanced(entry.cluster, entry.program)

    async def _score_group(
        self,
        entry: _ModelEntry,
        queries: List[Query],
        indices: List[int],
        results: List[Optional[Dict[str, Any]]],
    ) -> None:
        rec = self.telemetry
        cache = entry.eval_cache
        if len(cache) > EVAL_CACHE_CEILING:
            cache = entry.eval_cache = type(cache)(entry.model.predict)
            if rec:
                rec.count("serve/eval_cache_resets")
        # Resolve and validate per query: a malformed distribution must
        # answer its own client with the error, not poison the shared
        # round it happened to be coalesced into.
        dists = []
        for pos, query in enumerate(queries):
            try:
                d = self._resolve(entry, query)
                if d.n_nodes != len(entry.cluster.nodes):
                    raise ServeError(
                        "counts do not match the cluster's node count"
                    )
                if d.n_rows != entry.program.n_rows:
                    raise ServeError(
                        f"counts must sum to {entry.program.n_rows} rows "
                        f"for {query.app!r} at scale {query.scale}"
                    )
            except ReproError as exc:
                results[indices[pos]] = exc
                d = None
            dists.append(d)
        queries = [q for q, d in zip(queries, dists) if d is not None]
        indices = [i for i, d in zip(indices, dists) if d is not None]
        dists = [d for d in dists if d is not None]
        if not dists:
            return
        missing = [d for d in dists if d.counts not in cache]
        if missing:
            values = await self._run_blocking(
                self._predict_batch, entry.model, missing
            )
            cache.put_many([d.counts for d in missing], values)
        if rec:
            rec.count("serve/eval_cache_hits", len(dists) - len(missing))
            rec.count("serve/kernel_evaluations", len(missing))
        predicted = [cache.value(d.counts) for d in dists]
        actuals: Dict[int, float] = {}
        verify_idx = [i for i, q in enumerate(queries) if q.op == "verify"]
        if verify_idx:
            # Rounds may mix static and dynamic-scenario verifies;
            # each scenario is one batched emulation pass of its own.
            by_scenario: Dict[Optional[str], List[int]] = {}
            for i in verify_idx:
                by_scenario.setdefault(queries[i].dynamics, []).append(i)
            for scenario, idxs in by_scenario.items():
                values = await self._verify(
                    entry,
                    [dists[i] for i in idxs],
                    [predicted[i] for i in idxs],
                    dynamics=self._dynamics_spec(entry, scenario),
                )
                for i, value in zip(idxs, values):
                    actuals[i] = value
        for pos, (i, query) in enumerate(zip(indices, queries)):
            result = {
                "app": query.app,
                "config": query.config,
                "counts": list(dists[pos].counts),
                "predicted_seconds": predicted[pos],
            }
            if query.op == "verify":
                actual = actuals[pos]
                result["actual_seconds"] = actual
                result["error_percent"] = (
                    abs(predicted[pos] - actual)
                    / min(predicted[pos], actual)
                    * 100.0
                )
                if query.dynamics is not None:
                    result["dynamics"] = query.dynamics
            results[i] = result

    def _predict_batch(self, model, dists) -> List[float]:
        """Executor-side kernel pass over a round's distinct misses."""
        if self.batch_mode == "serial" or len(dists) == 1:
            # Single candidates and serial mode go through the scalar
            # path: bit-identical to a one-shot ``model.predict(d)``.
            return [float(model.predict(d)) for d in dists]
        return [float(v) for v in model.predict(dists, batch=True)]

    @staticmethod
    def _dynamics_spec(entry: _ModelEntry, scenario: Optional[str]):
        """Resolve a verify query's scenario name to a DynamicsSpec.

        ``None`` (static) and the falsy ``stationary`` spec both come
        back as ``None`` so they share the static emulation/cache path.
        """
        if scenario is None:
            return None
        from repro.cluster.configs import dynamics_scenario

        spec = dynamics_scenario(scenario, len(entry.cluster.nodes))
        return spec if spec else None

    async def _verify(
        self, entry: _ModelEntry, dists, predicted: List[float], *,
        dynamics=None,
    ) -> List[float]:
        """Emulated actual seconds for a round's verify queries, through
        the on-disk sweep tier and the parallel runner.

        The sweep tier's keys ignore dynamics, so dynamic-scenario
        verifies bypass it entirely (neither served from it nor stored
        into it) — only the content-keyed run cache, whose keys *do*
        fold in the spec, may short-circuit those emulations.
        """
        rec = self.telemetry
        sweep = self.sweep_cache if dynamics is None else None
        actuals: List[Optional[float]] = [None] * len(dists)
        pending: List[int] = []
        for i, d in enumerate(dists):
            pair = (
                sweep.lookup(entry.cluster, entry.program, d)
                if sweep is not None
                else None
            )
            if pair is not None:
                actuals[i] = pair[0]
            else:
                pending.append(i)
        if pending:
            worker_rec = Recorder() if rec else None
            emulated = await self._run_blocking(
                self._emulate_pending,
                entry,
                [dists[i] for i in pending],
                worker_rec,
                dynamics,
            )
            if rec and worker_rec is not None:
                rec.merge(worker_rec)
            for i, actual in zip(pending, emulated):
                actuals[i] = actual
                if sweep is not None:
                    sweep.store(
                        entry.cluster, entry.program, dists[i],
                        actual, predicted[i],
                    )
                    self._sweep_stores += 1
            if sweep is not None and self._sweep_stores >= SWEEP_CACHE_SAVE_EVERY:
                self._sweep_stores = 0
                await self._run_blocking(sweep.save)
            run_cache = self.run_cache
            if run_cache is not None and run_cache.path is not None:
                self._run_cache_stores += len(pending)
                if self._run_cache_stores >= SWEEP_CACHE_SAVE_EVERY:
                    self._run_cache_stores = 0
                    await self._run_blocking(run_cache.save)
        if rec:
            rec.count("serve/verify_emulated", len(pending))
            rec.count("serve/verify_sweep_hits", len(dists) - len(pending))
            if dynamics is not None:
                rec.count("serve/verify_dynamic", len(dists))
        return actuals  # type: ignore[return-value]

    def _emulate_pending(
        self, entry: _ModelEntry, dists, telemetry=None, dynamics=None
    ) -> List[float]:
        # One coalesced verify round = one batched emulation pass (the
        # ``sim/batch/passes`` counter proves it) — sharded only when
        # ``jobs > 1`` asks for worker processes.
        from repro.parallel import verify_distributions

        return verify_distributions(
            entry.cluster,
            entry.program,
            dists,
            jobs=self.jobs,
            dynamics=dynamics if dynamics is not None else False,
            run_cache=self.run_cache,
            telemetry=telemetry,
        )

    # -- search --------------------------------------------------------------

    async def _handle_search(self, query: Query) -> Dict[str, Any]:
        """Deterministic searches coalesce: identical concurrent queries
        await one in-flight run; repeats hit the bounded result cache."""
        rec = self.telemetry
        key = query.coalesce_key()
        cached = self._search_results.get(key)
        if cached is not None:
            if rec:
                rec.count("serve/search_result_hits")
            return cached
        inflight = self._search_inflight.get(key)
        if inflight is not None:
            if rec:
                rec.count("serve/coalesced")
                rec.count("serve/search_coalesced")
            return await asyncio.shield(inflight)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._search_inflight[key] = future
        try:
            entry = await self._entry(query)
            worker_rec = Recorder() if rec else None
            result = await self._run_blocking(
                self._run_search, entry, query, worker_rec
            )
            if rec and worker_rec is not None:
                rec.merge(worker_rec)
            self._search_results.put(key, result)
            future.set_result(result)
            return result
        except BaseException as exc:
            future.set_exception(exc)
            # Mark retrieved: shielded waiters still receive it, but an
            # unobserved future must not log at interpreter exit.
            future.exception()
            raise
        finally:
            self._search_inflight.pop(key, None)

    def _run_search(
        self, entry: _ModelEntry, query: Query, telemetry: Optional[Recorder]
    ) -> Dict[str, Any]:
        from repro.search import (
            GeneralizedBinarySearch,
            GeneticSearch,
            RandomSearch,
            SimulatedAnnealingSearch,
            SpectrumSweep,
        )

        factories = {
            "gbs": GeneralizedBinarySearch,
            "genetic": GeneticSearch,
            "annealing": SimulatedAnnealingSearch,
            "random": RandomSearch,
            "sweep": SpectrumSweep,
        }
        searcher = factories[query.algorithm](
            entry.model, entry.cluster, batch_size=query.batch_size
        )
        result = searcher.search(budget=query.budget, telemetry=telemetry)
        return {
            "app": query.app,
            "config": query.config,
            "algorithm": result.algorithm,
            "counts": list(result.best.counts),
            "predicted_seconds": result.predicted_seconds,
            "evaluations": result.evaluations,
            "cache_hits": result.cache_hits,
        }

    # -- stats ---------------------------------------------------------------

    def _stats(self) -> Dict[str, Any]:
        from repro.core.plan import plan_cache_stats

        models = {}
        for key in list(self._models):
            entry = self._models.get(key)
            if entry is None:
                continue
            app, config, scale, kernel = key
            models["/".join([app, config, str(scale), kernel or self.kernel])] = {
                "table_cache": entry.model.table_cache_stats,
                "eval_cache_entries": len(entry.eval_cache),
                "eval_cache_hits": entry.eval_cache.hits,
            }
        stats: Dict[str, Any] = {
            "version": PROTOCOL_VERSION,
            "requests_handled": self.requests_handled,
            "models_resident": len(self._models),
            "models": models,
            "plan_cache": plan_cache_stats(),
            "telemetry": self.telemetry.snapshot()
            if self.telemetry
            else None,
        }
        if self.sweep_cache is not None:
            stats["sweep_cache"] = self.sweep_cache.stats
        if self.run_cache is not None:
            stats["run_cache"] = self.run_cache.stats
        return stats

    # -- transport -----------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set = set()

        async def _answer(message: Dict[str, Any]) -> None:
            request_id = message.get("id")
            try:
                query = Query.from_payload(message)
                result = await self.handle(query)
                response = ok_response(request_id, result)
            except ReproError as exc:
                if self.telemetry:
                    self.telemetry.count("serve/errors")
                response = error_response(request_id, str(exc))
            async with write_lock:
                writer.write(encode_message(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    pass

        try:
            while True:
                try:
                    line = await reader.readline()
                except ConnectionError:
                    break
                except asyncio.CancelledError:
                    # Loop/server teardown cancels idle connection
                    # handlers; finish cleanly so teardown stays quiet.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    message = decode_message(line)
                except ServeError as exc:
                    async with write_lock:
                        writer.write(
                            encode_message(error_response(None, str(exc)))
                        )
                        await writer.drain()
                    continue
                # One task per request: pipelined queries from a single
                # connection coalesce exactly like separate clients.
                task = asyncio.ensure_future(_answer(message))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # Server teardown cancels connection handlers; the
                # socket is closed either way and nothing follows.
                pass

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        socket_path: Optional[str] = None,
    ) -> "ServerHandle":
        """Start listening; returns a handle with the bound address."""
        if socket_path is not None:
            server = await asyncio.start_unix_server(
                self._serve_connection, path=socket_path
            )
            return ServerHandle(self, server, socket_path=socket_path)
        server = await asyncio.start_server(
            self._serve_connection, host=host, port=port
        )
        bound = server.sockets[0].getsockname()
        return ServerHandle(self, server, host=bound[0], port=bound[1])

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def aclose(self) -> None:
        """Drain the batcher, persist the disk tier, stop the executor."""
        await self._batcher.drain()
        if self.sweep_cache is not None:
            await self._run_blocking(self.sweep_cache.save)
        if self.run_cache is not None and self.run_cache.path is not None:
            await self._run_blocking(self.run_cache.save)
        self._executor.shutdown(wait=True)


class ServerHandle:
    """A started server: its bound address plus serve/close helpers."""

    def __init__(
        self,
        coordinator: ServeCoordinator,
        server: asyncio.AbstractServer,
        host: Optional[str] = None,
        port: Optional[int] = None,
        socket_path: Optional[str] = None,
    ) -> None:
        self.coordinator = coordinator
        self.server = server
        self.host = host
        self.port = port
        self.socket_path = socket_path

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return self.socket_path
        return f"{self.host}:{self.port}"

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` query (or
        :meth:`ServeCoordinator.request_shutdown`) arrives, then drain
        and close."""
        async with self.server:
            await self.server.start_serving()
            await self.coordinator.wait_shutdown()
        await self.coordinator.aclose()

    async def aclose(self) -> None:
        self.server.close()
        await self.server.wait_closed()
        await self.coordinator.aclose()
