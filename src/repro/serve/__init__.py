"""The always-on distribution-advisor service (``repro serve``).

MHETA's point is that the model is fast enough to consult *on the fly*
— a batched candidate costs tens of microseconds — but a one-shot CLI
or library call pays model construction, cold caches and process
start-up every time.  This package keeps all of that resident:

* :class:`~repro.serve.coordinator.ServeCoordinator` — the asyncio
  coordinator holding warm models and caches, micro-batching
  concurrent queries into shared vectorised passes;
* :class:`~repro.serve.batcher.MicroBatcher` — the gather-window
  request coalescer;
* :mod:`~repro.serve.protocol` — the newline-delimited-JSON wire
  format and query validation;
* :class:`~repro.serve.client.ServeClient` /
  :class:`~repro.serve.client.AsyncServeClient` — blocking and
  pipelining clients (``repro query`` uses the former; the load
  benchmark drives thousands of concurrent queries with the latter).

Quick start::

    # terminal 1
    $ python -m repro serve --socket /tmp/mheta.sock

    # terminal 2
    $ python -m repro query predict jacobi --socket /tmp/mheta.sock
    $ python -m repro query search cg --algorithm gbs --budget 150 \\
          --socket /tmp/mheta.sock
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.client import AsyncServeClient, ServeClient
from repro.serve.coordinator import ServeCoordinator, ServerHandle
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    Query,
    decode_message,
    encode_message,
)

__all__ = [
    "AsyncServeClient",
    "MicroBatcher",
    "PROTOCOL_VERSION",
    "Query",
    "ServeClient",
    "ServeCoordinator",
    "ServerHandle",
    "decode_message",
    "encode_message",
]
