"""Wire protocol of the distribution-advisor service.

One JSON object per line, both directions (newline-delimited JSON over
a local TCP or unix-domain stream).  A request carries an ``op`` plus
op-specific fields; the response echoes the request ``id`` so clients
may pipeline many outstanding queries on one connection:

request::

    {"id": 7, "op": "predict", "app": "jacobi", "config": "HY1",
     "dist": "blk", "scale": 0.1}

response::

    {"id": 7, "ok": true, "result": {"predicted_seconds": ..., ...}}
    {"id": 7, "ok": false, "error": "unknown app 'jacobo'"}

:class:`Query` is the parsed, *normalised* form: every field the answer
depends on is folded into :meth:`Query.coalesce_key`, so two clients
asking the same question within one gather window are answered by one
model pass (see :mod:`repro.serve.batcher`).  Parsing is strict —
unknown ops, unknown apps/configs and malformed counts raise
:class:`~repro.exceptions.ServeError` *before* any model work, and the
error travels back to the offending client only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ServeError

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "DYNAMICS",
    "Query",
    "encode_message",
    "decode_message",
    "error_response",
    "ok_response",
]

PROTOCOL_VERSION = 1

#: Everything the coordinator answers.  ``predict`` scores one
#: distribution, ``search`` runs a budgeted searcher, ``verify``
#: additionally emulates the distribution, ``stats`` snapshots the
#: server's telemetry and cache counters, ``ping`` is liveness,
#: ``shutdown`` asks the server to drain and exit.
OPS = ("predict", "search", "verify", "stats", "ping", "shutdown")

APPS = ("jacobi", "cg", "lanczos", "rna", "multigrid")
CONFIGS = ("DC", "IO", "HY1", "HY2")
ANCHORS = ("blk", "bal", "ic", "icbal")
ALGORITHMS = ("gbs", "genetic", "annealing", "random", "sweep")
#: Named dynamics scenarios ``verify`` accepts (mirrors
#: ``repro.cluster.configs.DYNAMICS_SCENARIOS``; duplicated here so the
#: wire layer stays import-light and parse errors stay local).
DYNAMICS = ("drift", "load-spike", "node-loss", "disk-fade", "stationary")

_MAX_LINE_BYTES = 1 << 20


def encode_message(message: Dict[str, Any]) -> bytes:
    """One message -> one newline-terminated JSON line."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode()


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse one received line; raises :class:`ServeError` on garbage."""
    if len(line) > _MAX_LINE_BYTES:
        raise ServeError(f"message exceeds {_MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"malformed message: {exc}") from None
    if not isinstance(message, dict):
        raise ServeError("message must be a JSON object")
    return message


def ok_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, error: str) -> Dict[str, Any]:
    return {"id": request_id, "ok": False, "error": error}


def _require_choice(payload: Dict[str, Any], field: str, choices, default=None):
    value = payload.get(field, default)
    if value is None:
        raise ServeError(f"{field!r} is required for op {payload.get('op')!r}")
    if value not in choices:
        raise ServeError(f"unknown {field} {value!r}; choose from {choices}")
    return value


@dataclass(frozen=True)
class Query:
    """One parsed, normalised advisor query.

    ``counts`` (an explicit GEN_BLOCK) and ``dist`` (a named anchor,
    resolved against the target program by the coordinator) are mutually
    exclusive; ``counts`` wins when both appear.
    """

    op: str
    app: Optional[str] = None
    config: str = "HY1"
    scale: float = 0.1
    kernel: Optional[str] = None
    dist: Optional[str] = None
    counts: Optional[Tuple[int, ...]] = None
    budget: int = 150
    algorithm: str = "gbs"
    batch_size: int = 64
    #: Named dynamics scenario for ``verify`` (None = static cluster).
    dynamics: Optional[str] = None

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Query":
        op = payload.get("op")
        if op not in OPS:
            raise ServeError(f"unknown op {op!r}; choose from {OPS}")
        if op in ("stats", "ping", "shutdown"):
            return cls(op=op)
        app = _require_choice(payload, "app", APPS)
        config = _require_choice(payload, "config", CONFIGS, default="HY1")
        kernel = payload.get("kernel")
        if kernel is not None and kernel not in ("numpy", "scalar", "plan"):
            raise ServeError(f"unknown kernel {kernel!r}")
        try:
            scale = float(payload.get("scale", 0.1))
        except (TypeError, ValueError):
            raise ServeError(f"bad scale {payload.get('scale')!r}") from None
        if not scale > 0:
            raise ServeError(f"scale must be positive, got {scale!r}")
        counts: Optional[Tuple[int, ...]] = None
        dist: Optional[str] = None
        budget = 150
        algorithm = "gbs"
        batch_size = 64
        dynamics = payload.get("dynamics")
        if dynamics is not None:
            if op != "verify":
                raise ServeError(
                    f"'dynamics' is only valid for op 'verify', not {op!r}"
                )
            if dynamics not in DYNAMICS:
                raise ServeError(
                    f"unknown dynamics {dynamics!r}; choose from {DYNAMICS}"
                )
        if op == "search":
            algorithm = _require_choice(
                payload, "algorithm", ALGORITHMS, default="gbs"
            )
            try:
                budget = int(payload.get("budget", 150))
                batch_size = int(payload.get("batch_size", 64))
            except (TypeError, ValueError):
                raise ServeError("budget/batch_size must be integers") from None
            if budget < 1 or batch_size < 1:
                raise ServeError("budget and batch_size must be >= 1")
        else:  # predict / verify
            raw = payload.get("counts")
            if raw is not None:
                try:
                    counts = tuple(int(c) for c in raw)
                except (TypeError, ValueError):
                    raise ServeError(f"bad counts {raw!r}") from None
                if not counts or any(c < 1 for c in counts):
                    raise ServeError(
                        "counts must be a non-empty list of positive ints"
                    )
            else:
                dist = _require_choice(payload, "dist", ANCHORS, default="blk")
        return cls(
            op=op,
            app=app,
            config=config,
            scale=scale,
            kernel=kernel,
            dist=dist,
            counts=counts,
            budget=budget,
            algorithm=algorithm,
            batch_size=batch_size,
            dynamics=dynamics,
        )

    def model_key(self) -> Tuple:
        """Key of the resident model this query runs against."""
        return (self.app, self.config, self.scale, self.kernel)

    def coalesce_key(self) -> Tuple:
        """Everything the answer depends on.  Two queries with equal
        keys are satisfied by one computation (and one cache entry)."""
        if self.op == "search":
            return (
                "search",
                self.model_key(),
                self.algorithm,
                self.budget,
                self.batch_size,
            )
        if self.op == "verify":
            return (
                "verify",
                self.model_key(),
                self.dist,
                self.counts,
                self.dynamics,
            )
        return (self.op, self.model_key(), self.dist, self.counts)
