"""The four anchor distributions of paper Figure 8.

* ``Blk``     — even split, oblivious to both load and I/O;
* ``Bal``     — balances load (rows proportional to relative CPU power),
                oblivious to I/O;
* ``I-C``     — minimises I/O (brings as much data in core as possible),
                oblivious to load;
* ``I-C/Bal`` — first maximises the number of nodes whose data sets are
                exclusively in core, then balances load as much as
                possible within that constraint.

All factories give every node at least one row: unlike AppLeS, the
paper's system never excludes a small-memory processor outright
(Section 2.2).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.distribution.genblock import GenBlock, largest_remainder_round
from repro.exceptions import DistributionError
from repro.program.structure import ProgramStructure

__all__ = [
    "block",
    "balanced",
    "in_core",
    "in_core_balanced",
    "in_core_capacity_rows",
]


def block(cluster: ClusterSpec, n_rows: int) -> GenBlock:
    """``Blk``: allocate rows evenly across nodes."""
    shares = np.ones(cluster.n_nodes)
    return GenBlock(largest_remainder_round(shares, n_rows, minimum=1))


def balanced(cluster: ClusterSpec, n_rows: int) -> GenBlock:
    """``Bal``: rows proportional to relative CPU power."""
    return GenBlock(
        largest_remainder_round(cluster.cpu_powers, n_rows, minimum=1)
    )


#: Headroom the I/O-aware distribution factories leave below the nominal
#: in-core capacity: 3% of memory, but at least 4 MiB.  The runtime that
#: generates candidate distributions knows it needs some memory for
#: buffers, so "in-core" anchor distributions are genuinely in core
#: rather than sitting exactly on the boundary.  MHETA's oracle, in
#: contrast, uses the nominal capacity — that optimism is limitation 2 of
#: paper Section 5.4.
CAPACITY_SAFETY_FRACTION = 0.03
CAPACITY_SAFETY_MIN_BYTES = 4 * 1024 * 1024


def in_core_capacity_rows(
    cluster: ClusterSpec,
    program: ProgramStructure,
    safety: bool = True,
) -> np.ndarray:
    """Rows each node can hold fully in core for *all* distributed
    variables simultaneously, after reserving room for replicated data.

    With ``safety`` (the default, used by the distribution factories) a
    headroom of ``max(3% of memory, 4 MiB)`` is subtracted; pass
    ``safety=False`` for the nominal, model-view capacity.
    """
    row_bytes = program.distributed_row_bytes()
    if row_bytes <= 0:
        # No distributed data: capacity is unbounded for any practical N.
        return np.full(cluster.n_nodes, np.iinfo(np.int64).max // 2)
    replicated = program.replicated_bytes
    memory = cluster.memory_bytes.astype(float)
    if safety:
        headroom = np.maximum(
            memory * CAPACITY_SAFETY_FRACTION, CAPACITY_SAFETY_MIN_BYTES
        )
        memory = memory - headroom
    avail = np.maximum(memory - replicated, 0)
    return (avail / row_bytes).astype(np.int64)


def _io_cheapness(cluster: ClusterSpec, program: ProgramStructure) -> np.ndarray:
    """Relative cheapness of streaming one row from each node's disk
    (higher = cheaper).  Used to place unavoidable out-of-core rows."""
    row_bytes = max(program.distributed_row_bytes(), 1.0)
    costs = np.array(
        [
            row_bytes / n.disk_read_bw
            + (row_bytes / n.disk_write_bw if _any_writeback(program) else 0.0)
            for n in cluster.nodes
        ]
    )
    return 1.0 / np.maximum(costs, 1e-30)


def _any_writeback(program: ProgramStructure) -> bool:
    return any(v.writes_back for v in program.distributed_variables)


def in_core(cluster: ClusterSpec, program: ProgramStructure) -> GenBlock:
    """``I-C``: focus exclusively on minimising I/O cost.

    If the data fits in aggregate memory, assign rows proportional to
    memory capacity, capped at each node's in-core capacity so every node
    stays in core.  Otherwise fill every node to capacity and place the
    unavoidable out-of-core excess on the nodes with the cheapest disks.
    """
    n_rows = program.n_rows
    n = cluster.n_nodes
    cap = in_core_capacity_rows(cluster, program)
    cap = np.maximum(cap, 1)  # every node takes at least one row
    if int(cap.sum()) >= n_rows:
        counts = _waterfill(cap.astype(float), cap, n_rows)
    else:
        counts = cap.copy()
        excess = n_rows - int(cap.sum())
        cheap = _io_cheapness(cluster, program)
        counts = counts + largest_remainder_round(cheap, excess, minimum=0)
    counts = _enforce_minimum(counts, n_rows, minimum=1)
    if int(counts.sum()) != n_rows:
        raise DistributionError("internal error: I-C counts do not sum")
    return GenBlock(counts)


def in_core_balanced(
    cluster: ClusterSpec, program: ProgramStructure
) -> GenBlock:
    """``I-C/Bal``: first maximise the number of exclusively-in-core
    nodes, then balance load as much as possible.

    Water-filling: start from the load-balanced shares, cap every node at
    its in-core capacity, and re-balance the overflow among nodes that
    still have in-core headroom (proportionally to CPU power).  If
    aggregate capacity is insufficient, the final overflow is concentrated
    on the single most capable node so the *number* of out-of-core nodes
    stays minimal.
    """
    n_rows = program.n_rows
    cap = np.maximum(in_core_capacity_rows(cluster, program), 1)
    if int(cap.sum()) >= n_rows:
        counts = _waterfill(cluster.cpu_powers, cap, n_rows)
    else:
        counts = cap.copy()
        excess = n_rows - int(cap.sum())
        # Concentrate overflow to keep the out-of-core node count at one:
        # pick the node where the overflow hurts least (fast CPU x disk).
        merit = cluster.cpu_powers * _io_cheapness(cluster, program)
        counts[int(np.argmax(merit))] += excess
    counts = _enforce_minimum(counts, n_rows, minimum=1)
    return GenBlock(counts)


def _waterfill(
    weights: np.ndarray, cap: np.ndarray, total: int
) -> np.ndarray:
    """Distribute ``total`` units proportionally to ``weights`` subject to
    per-node ``cap``; overflow is re-distributed among uncapped nodes
    until it fits (aggregate capacity must cover ``total``)."""
    weights = np.asarray(weights, dtype=float)
    cap = np.asarray(cap, dtype=np.int64)
    if int(cap.sum()) < total:
        raise DistributionError("waterfill: aggregate capacity too small")
    n = len(weights)
    counts = np.zeros(n, dtype=np.int64)
    active = np.ones(n, dtype=bool)
    remaining = total
    # Each pass either terminates or caps at least one node, so this loop
    # runs at most n times.
    while remaining > 0:
        w = np.where(active, weights, 0.0)
        if w.sum() <= 0:
            w = active.astype(float)
        shares = largest_remainder_round(w, remaining, minimum=0)
        headroom = cap - counts
        take = np.minimum(shares, np.where(active, headroom, 0))
        counts += take
        remaining -= int(take.sum())
        newly_capped = (counts >= cap) & active
        active &= ~newly_capped
        if remaining > 0 and not active.any():
            raise DistributionError("waterfill: no headroom left")
        if remaining > 0 and not newly_capped.any():
            # Rounding left a residue without capping anyone: hand the
            # residue to the active node with the most headroom.
            idx = int(np.argmax(np.where(active, headroom - take, -1)))
            room = int(cap[idx] - counts[idx])
            give = min(room, remaining)
            counts[idx] += give
            remaining -= give
            if counts[idx] >= cap[idx]:
                active[idx] = False
    return counts


def _enforce_minimum(
    counts: np.ndarray, total: int, minimum: int
) -> np.ndarray:
    """Raise each node to ``minimum`` rows, stealing from the largest
    blocks; preserves the total."""
    counts = counts.astype(np.int64).copy()
    if total < minimum * len(counts):
        raise DistributionError("not enough rows for the per-node minimum")
    for i in range(len(counts)):
        while counts[i] < minimum:
            donor = int(np.argmax(counts))
            if counts[donor] <= minimum:
                raise DistributionError("cannot satisfy per-node minimum")
            counts[donor] -= 1
            counts[i] += 1
    return counts
