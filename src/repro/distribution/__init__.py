"""One-dimensional GEN_BLOCK data distributions (HPF terminology).

The paper searches over variable-sized contiguous block distributions of
the global rows.  This package provides the :class:`GenBlock` type, the
four anchor distributions of paper Figure 8 (``Blk``, ``Bal``, ``I-C``,
``I-C/Bal``) and the interpolated spectrum Blk -> I-C -> I-C/Bal -> Bal
-> Blk that the evaluation sweeps over.
"""

from repro.distribution.genblock import GenBlock, largest_remainder_round
from repro.distribution.factories import (
    block,
    balanced,
    in_core,
    in_core_balanced,
    in_core_capacity_rows,
)
from repro.distribution.spectrum import SpectrumPoint, spectrum, interpolate
from repro.distribution.ops import (
    redistribution_bytes,
    distribution_distance,
    in_core_flags,
)

__all__ = [
    "GenBlock",
    "largest_remainder_round",
    "block",
    "balanced",
    "in_core",
    "in_core_balanced",
    "in_core_capacity_rows",
    "SpectrumPoint",
    "spectrum",
    "interpolate",
    "redistribution_bytes",
    "distribution_distance",
    "in_core_flags",
]
