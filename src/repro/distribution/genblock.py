"""The GEN_BLOCK distribution type and exact-sum rounding.

A GEN_BLOCK distribution (HPF [17]) divides the global rows into
variable-sized contiguous blocks, one per node, in node order.  The paper
uses the owner-computes and Local Placement rules: each node updates the
rows it owns, reading them from (and possibly writing them back to) its
local disk when they do not fit in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from repro.exceptions import DistributionError

__all__ = ["GenBlock", "largest_remainder_round"]


def largest_remainder_round(
    shares: np.ndarray, total: int, minimum: int = 0
) -> np.ndarray:
    """Round non-negative real ``shares`` to integers summing to ``total``.

    Uses the largest-remainder method: floor everything, then hand the
    remaining units to the largest fractional parts.  ``minimum`` enforces
    a per-entry floor (the paper's system uses every processor, so
    distribution factories pass ``minimum=1``).
    """
    shares = np.asarray(shares, dtype=float)
    if (shares < 0).any():
        raise DistributionError("shares must be non-negative")
    n = len(shares)
    if total < minimum * n:
        raise DistributionError(
            f"cannot give {n} nodes at least {minimum} rows out of {total}"
        )
    if shares.sum() <= 0:
        shares = np.ones(n)
    # Scale to the distributable total above the per-node minimum.
    scaled = shares / shares.sum() * (total - minimum * n)
    counts = np.floor(scaled).astype(np.int64) + minimum
    remainder = total - int(counts.sum())
    if remainder > 0:
        fracs = scaled - np.floor(scaled)
        # Stable order: largest fraction first, index breaks ties.
        order = np.lexsort((np.arange(n), -fracs))
        counts[order[:remainder]] += 1
    return counts


@dataclass(frozen=True)
class GenBlock:
    """A variable-block (GEN_BLOCK) distribution of ``n_rows`` global rows.

    ``counts[i]`` rows go to node ``i``; blocks are contiguous and in node
    order, so node ``i`` owns rows ``[starts[i], starts[i] + counts[i])``.
    """

    counts: Tuple[int, ...]

    def __init__(self, counts: Sequence[int]) -> None:
        counts_arr = np.asarray(counts)
        if counts_arr.ndim != 1 or len(counts_arr) == 0:
            raise DistributionError("counts must be a non-empty 1-D sequence")
        if not np.issubdtype(counts_arr.dtype, np.integer):
            rounded = np.rint(counts_arr)
            if not np.allclose(counts_arr, rounded):
                raise DistributionError("counts must be integers")
            counts_arr = rounded.astype(np.int64)
        if (counts_arr < 0).any():
            raise DistributionError("counts must be non-negative")
        object.__setattr__(self, "counts", tuple(int(c) for c in counts_arr))
        # Read-only int64 mirror of ``counts`` for hot paths that stack
        # whole candidate batches (the plan kernel): row-assigning a
        # cached array is ~3x cheaper than re-converting the tuple.
        mirror = np.asarray(counts_arr, dtype=np.int64)
        if mirror is counts_arr:
            mirror = counts_arr.copy()
        mirror.setflags(write=False)
        object.__setattr__(self, "counts_np", mirror)
        object.__setattr__(self, "_n_rows", int(mirror.sum()))

    # -- structure ------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.counts)

    @property
    def n_rows(self) -> int:
        return int(sum(self.counts))

    @property
    def starts(self) -> Tuple[int, ...]:
        out = []
        acc = 0
        for c in self.counts:
            out.append(acc)
            acc += c
        return tuple(out)

    def rows_of(self, node: int) -> Tuple[int, int]:
        """Global row range ``[start, stop)`` owned by ``node``."""
        if not 0 <= node < self.n_nodes:
            raise DistributionError(
                f"node {node} out of range [0, {self.n_nodes})"
            )
        start = self.starts[node]
        return start, start + self.counts[node]

    def owner_of(self, row: int) -> int:
        """Node owning global ``row``."""
        if not 0 <= row < self.n_rows:
            raise DistributionError(f"row {row} out of range")
        for node, (start, count) in enumerate(zip(self.starts, self.counts)):
            if start <= row < start + count:
                return node
        raise DistributionError(f"row {row} not owned (internal error)")

    # -- views ---------------------------------------------------------------

    @property
    def as_array(self) -> np.ndarray:
        return np.asarray(self.counts, dtype=np.int64)

    @property
    def fractions(self) -> np.ndarray:
        """Each node's share of the rows, as fractions summing to 1."""
        return self.as_array / max(self.n_rows, 1)

    def __iter__(self) -> Iterator[int]:
        return iter(self.counts)

    def __len__(self) -> int:
        return len(self.counts)

    def __getitem__(self, node: int) -> int:
        return self.counts[node]

    def __str__(self) -> str:
        return f"GenBlock({list(self.counts)})"

    # -- derived distributions -------------------------------------------------

    def with_counts(self, counts: Sequence[int]) -> "GenBlock":
        return GenBlock(counts)

    def moved(self, src: int, dst: int, rows: int) -> "GenBlock":
        """Return a copy with ``rows`` moved from ``src``'s block to
        ``dst``'s (the basic step of local-search algorithms).  Raises if
        ``src`` has fewer than ``rows``."""
        if rows < 0:
            raise DistributionError("rows must be non-negative")
        counts = list(self.counts)
        if counts[src] < rows:
            raise DistributionError(
                f"node {src} owns {counts[src]} rows, cannot move {rows}"
            )
        counts[src] -= rows
        counts[dst] += rows
        return GenBlock(counts)
