"""The distribution spectrum of paper Figure 8 / Section 5.1.

The evaluation sweeps candidate distributions along the closed path

    Blk -> I-C -> I-C/Bal -> Bal -> Blk

with interpolated points on every leg.  Two degenerate cases match the
paper exactly:

* all nodes have equal relative CPU power (``Blk`` already balances the
  load) -> sweep only Blk -> I-C;
* no node has a memory restriction for this program (I/O is not a
  concern) -> sweep only Blk -> Bal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.cluster.cluster import ClusterSpec
from repro.distribution.factories import (
    balanced,
    block,
    in_core,
    in_core_balanced,
    in_core_capacity_rows,
)
from repro.distribution.genblock import GenBlock, largest_remainder_round
from repro.exceptions import DistributionError
from repro.program.structure import ProgramStructure

__all__ = ["SpectrumPoint", "interpolate", "spectrum", "has_memory_pressure"]


@dataclass(frozen=True)
class SpectrumPoint:
    """One x-axis point of the paper's figures."""

    label: str  #: e.g. ``"Blk"``, ``"I-C"``, or ``"Blk>I-C 2/4"``
    anchor: str  #: nearest *preceding* anchor name (``"Blk"``, ...)
    position: float  #: 0..1 arc-length style coordinate along the path
    distribution: GenBlock


def interpolate(a: GenBlock, b: GenBlock, alpha: float) -> GenBlock:
    """Blend two distributions: ``(1-alpha)*a + alpha*b`` rounded back to
    integer blocks with the exact row total preserved."""
    if a.n_nodes != b.n_nodes:
        raise DistributionError("cannot interpolate across node counts")
    if a.n_rows != b.n_rows:
        raise DistributionError("cannot interpolate across row totals")
    if not 0.0 <= alpha <= 1.0:
        raise DistributionError(f"alpha must be in [0, 1], got {alpha}")
    mix = (1.0 - alpha) * a.as_array + alpha * b.as_array
    return GenBlock(largest_remainder_round(mix, a.n_rows, minimum=0))


def has_memory_pressure(
    cluster: ClusterSpec, program: ProgramStructure
) -> bool:
    """True when at least one node would be out of core under either the
    Blk or the Bal distribution — i.e. I/O is a concern and the spectrum
    must include the in-core anchors."""
    cap = in_core_capacity_rows(cluster, program)
    for dist in (block(cluster, program.n_rows), balanced(cluster, program.n_rows)):
        if (dist.as_array > cap).any():
            return True
    return False


def _leg(
    start_label: str,
    a: GenBlock,
    end_label: str,
    b: GenBlock,
    steps: int,
) -> List[Tuple[str, str, GenBlock]]:
    """Points strictly after ``a`` up to and including ``b``."""
    out: List[Tuple[str, str, GenBlock]] = []
    for k in range(1, steps + 1):
        alpha = k / steps
        if k == steps:
            label = end_label
        else:
            label = f"{start_label}>{end_label} {k}/{steps}"
        out.append((label, start_label, interpolate(a, b, alpha)))
    return out


def spectrum(
    cluster: ClusterSpec,
    program: ProgramStructure,
    steps_per_leg: int = 3,
    full_path: bool = False,
) -> List[SpectrumPoint]:
    """Distribution candidates along the Figure-8 path.

    ``steps_per_leg`` interpolation steps per leg (the anchors themselves
    are always included).  Degenerate architectures shrink the path as
    described in the module docstring unless ``full_path`` is set, in
    which case all five anchors are always used (for degenerate
    architectures some of them coincide — e.g. Bal equals Blk on a
    CPU-homogeneous cluster).  The accuracy sweeps use ``full_path`` so
    every architecture contributes the same x axis (paper Figure 9).
    """
    if steps_per_leg < 1:
        raise DistributionError("steps_per_leg must be >= 1")
    n_rows = program.n_rows
    blk = block(cluster, n_rows)
    bal = balanced(cluster, n_rows)
    pressure = has_memory_pressure(cluster, program)
    homogeneous = cluster.is_cpu_homogeneous

    anchors: List[Tuple[str, GenBlock]]
    if full_path or (pressure and not homogeneous):
        ic = in_core(cluster, program)
        icbal = in_core_balanced(cluster, program)
        anchors = [
            ("Blk", blk),
            ("I-C", ic),
            ("I-C/Bal", icbal),
            ("Bal", bal),
            ("Blk", blk),
        ]
    elif pressure:  # homogeneous CPUs: Blk == Bal, sweep only toward I-C
        ic = in_core(cluster, program)
        anchors = [("Blk", blk), ("I-C", ic)]
    else:  # no memory pressure: I/O is not a concern, sweep Blk..Bal
        anchors = [("Blk", blk), ("Bal", bal), ("Blk", blk)]

    points: List[Tuple[str, str, GenBlock]] = [("Blk", "Blk", blk)]
    for (la, da), (lb, db) in zip(anchors, anchors[1:]):
        points.extend(_leg(la, da, lb, db, steps_per_leg))

    total = len(points) - 1
    return [
        SpectrumPoint(
            label=label,
            anchor=anchor,
            position=(i / total if total else 0.0),
            distribution=dist,
        )
        for i, (label, anchor, dist) in enumerate(points)
    ]
