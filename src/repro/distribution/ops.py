"""Operations over distributions: distances, in-core status, movement cost."""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.distribution.factories import in_core_capacity_rows
from repro.distribution.genblock import GenBlock
from repro.exceptions import DistributionError
from repro.program.structure import ProgramStructure

__all__ = ["redistribution_bytes", "distribution_distance", "in_core_flags"]


def _check_compatible(a: GenBlock, b: GenBlock) -> None:
    if a.n_nodes != b.n_nodes or a.n_rows != b.n_rows:
        raise DistributionError(
            "distributions must cover the same nodes and rows"
        )


def redistribution_bytes(
    old: GenBlock, new: GenBlock, program: ProgramStructure
) -> int:
    """Bytes of distributed data that must move to effect ``old -> new``.

    Because GEN_BLOCK blocks are contiguous and ordered, a global row
    moves iff its owner changes; the number of moving rows is half the L1
    distance between the block-count vectors... only when blocks shift
    monotonically, which is not guaranteed — so we count moved rows
    exactly from the ownership maps.
    """
    _check_compatible(old, new)
    moved_rows = 0
    old_starts = np.asarray(old.starts + (old.n_rows,))
    new_starts = np.asarray(new.starts + (new.n_rows,))
    # Walk the merged breakpoints; each segment has a single owner in both.
    breaks = np.unique(np.concatenate([old_starts, new_starts]))
    for lo, hi in zip(breaks[:-1], breaks[1:]):
        if hi <= lo:
            continue
        old_owner = int(np.searchsorted(old_starts, lo, side="right") - 1)
        new_owner = int(np.searchsorted(new_starts, lo, side="right") - 1)
        if old_owner != new_owner:
            moved_rows += int(hi - lo)
    return int(moved_rows * program.distributed_row_bytes())


def distribution_distance(a: GenBlock, b: GenBlock) -> int:
    """Half the L1 distance between block-count vectors: the minimum
    number of rows that must change owner, ignoring contiguity."""
    _check_compatible(a, b)
    return int(np.abs(a.as_array - b.as_array).sum() // 2)


def in_core_flags(
    distribution: GenBlock,
    cluster: ClusterSpec,
    program: ProgramStructure,
) -> np.ndarray:
    """Boolean per node: True when the node's local arrays all fit in its
    application memory (model-level accounting)."""
    if distribution.n_nodes != cluster.n_nodes:
        raise DistributionError("distribution does not match cluster size")
    cap = in_core_capacity_rows(cluster, program, safety=False)
    return distribution.as_array <= cap
