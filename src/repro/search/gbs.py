"""Generalized Binary Search (GBS) — reconstruction of [26].

The companion paper's text is unavailable; this reconstruction keeps the
two properties the MHETA paper relies on: (1) the search walks the
spectrum of Figure 8 ("an algorithm searching for a data distribution
between I-C and I-C/Bal can use MHETA to determine which point results
in the lowest execution time"), and (2) it needs few evaluations because
each is cheap.

Strategy: along every leg of the anchor path Blk -> I-C -> I-C/Bal ->
Bal, score the leg's full interpolation grid (spacing ``resolution``)
in one batched evaluation — the population goes through
``evaluate.batch``, which deduplicates the rounded GEN_BLOCKs (grid
neighbours collide after integer rounding, legs share their anchor
endpoints) and feeds the distinct misses to the model's vectorized
``predict(batch=True)`` in a single pass — then finish with a
row-exchange hill climb between the predicted bottleneck node and the
node with the most slack.  Scoring the whole grid costs the same batch
the old two-probe bisection spread over many rounds of Python-level
calls, needs no unimodality assumption, and cannot miss a dip between
probe points.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.core.model import MhetaModel
from repro.distribution.factories import balanced, block, in_core, in_core_balanced
from repro.distribution.genblock import GenBlock
from repro.distribution.spectrum import has_memory_pressure, interpolate
from repro.search.base import SearchAlgorithm, evaluate_batch

__all__ = ["GeneralizedBinarySearch"]


class GeneralizedBinarySearch(SearchAlgorithm):
    """Batched grid search along the anchor legs plus a hill climb."""

    name = "gbs"
    requires_cluster = True

    def __init__(
        self,
        model: MhetaModel,
        cluster: Optional[ClusterSpec] = None,
        *,
        resolution: float = 1.0 / 64.0,
        hill_climb_steps: int = 24,
        batch_size: int = 64,
        seed_label: str = "",
    ) -> None:
        super().__init__(
            model, cluster, batch_size=batch_size, seed_label=seed_label
        )
        self.resolution = resolution
        self.hill_climb_steps = hill_climb_steps

    # -- anchors ---------------------------------------------------------------

    def _anchors(self) -> List[GenBlock]:
        program = self.model.program
        anchors = [block(self.cluster, self.n_rows)]
        if has_memory_pressure(self.cluster, program):
            anchors.append(in_core(self.cluster, program))
            if not self.cluster.is_cpu_homogeneous:
                anchors.append(in_core_balanced(self.cluster, program))
        if not self.cluster.is_cpu_homogeneous:
            anchors.append(balanced(self.cluster, self.n_rows))
        return anchors

    # -- the search --------------------------------------------------------------

    def _leg_search(
        self,
        evaluate: Callable[[GenBlock], float],
        a: GenBlock,
        b: GenBlock,
    ) -> Tuple[GenBlock, float]:
        """Score the leg's full interpolation grid in one batched pass."""
        steps = max(int(round(1.0 / self.resolution)), 1)
        grid = [a]
        grid.extend(interpolate(a, b, k / steps) for k in range(1, steps))
        grid.append(b)
        values = evaluate_batch(evaluate, grid)
        best_i = min(range(len(values)), key=values.__getitem__)
        return grid[best_i], values[best_i]

    def _hill_climb(
        self,
        evaluate: Callable[[GenBlock], float],
        start: GenBlock,
    ) -> GenBlock:
        """Move rows from the predicted bottleneck node to the node whose
        predicted time is lowest, shrinking the step on failure."""
        # Bottleneck inspection goes through the evaluator's budgeted
        # report path so the per-node breakdowns are cached and counted
        # (a bare callable, e.g. in unit tests, falls back to the model).
        reporter = getattr(evaluate, "report", None)
        if reporter is None:
            reporter = lambda d: self.model.predict(d, report=True)  # noqa: E731
        current = start
        value = evaluate(current)
        step = max(self.n_rows // 64, 1)
        for _ in range(self.hill_climb_steps):
            report = reporter(current)
            totals = [n.total_seconds for n in report.nodes]
            src = int(np.argmax(totals))
            dst = int(np.argmin(totals))
            if src == dst or current[src] - step < 1:
                step = max(step // 2, 1)
                if step == 1 and current[src] <= 1:
                    break
                continue
            candidate = current.moved(src, dst, step)
            cand_val = evaluate(candidate)
            if cand_val < value:
                current, value = candidate, cand_val
            else:
                if step == 1:
                    break
                step = max(step // 2, 1)
        return current

    def _run(
        self,
        evaluate: Callable[[GenBlock], float],
        start: Optional[GenBlock],
    ) -> GenBlock:
        anchors = self._anchors()
        best: Optional[GenBlock] = start
        best_val = evaluate(start) if start is not None else float("inf")
        for a, b in zip(anchors, anchors[1:]):
            dist, val = self._leg_search(evaluate, a, b)
            if val < best_val:
                best, best_val = dist, val
        if best is None:
            best = anchors[0]
        return self._hill_climb(evaluate, best)
