"""Data-distribution search algorithms driven by MHETA.

The paper's companion work [26] uses MHETA as the evaluation function
inside four search strategies — generalized binary search (GBS),
genetic, simulated annealing, and random — to pick a distribution at run
time.  The companion paper's text is not available, so these are
documented reconstructions sharing one contract: minimise
``MhetaModel.predict`` over GEN_BLOCK distributions.

All searches are deterministic (seeded) and report how many model
evaluations they spent — the quantity the paper's ~5.4 ms/evaluation
figure makes cheap.
"""

from repro.search.base import (
    BudgetedEvaluator,
    EvaluationCache,
    SearchAlgorithm,
    SearchResult,
    evaluate_batch,
)
from repro.search.gbs import GeneralizedBinarySearch
from repro.search.genetic import GeneticSearch
from repro.search.annealing import SimulatedAnnealingSearch
from repro.search.random_search import RandomSearch
from repro.search.exhaustive import SpectrumSweep

__all__ = [
    "BudgetedEvaluator",
    "EvaluationCache",
    "SearchAlgorithm",
    "SearchResult",
    "GeneralizedBinarySearch",
    "GeneticSearch",
    "SimulatedAnnealingSearch",
    "RandomSearch",
    "SpectrumSweep",
    "evaluate_batch",
]
