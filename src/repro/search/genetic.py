"""Genetic distribution search (reconstruction of [26]'s GA)."""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.core.model import MhetaModel
from repro.distribution.genblock import GenBlock
from repro.search.base import SearchAlgorithm, evaluate_batch

__all__ = ["GeneticSearch"]


class GeneticSearch(SearchAlgorithm):
    """A small, steady generational GA over share vectors.

    Individuals are fractional share vectors (normalised to the row
    total on evaluation).  Tournament selection, blend crossover and
    Dirichlet-jitter mutation; the best individual always survives.
    Each generation is scored as one batch — the population is the
    natural batch size.
    """

    name = "genetic"

    def __init__(
        self,
        model: MhetaModel,
        cluster: Optional[ClusterSpec] = None,
        *,
        population: int = 16,
        generations: int = 12,
        mutation_rate: float = 0.3,
        mutation_strength: float = 0.15,
        batch_size: int = 64,
        seed_label: str = "",
    ) -> None:
        super().__init__(
            model, cluster, batch_size=batch_size, seed_label=seed_label
        )
        self.population = population
        self.generations = generations
        self.mutation_rate = mutation_rate
        self.mutation_strength = mutation_strength

    def _run(
        self,
        evaluate: Callable[[GenBlock], float],
        start: Optional[GenBlock],
    ) -> GenBlock:
        rng = self._rng()
        pop: List[np.ndarray] = [
            rng.dirichlet(np.ones(self.n_nodes)) for _ in range(self.population)
        ]
        if start is not None:
            pop[0] = start.fractions
        pop[1 % len(pop)] = np.ones(self.n_nodes) / self.n_nodes  # Blk seed

        best_dist: Optional[GenBlock] = None
        best_val = float("inf")
        for _generation in range(self.generations):
            dists = [self._normalise(shares * self.n_rows) for shares in pop]
            values = evaluate_batch(evaluate, dists)
            scored = []
            for shares, dist, val in zip(pop, dists, values):
                scored.append((val, shares))
                if val < best_val:
                    best_val, best_dist = val, dist
            scored.sort(key=lambda pair: pair[0])
            elite = [shares for _, shares in scored[:2]]
            children: List[np.ndarray] = list(elite)
            while len(children) < self.population:
                a = self._tournament(scored, rng)
                b = self._tournament(scored, rng)
                mix = rng.uniform(0.2, 0.8)
                child = mix * a + (1.0 - mix) * b
                if rng.random() < self.mutation_rate:
                    jitter = rng.dirichlet(np.ones(self.n_nodes))
                    child = (
                        (1.0 - self.mutation_strength) * child
                        + self.mutation_strength * jitter
                    )
                children.append(child / child.sum())
            pop = children
        assert best_dist is not None
        return best_dist

    @staticmethod
    def _tournament(scored, rng, k: int = 3) -> np.ndarray:
        picks = rng.choice(len(scored), size=min(k, len(scored)), replace=False)
        best = min(picks, key=lambda i: scored[i][0])
        return scored[best][1]
