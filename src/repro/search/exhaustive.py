"""Exhaustive sweep along the Figure-8 spectrum.

Not a search heuristic: the reference evaluation the figures use.  It
scores every spectrum point with MHETA and returns the best, giving the
other algorithms something to be compared against (and the experiments
their x axes).  The enumeration is scored in ``batch_size`` chunks so
the sweep rides the vectorized batch kernel.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cluster.cluster import ClusterSpec
from repro.core.model import MhetaModel
from repro.distribution.genblock import GenBlock
from repro.distribution.spectrum import spectrum
from repro.search.base import SearchAlgorithm, evaluate_batch

__all__ = ["SpectrumSweep"]


class SpectrumSweep(SearchAlgorithm):
    """Evaluate every point of the interpolated anchor path."""

    name = "spectrum-sweep"
    requires_cluster = True

    def __init__(
        self,
        model: MhetaModel,
        cluster: Optional[ClusterSpec] = None,
        *,
        steps_per_leg: int = 8,
        batch_size: int = 64,
        seed_label: str = "",
    ) -> None:
        super().__init__(
            model, cluster, batch_size=batch_size, seed_label=seed_label
        )
        self.steps_per_leg = steps_per_leg

    def _run(
        self,
        evaluate: Callable[[GenBlock], float],
        start: Optional[GenBlock],
    ) -> GenBlock:
        best: Optional[GenBlock] = start
        best_val = evaluate(start) if start is not None else float("inf")
        points = [
            point.distribution
            for point in spectrum(
                self.cluster, self.model.program, self.steps_per_leg
            )
        ]
        for lo in range(0, len(points), self.batch_size):
            chunk = points[lo : lo + self.batch_size]
            for candidate, value in zip(chunk, evaluate_batch(evaluate, chunk)):
                if value < best_val:
                    best, best_val = candidate, value
        assert best is not None
        return best
