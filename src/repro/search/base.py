"""Common search machinery: evaluation cache, result record, base class."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.model import MhetaModel
from repro.distribution.genblock import GenBlock, largest_remainder_round
from repro.exceptions import SearchError
from repro.util.rng import stream

__all__ = ["EvaluationCache", "SearchResult", "SearchAlgorithm"]


class EvaluationCache:
    """Memoised MHETA evaluations.

    Search algorithms revisit distributions constantly (GBS re-evaluates
    interval endpoints, genetic populations converge); caching keeps the
    evaluation count equal to the number of *distinct* candidates.
    """

    def __init__(self, evaluate: Callable[[GenBlock], float]) -> None:
        self._evaluate = evaluate
        self._cache: Dict[Tuple[int, ...], float] = {}
        self.misses = 0
        self.hits = 0

    def __call__(self, distribution: GenBlock) -> float:
        key = distribution.counts
        value = self._cache.get(key)
        if value is None:
            value = self._evaluate(distribution)
            self._cache[key] = value
            self.misses += 1
        else:
            self.hits += 1
        return value

    @property
    def evaluations(self) -> int:
        """Distinct model evaluations performed."""
        return self.misses


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a distribution search."""

    best: GenBlock
    predicted_seconds: float
    evaluations: int  #: distinct MHETA evaluations spent
    trajectory: Tuple[float, ...] = field(default_factory=tuple)
    algorithm: str = ""

    def __str__(self) -> str:
        return (
            f"{self.algorithm}: {self.predicted_seconds:.3f}s predicted with "
            f"{list(self.best.counts)} after {self.evaluations} evaluations"
        )


class SearchAlgorithm(abc.ABC):
    """Base class: minimise predicted execution time over GEN_BLOCK
    distributions of ``model.program.n_rows`` rows.

    Subclasses implement :meth:`_run` against the shared evaluation
    cache.  Every node always keeps at least one row (the paper's system
    uses every processor).
    """

    name = "search"

    def __init__(self, model: MhetaModel, seed_label: str = "") -> None:
        self.model = model
        self.n_rows = model.program.n_rows
        self.n_nodes = model.n_nodes
        if self.n_rows < self.n_nodes:
            raise SearchError("fewer rows than nodes")
        self._seed_label = seed_label or self.name

    # -- helpers shared by concrete searches ---------------------------------

    def _rng(self) -> np.random.Generator:
        return stream(
            "search",
            self._seed_label,
            self.model.program.name,
            self.n_rows,
            self.n_nodes,
        )

    def _normalise(self, shares: np.ndarray) -> GenBlock:
        """Round non-negative shares to a valid distribution (sum and
        minimum-1 preserved)."""
        return GenBlock(
            largest_remainder_round(
                np.maximum(np.asarray(shares, dtype=float), 0.0),
                self.n_rows,
                minimum=1,
            )
        )

    def _random_distribution(self, rng: np.random.Generator) -> GenBlock:
        shares = rng.dirichlet(np.ones(self.n_nodes))
        return self._normalise(shares * self.n_rows)

    # -- public API ------------------------------------------------------------

    def search(
        self, budget: int = 200, start: Optional[GenBlock] = None
    ) -> SearchResult:
        """Run the search with at most ``budget`` distinct evaluations."""
        if budget < 1:
            raise SearchError("budget must be >= 1")
        cache = EvaluationCache(self.model.predict_seconds)
        trajectory: List[float] = []

        def evaluate(dist: GenBlock) -> float:
            if cache.evaluations >= budget and dist.counts not in cache._cache:
                raise _BudgetExhausted()
            value = cache(dist)
            if not trajectory or value < trajectory[-1]:
                trajectory.append(value)
            else:
                trajectory.append(trajectory[-1])
            return value

        best: Optional[GenBlock] = None
        try:
            best = self._run(evaluate, start)
        except _BudgetExhausted:
            pass
        # The best seen so far, even if the algorithm was cut short.
        if cache._cache:
            key = min(cache._cache, key=cache._cache.get)
            candidate = GenBlock(key)
            if best is None or cache._cache[key] <= cache(best):
                best = candidate
        if best is None:
            raise SearchError("search performed no evaluations")
        return SearchResult(
            best=best,
            predicted_seconds=cache(best),
            evaluations=cache.evaluations,
            trajectory=tuple(trajectory),
            algorithm=self.name,
        )

    @abc.abstractmethod
    def _run(
        self,
        evaluate: Callable[[GenBlock], float],
        start: Optional[GenBlock],
    ) -> GenBlock:
        """Run the strategy; return its final answer.  ``evaluate``
        raises once the budget is exhausted."""


class _BudgetExhausted(Exception):
    pass
