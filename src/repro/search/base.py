"""Common search machinery: evaluation cache, result record, base class."""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import ClusterSpec
from repro.core.model import MhetaModel
from repro.core.report import PredictionReport
from repro.distribution.genblock import GenBlock, largest_remainder_round
from repro.exceptions import SearchError
from repro.obs import NULL_RECORDER, Recorder, as_recorder
from repro.util.rng import stream

__all__ = [
    "EvaluationCache",
    "BudgetedEvaluator",
    "SearchResult",
    "SearchAlgorithm",
    "evaluate_batch",
]


class EvaluationCache:
    """Memoised MHETA evaluations.

    Search algorithms revisit distributions constantly (GBS re-evaluates
    interval endpoints, genetic populations converge); caching keeps the
    evaluation count equal to the number of *distinct* candidates.
    """

    def __init__(self, evaluate: Callable[[GenBlock], float]) -> None:
        self._evaluate = evaluate
        self._cache: Dict[Tuple[int, ...], float] = {}
        self.misses = 0
        self.hits = 0
        # Running best, maintained on insert: best() is called inside
        # search loops, so it must not scan the whole store.
        self._best_key: Optional[Tuple[int, ...]] = None
        self._best_value = math.inf

    def _record(self, key: Tuple[int, ...], value: float) -> None:
        """Insert a brand-new evaluation and update the running best.
        A strict ``<`` keeps the *earliest* inserted key on ties, the
        same answer a full in-insertion-order scan would give."""
        self._cache[key] = value
        self.misses += 1
        if value < self._best_value:
            self._best_key = key
            self._best_value = value

    def __call__(self, distribution: GenBlock) -> float:
        key = distribution.counts
        value = self._cache.get(key)
        if value is None:
            value = self._evaluate(distribution)
            self._record(key, value)
        else:
            self.hits += 1
        return value

    def __contains__(self, key: Tuple[int, ...]) -> bool:
        return key in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    def value(self, key: Tuple[int, ...]) -> float:
        """Cached value for ``key`` (raises ``KeyError`` if absent) —
        a pure lookup, never an evaluation."""
        return self._cache[key]

    #: Tolerance for re-inserted values: the same distribution evaluated
    #: twice must produce the same prediction (the model is pure), so
    #: anything beyond rounding noise is a double-evaluation bug.
    PUT_REL_TOL = 1e-9

    def put(self, key: Tuple[int, ...], value: float) -> None:
        """Record an evaluation performed outside the cache (e.g. a full
        prediction report whose total is the scalar value).

        Re-inserting an existing key with a matching value is a no-op;
        a *conflicting* value raises :class:`SearchError` — silently
        keeping either number would mask a double-evaluation bug (two
        code paths disagreeing about the same distribution).
        """
        existing = self._cache.get(key)
        if existing is None:
            self._record(key, value)
            return
        if not math.isclose(
            existing, value, rel_tol=self.PUT_REL_TOL, abs_tol=1e-12
        ):
            raise SearchError(
                f"conflicting evaluations for distribution {key}: cached "
                f"{existing!r} vs new {value!r} (beyond rel_tol="
                f"{self.PUT_REL_TOL}); the evaluation function is not "
                "deterministic or two code paths disagree"
            )

    def put_many(
        self,
        keys: Sequence[Tuple[int, ...]],
        values: Sequence[float],
    ) -> None:
        """Bulk :meth:`put` for batched evaluations: one call records a
        whole population's worth of externally computed values, with the
        same conflict detection per key."""
        if len(keys) != len(values):
            raise SearchError("put_many keys and values differ in length")
        for key, value in zip(keys, values):
            self.put(key, float(value))

    def best(self) -> Optional[Tuple[Tuple[int, ...], float]]:
        """The best ``(counts, value)`` pair seen, or ``None`` — O(1),
        tracked on insert rather than scanned on demand."""
        if self._best_key is None:
            return None
        return self._best_key, self._best_value

    @property
    def evaluations(self) -> int:
        """Distinct model evaluations performed."""
        return self.misses


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a distribution search."""

    best: GenBlock
    predicted_seconds: float
    evaluations: int  #: distinct MHETA evaluations spent
    trajectory: Tuple[float, ...] = field(default_factory=tuple)
    algorithm: str = ""
    cache_hits: int = 0  #: evaluations avoided by the cache

    def __str__(self) -> str:
        return (
            f"{self.algorithm}: {self.predicted_seconds:.3f}s predicted with "
            f"{list(self.best.counts)} after {self.evaluations} evaluations"
        )


class BudgetedEvaluator:
    """The callable handed to :meth:`SearchAlgorithm._run`.

    Wraps the shared :class:`EvaluationCache` with a hard budget: any
    attempt to evaluate a *new* distribution past the budget raises
    :class:`_BudgetExhausted`, so no algorithm can spend evaluation
    ``budget + 1``.  Beyond the scalar call it exposes :meth:`report`,
    the budgeted path for full prediction reports (per-node breakdowns
    for bottleneck inspection) — report misses on unseen distributions
    are counted and capped exactly like scalar evaluations.
    """

    def __init__(
        self,
        model: MhetaModel,
        cache: EvaluationCache,
        budget: int,
        trajectory: List[float],
        telemetry: Optional[Recorder] = None,
    ) -> None:
        self._model = model
        self._cache = cache
        self._budget = budget
        self._trajectory = trajectory
        self._telemetry = as_recorder(telemetry)
        self._reports: Dict[Tuple[int, ...], PredictionReport] = {}

    def _guard(self, key: Tuple[int, ...]) -> None:
        if key not in self._cache and self._cache.evaluations >= self._budget:
            raise _BudgetExhausted()

    def _feed_trajectory(self, value: float) -> None:
        """Append the running best after one evaluation — every budgeted
        path (scalar, report, batch) feeds the trajectory identically."""
        if not self._trajectory or value < self._trajectory[-1]:
            self._trajectory.append(value)
        else:
            self._trajectory.append(self._trajectory[-1])

    def __call__(self, distribution: GenBlock) -> float:
        self._guard(distribution.counts)
        value = self._cache(distribution)
        self._feed_trajectory(value)
        return value

    def report(self, distribution: GenBlock) -> PredictionReport:
        """Full prediction report, cached and budget-accounted.

        A report for a distribution never seen before counts as one
        evaluation (it *is* one model run) and respects the budget — and
        feeds the trajectory, exactly like a scalar evaluation; a report
        for an already-evaluated distribution is free budget-wise — the
        candidate was already paid for.
        """
        key = distribution.counts
        rep = self._reports.get(key)
        if rep is None:
            charged = key not in self._cache
            self._guard(key)
            rep = self._model.predict(distribution, report=True)
            self._reports[key] = rep
            self._cache.put(key, rep.total_seconds)
            if charged:
                self._feed_trajectory(rep.total_seconds)
        return rep

    def batch(self, distributions: Sequence[GenBlock]) -> List[float]:
        """Budget- and cache-aware population scoring.

        The candidates are deduplicated — against the shared
        :class:`EvaluationCache` and within the batch — and only the
        *distinct misses* are charged to the budget and sent through the
        model's vectorized ``predict(candidates, batch=True)`` in one
        pass.  Repeats are cache hits, exactly as if the candidates had
        been evaluated one at a time.

        The budget stays a hard cap: when the distinct misses outrun the
        remaining budget, the batch is truncated at the boundary — every
        candidate *before* the first unaffordable miss is evaluated,
        recorded and fed to the trajectory, then
        :class:`_BudgetExhausted` is raised, mirroring what the serial
        loop would have done at that same candidate.
        """
        dists = list(distributions)
        keys = [d.counts for d in dists]
        remaining = max(self._budget - self._cache.evaluations, 0)
        first_seen: Dict[Tuple[int, ...], int] = {}
        to_evaluate: List[GenBlock] = []
        cut = len(dists)
        for i, key in enumerate(keys):
            if key in self._cache or key in first_seen:
                continue
            if len(to_evaluate) >= remaining:
                cut = i
                break
            first_seen[key] = i
            to_evaluate.append(dists[i])
        rec = self._telemetry
        if rec:
            rec.observe("search/round_candidates", len(dists))
            rec.observe("search/round_distinct_misses", len(to_evaluate))
        if to_evaluate:
            if isinstance(self._model, MhetaModel):
                values = self._model.predict(to_evaluate, batch=True)
            else:
                # Stub and wrapper models keep working through whatever
                # surface they expose: a (possibly legacy) batched entry
                # point, else per-candidate calls.
                batch_predict = getattr(
                    self._model, "predict_seconds_batch", None
                )
                if batch_predict is not None:
                    values = batch_predict(to_evaluate)
                else:
                    scalar = getattr(
                        self._model, "predict", None
                    ) or self._model.predict_seconds
                    values = [scalar(d) for d in to_evaluate]
            self._cache.put_many(
                [d.counts for d in to_evaluate],
                [float(v) for v in values],
            )
        results: List[float] = []
        for i in range(cut):
            key = keys[i]
            if first_seen.get(key) == i:
                # The charged miss itself: put_many already counted it.
                value = self._cache.value(key)
            else:
                value = self._cache(dists[i])  # hit accounting
            self._feed_trajectory(value)
            results.append(value)
        if cut < len(dists):
            raise _BudgetExhausted()
        return results


def evaluate_batch(
    evaluate: Callable[[GenBlock], float],
    candidates: Sequence[GenBlock],
) -> List[float]:
    """Score ``candidates`` through ``evaluate.batch`` when available
    (the :class:`BudgetedEvaluator` population path — dedup, bulk model
    evaluation, budget truncation), falling back to per-candidate calls
    for bare callables (unit-test stubs, custom drivers)."""
    batch = getattr(evaluate, "batch", None)
    if batch is not None:
        return batch(candidates)
    return [evaluate(d) for d in candidates]


class SearchAlgorithm(abc.ABC):
    """Base class: minimise predicted execution time over GEN_BLOCK
    distributions of ``model.program.n_rows`` rows.

    Subclasses implement :meth:`_run` against the shared evaluation
    cache.  Every node always keeps at least one row (the paper's system
    uses every processor).

    Every searcher shares one constructor shape — ``Searcher(model,
    cluster=None, *, batch_size=64, seed_label="", <strategy knobs>)``
    — and one ``search(budget, *, start, batch_size, rng, telemetry)``
    signature returning a :class:`SearchResult`.  ``cluster`` is
    required by strategies that exploit the cluster's structure (GBS
    seeds from relative powers, the spectrum sweep walks its legs) and
    accepted-and-ignored by the purely stochastic ones, so drivers can
    construct any searcher uniformly.

    ``batch_size`` bounds the candidate populations a strategy scores
    per :func:`evaluate_batch` call (proposal pools, sample chunks,
    enumeration chunks); strategies whose population has a natural size
    — a GA generation, a GBS leg grid — ignore it.
    """

    name = "search"

    #: Set by strategies that cannot run without the cluster structure.
    requires_cluster = False

    def __init__(
        self,
        model: MhetaModel,
        cluster: Optional[ClusterSpec] = None,
        *,
        batch_size: int = 64,
        seed_label: str = "",
    ) -> None:
        self.model = model
        self.cluster = cluster
        if self.requires_cluster and cluster is None:
            raise SearchError(f"{self.name} requires the cluster spec")
        self.n_rows = model.program.n_rows
        self.n_nodes = model.n_nodes
        if self.n_rows < self.n_nodes:
            raise SearchError("fewer rows than nodes")
        if batch_size < 1:
            raise SearchError("batch_size must be >= 1")
        self.batch_size = int(batch_size)
        self._seed_label = seed_label or self.name
        self._rng_override: Optional[np.random.Generator] = None

    # -- helpers shared by concrete searches ---------------------------------

    def _rng(self) -> np.random.Generator:
        if self._rng_override is not None:
            return self._rng_override
        return stream(
            "search",
            self._seed_label,
            self.model.program.name,
            self.n_rows,
            self.n_nodes,
        )

    def _normalise(self, shares: np.ndarray) -> GenBlock:
        """Round non-negative shares to a valid distribution (sum and
        minimum-1 preserved)."""
        return GenBlock(
            largest_remainder_round(
                np.maximum(np.asarray(shares, dtype=float), 0.0),
                self.n_rows,
                minimum=1,
            )
        )

    def _random_distribution(self, rng: np.random.Generator) -> GenBlock:
        shares = rng.dirichlet(np.ones(self.n_nodes))
        return self._normalise(shares * self.n_rows)

    # -- public API ------------------------------------------------------------

    def search(
        self,
        budget: int = 200,
        *,
        start: Optional[GenBlock] = None,
        batch_size: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
        telemetry: Optional[Recorder] = None,
    ) -> SearchResult:
        """Run the search with at most ``budget`` distinct evaluations.

        The budget is a hard cap: every path that could evaluate a new
        distribution — including scoring the algorithm's final answer —
        goes through the budgeted evaluator, so ``result.evaluations <=
        budget`` always holds.

        ``batch_size`` overrides the constructor's population bound for
        this run; ``rng`` replaces the deterministic per-(algorithm,
        program, shape) stream; ``telemetry`` records evaluations spent,
        cache hits, per-round candidate counts, and the best-so-far
        trajectory into a :class:`repro.obs.Recorder`.
        """
        if budget < 1:
            raise SearchError("budget must be >= 1")
        rec = as_recorder(telemetry)
        cache = EvaluationCache(self.model.predict)
        trajectory: List[float] = []
        evaluate = BudgetedEvaluator(
            self.model, cache, budget, trajectory, telemetry=rec
        )
        saved_batch = self.batch_size
        if batch_size is not None:
            if batch_size < 1:
                raise SearchError("batch_size must be >= 1")
            self.batch_size = int(batch_size)
        self._rng_override = rng

        best: Optional[GenBlock] = None
        try:
            with rec.span(f"search/{self.name}"):
                try:
                    best = self._run(evaluate, start)
                except _BudgetExhausted:
                    pass
                if best is not None and best.counts not in cache:
                    # The algorithm answered with a distribution it never
                    # scored; score it within the remaining budget or fall
                    # back to the best cached candidate.  Never evaluation
                    # #budget+1.
                    try:
                        evaluate(best)
                    except _BudgetExhausted:
                        best = None
        finally:
            self.batch_size = saved_batch
            self._rng_override = None
        # The best seen so far, even if the algorithm was cut short.
        cached_best = cache.best()
        if cached_best is not None:
            key, value = cached_best
            if best is None or value <= cache.value(best.counts):
                best = GenBlock(key)
        if best is None:
            raise SearchError("search performed no evaluations")
        result = SearchResult(
            best=best,
            predicted_seconds=cache.value(best.counts),
            evaluations=cache.evaluations,
            trajectory=tuple(trajectory),
            algorithm=self.name,
            cache_hits=cache.hits,
        )
        if rec:
            rec.count("search/runs")
            rec.count("search/evaluations", result.evaluations)
            rec.count("search/cache_hits", result.cache_hits)
            rec.set(f"search/{self.name}/budget", budget)
            rec.set(f"search/{self.name}/budget_spent", result.evaluations)
            rec.set(
                f"search/{self.name}/best_seconds", result.predicted_seconds
            )
            for value in trajectory:
                rec.observe("search/best_so_far", value)
        return result

    @abc.abstractmethod
    def _run(
        self,
        evaluate: Callable[[GenBlock], float],
        start: Optional[GenBlock],
    ) -> GenBlock:
        """Run the strategy; return its final answer.  ``evaluate``
        raises once the budget is exhausted; it also offers
        ``evaluate.report(dist)`` for budgeted per-node breakdowns."""


class _BudgetExhausted(Exception):
    pass
