"""Pure random distribution search (the baseline of [26])."""

from __future__ import annotations

from typing import Callable, Optional

from repro.cluster.cluster import ClusterSpec
from repro.core.model import MhetaModel
from repro.distribution.genblock import GenBlock
from repro.search.base import SearchAlgorithm, evaluate_batch

__all__ = ["RandomSearch"]


class RandomSearch(SearchAlgorithm):
    """Sample Dirichlet share vectors uniformly; keep the best.

    All samples are drawn up front (evaluation never consumes the RNG,
    so the candidate sequence is identical to the sequential walk) and
    scored in ``batch_size`` chunks.
    """

    name = "random"

    def __init__(
        self,
        model: MhetaModel,
        cluster: Optional[ClusterSpec] = None,
        *,
        samples: int = 100,
        batch_size: int = 64,
        seed_label: str = "",
    ) -> None:
        super().__init__(
            model, cluster, batch_size=batch_size, seed_label=seed_label
        )
        self.samples = samples

    def _run(
        self,
        evaluate: Callable[[GenBlock], float],
        start: Optional[GenBlock],
    ) -> GenBlock:
        rng = self._rng()
        best: Optional[GenBlock] = start
        best_val = evaluate(start) if start is not None else float("inf")
        candidates = [self._random_distribution(rng) for _ in range(self.samples)]
        for lo in range(0, len(candidates), self.batch_size):
            chunk = candidates[lo : lo + self.batch_size]
            for candidate, value in zip(chunk, evaluate_batch(evaluate, chunk)):
                if value < best_val:
                    best, best_val = candidate, value
        if best is None:  # pragma: no cover - samples >= 1 always evaluates
            best = self._random_distribution(rng)
        return best
