"""Pure random distribution search (the baseline of [26])."""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.model import MhetaModel
from repro.distribution.genblock import GenBlock
from repro.search.base import SearchAlgorithm

__all__ = ["RandomSearch"]


class RandomSearch(SearchAlgorithm):
    """Sample Dirichlet share vectors uniformly; keep the best."""

    name = "random"

    def __init__(self, model: MhetaModel, samples: int = 100) -> None:
        super().__init__(model)
        self.samples = samples

    def _run(
        self,
        evaluate: Callable[[GenBlock], float],
        start: Optional[GenBlock],
    ) -> GenBlock:
        rng = self._rng()
        best: Optional[GenBlock] = start
        best_val = evaluate(start) if start is not None else float("inf")
        for _sample in range(self.samples):
            candidate = self._random_distribution(rng)
            value = evaluate(candidate)
            if value < best_val:
                best, best_val = candidate, value
        if best is None:  # pragma: no cover - samples >= 1 always evaluates
            best = self._random_distribution(rng)
        return best
