"""Simulated-annealing distribution search (reconstruction of [26])."""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.core.model import MhetaModel
from repro.distribution.genblock import GenBlock
from repro.search.base import SearchAlgorithm

__all__ = ["SimulatedAnnealingSearch"]


class SimulatedAnnealingSearch(SearchAlgorithm):
    """Metropolis walk over row moves with geometric cooling.

    The neighbourhood operator moves a geometrically-sized chunk of rows
    from one random node to another — the natural GEN_BLOCK move.  The
    initial temperature is set from the first candidate's value so the
    acceptance probabilities are scale-free.
    """

    name = "annealing"

    def __init__(
        self,
        model: MhetaModel,
        steps: int = 150,
        initial_acceptance: float = 0.5,
        cooling: float = 0.97,
    ) -> None:
        super().__init__(model)
        self.steps = steps
        self.initial_acceptance = initial_acceptance
        self.cooling = cooling

    def _run(
        self,
        evaluate: Callable[[GenBlock], float],
        start: Optional[GenBlock],
    ) -> GenBlock:
        import numpy as np

        rng = self._rng()
        if start is None:
            # A runtime system anneals away from the distribution it
            # already has; default to the even (Blk) split.
            start = self._normalise(np.ones(self.n_nodes))
        current = start
        cur_val = evaluate(current)
        best, best_val = current, cur_val
        # Temperature such that a 10% uphill move is accepted with the
        # configured initial probability.
        temperature = -0.1 * cur_val / math.log(self.initial_acceptance)
        for _step in range(self.steps):
            src = int(rng.integers(self.n_nodes))
            dst = int(rng.integers(self.n_nodes))
            if src == dst:
                continue
            max_move = current[src] - 1
            if max_move < 1:
                continue
            chunk = min(int(rng.geometric(8.0 / self.n_rows)), max_move)
            candidate = current.moved(src, dst, chunk)
            cand_val = evaluate(candidate)
            delta = cand_val - cur_val
            if delta <= 0 or rng.random() < math.exp(
                -delta / max(temperature, 1e-12)
            ):
                current, cur_val = candidate, cand_val
                if cur_val < best_val:
                    best, best_val = current, cur_val
            temperature *= self.cooling
        return best
