"""Simulated-annealing distribution search (reconstruction of [26])."""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.cluster.cluster import ClusterSpec
from repro.core.model import MhetaModel
from repro.distribution.genblock import GenBlock
from repro.search.base import SearchAlgorithm, evaluate_batch

__all__ = ["SimulatedAnnealingSearch"]

#: Minimum Metropolis moves a chain needs to travel anywhere useful;
#: the chain count is sized so every chain gets at least this many.
_MIN_MOVES_PER_CHAIN = 32


class SimulatedAnnealingSearch(SearchAlgorithm):
    """Metropolis walk over row moves with geometric cooling.

    The neighbourhood operator moves a geometrically-sized chunk of rows
    from one random node to another — the natural GEN_BLOCK move.  The
    initial temperature is set from the first candidate's value so the
    acceptance probabilities are scale-free.

    Batching: annealing is inherently sequential along a chain (each
    proposal perturbs the *latest accepted* state), so the population
    for the vectorized model pass comes from running several chains in
    lockstep — per step every chain proposes one move from its own
    state, the proposals are scored in one batch, and each chain applies
    its own Metropolis test.  The chain count is
    ``min(batch_size, steps // 32)`` (at least 1): every chain keeps
    enough moves to travel, a single chain reproduces the sequential
    walk exactly, and the shared ``steps`` budget still bounds the total
    number of proposals.
    """

    name = "annealing"

    def __init__(
        self,
        model: MhetaModel,
        cluster: Optional[ClusterSpec] = None,
        *,
        steps: int = 150,
        initial_acceptance: float = 0.5,
        cooling: float = 0.97,
        batch_size: int = 64,
        seed_label: str = "",
    ) -> None:
        super().__init__(
            model, cluster, batch_size=batch_size, seed_label=seed_label
        )
        self.steps = steps
        self.initial_acceptance = initial_acceptance
        self.cooling = cooling

    def _run(
        self,
        evaluate: Callable[[GenBlock], float],
        start: Optional[GenBlock],
    ) -> GenBlock:
        import numpy as np

        rng = self._rng()
        if start is None:
            # A runtime system anneals away from the distribution it
            # already has; default to the even (Blk) split.
            start = self._normalise(np.ones(self.n_nodes))
        n_chains = max(
            min(self.batch_size, self.steps // _MIN_MOVES_PER_CHAIN), 1
        )
        start_val = evaluate(start)
        current = [start] * n_chains
        cur_val = [start_val] * n_chains
        best, best_val = start, start_val
        # Temperature such that a 10% uphill move is accepted with the
        # configured initial probability.
        temperature = -0.1 * start_val / math.log(self.initial_acceptance)
        remaining = self.steps
        while remaining > 0:
            idxs = []
            proposals = []
            for c in range(n_chains):
                if remaining <= 0:
                    break
                remaining -= 1
                src = int(rng.integers(self.n_nodes))
                dst = int(rng.integers(self.n_nodes))
                if src == dst:
                    continue
                max_move = current[c][src] - 1
                if max_move < 1:
                    continue
                chunk = min(int(rng.geometric(8.0 / self.n_rows)), max_move)
                idxs.append(c)
                proposals.append(current[c].moved(src, dst, chunk))
            if not proposals:
                continue
            values = evaluate_batch(evaluate, proposals)
            for c, candidate, cand_val in zip(idxs, proposals, values):
                delta = cand_val - cur_val[c]
                if delta <= 0 or rng.random() < math.exp(
                    -delta / max(temperature, 1e-12)
                ):
                    current[c], cur_val[c] = candidate, cand_val
                    if cand_val < best_val:
                        best, best_val = candidate, cand_val
                temperature *= self.cooling
        return best
