"""Jacobi iteration (paper Figure 1's running example).

One read-write N x N grid distributed by rows.  Each iteration sweeps
the grid (reading the previous values, writing the new ones and a
per-row residual contribution), exchanges boundary rows with the
neighbouring nodes, and closes with a global reduction of the residual.

Per the paper, Jacobi is the read-write out-of-core case: "Any time the
node reads data from disk, there is a corresponding write to disk ...
such as in our Jacobi application."  The paper runs 100 iterations.
"""

from __future__ import annotations

from repro.apps.base import AppConfig, Application
from repro.program.builder import ProgramBuilder
from repro.program.structure import ProgramStructure
from repro.util.units import DOUBLE

__all__ = ["JacobiApp"]

#: Ground-truth cost of updating one grid element: a five-point stencil
#: (4 adds, 1 multiply) plus the residual accumulation, on a ~100 MFLOP/s
#: effective 2005 CPU.
WORK_PER_ELEMENT = 60e-9

#: The residual pass reads the per-row partial sums (tiny).
RESIDUAL_WORK_PER_ROW = 40e-9


class JacobiApp(Application):
    """Jacobi iteration structural model."""

    name = "jacobi"

    @classmethod
    def paper(cls, scale: float = 1.0) -> "JacobiApp":
        # 8192 x 8192 doubles = 512 MiB: in core for unrestricted nodes
        # (64 MiB blocks), out of core for memory-restricted ones.
        return cls(AppConfig(n_rows=8192, cols=8192, iterations=100).scaled(scale))

    def _build(self) -> ProgramStructure:
        cfg = self.config
        boundary_bytes = cfg.cols * DOUBLE  # one ghost row per direction
        return (
            ProgramBuilder("jacobi", n_rows=cfg.n_rows, iterations=cfg.iterations)
            .distributed("grid", cols=cfg.cols, access="read-write")
            .distributed("resid", cols=1, access="read-write")
            .section("sweep")
            .stage(
                "update",
                reads=["grid"],
                writes=["grid", "resid"],
                work_per_row=cfg.cols * WORK_PER_ELEMENT,
            )
            .nearest_neighbor(
                message_bytes=boundary_bytes, source_variable="grid"
            )
            .section("residual")
            .stage("norm", reads=["resid"], work_per_row=RESIDUAL_WORK_PER_ROW)
            .reduction(message_bytes=DOUBLE)
            .build()
        )
