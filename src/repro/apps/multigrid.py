"""Multigrid V-cycle (the paper's named future-work application).

Section 6: "We are currently implementing more applications (including
Multigrid) to further increase the types of applications to test MHETA
with a wider range of relative communication, computation, and I/O
costs."  We implement it: a V-cycle over ``levels`` grids, each coarser
level holding 1/4 the data (half the rows and half the columns of the
finer one), with a smooth + transfer pair of nearest-neighbour sections
on the way down and up and a convergence reduction at the bottom of each
cycle.

Representation note: MHETA's one-dimensional distribution covers a
single global row space, so coarse grids are expressed over the *same*
``n_rows`` with ``cols / 4^level`` elements per row — byte- and
work-equivalent to the halved grid, and distribution-consistent (a node
owns the same region of the domain at every level, as real multigrid
partitioning does).
"""

from __future__ import annotations

from repro.apps.base import AppConfig, Application
from repro.program.builder import ProgramBuilder
from repro.program.structure import ProgramStructure
from repro.util.units import DOUBLE

__all__ = ["MultigridApp"]

#: Smoother cost per grid element (five-point stencil sweep).
WORK_PER_ELEMENT = 60e-9
#: Restriction/prolongation cost per (fine-level) element.
TRANSFER_WORK_PER_ELEMENT = 15e-9
#: Number of grid levels in the V-cycle.
LEVELS = 4


class MultigridApp(Application):
    """Multigrid V-cycle structural model."""

    name = "multigrid"

    def __init__(self, config: AppConfig, levels: int = LEVELS) -> None:
        super().__init__(config)
        self.levels = levels

    @classmethod
    def paper(cls, scale: float = 1.0) -> "MultigridApp":
        # Finest grid 8192 x 8192 doubles = 512 MiB; the full hierarchy
        # adds one third more.
        return cls(AppConfig(n_rows=8192, cols=8192, iterations=20).scaled(scale))

    def _build(self) -> ProgramStructure:
        cfg = self.config
        builder = ProgramBuilder(
            "multigrid", n_rows=cfg.n_rows, iterations=cfg.iterations
        )
        level_cols = [
            max(cfg.cols / (4**level), 1.0) for level in range(self.levels)
        ]
        for level, cols in enumerate(level_cols):
            builder.distributed(
                f"grid{level}", cols=cols, access="read-write"
            )
        # Downward leg: smooth, then restrict to the next coarser level.
        for level in range(self.levels - 1):
            cols = level_cols[level]
            builder.section(f"smooth_down{level}")
            builder.stage(
                f"smooth{level}",
                reads=[f"grid{level}"],
                writes=[f"grid{level}"],
                work_per_row=cols * WORK_PER_ELEMENT,
            )
            builder.nearest_neighbor(
                message_bytes=cols * DOUBLE, source_variable=f"grid{level}"
            )
            builder.section(f"restrict{level}")
            builder.stage(
                f"inject{level}",
                reads=[f"grid{level}"],
                writes=[f"grid{level + 1}"],
                work_per_row=cols * TRANSFER_WORK_PER_ELEMENT,
            )
            builder.nearest_neighbor(
                message_bytes=level_cols[level + 1] * DOUBLE,
                source_variable=f"grid{level + 1}",
            )
        # Coarsest solve: a few smoothing sweeps and the convergence check.
        coarse = self.levels - 1
        builder.section("coarse_solve")
        builder.stage(
            "coarse_smooth",
            reads=[f"grid{coarse}"],
            writes=[f"grid{coarse}"],
            work_per_row=level_cols[coarse] * 4 * WORK_PER_ELEMENT,
        )
        builder.reduction(message_bytes=DOUBLE)
        # Upward leg: prolong to the finer level and smooth it.
        for level in range(self.levels - 2, -1, -1):
            cols = level_cols[level]
            builder.section(f"prolong{level}")
            builder.stage(
                f"interp{level}",
                reads=[f"grid{level + 1}"],
                writes=[f"grid{level}"],
                work_per_row=cols * TRANSFER_WORK_PER_ELEMENT,
            )
            builder.nearest_neighbor(
                message_bytes=cols * DOUBLE, source_variable=f"grid{level}"
            )
            builder.section(f"smooth_up{level}")
            builder.stage(
                f"resmooth{level}",
                reads=[f"grid{level}"],
                writes=[f"grid{level}"],
                work_per_row=cols * WORK_PER_ELEMENT,
            )
            builder.nearest_neighbor(
                message_bytes=cols * DOUBLE, source_variable=f"grid{level}"
            )
        return builder.build()
