"""NAS-style Conjugate Gradient (the paper's worst-case application).

A large sparse symmetric matrix ``A`` (read-only, distributed by rows,
stored CSR-style at 12 bytes per non-zero) is multiplied against a
replicated vector each iteration; two dot-product reductions and the
vector updates follow.

CG is where MHETA's limitations show (paper Sections 5.2.2 and 5.4):
the number of non-zeros per row varies, so computation does *not* scale
with row count — "there is not a simple correlation between number of
rows and number of elements per row, resulting in slight load imbalances
in CG that our model did not predict."  The ground-truth per-row weights
here are a smooth, spatially correlated random field (seeded, so every
run sees the same matrix), giving contiguous row blocks a few percent of
systematic imbalance, exactly the failure mode the paper describes.

The paper runs 10 iterations.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppConfig, Application
from repro.program.builder import ProgramBuilder
from repro.program.structure import ProgramStructure
from repro.util.rng import stream
from repro.util.units import DOUBLE

__all__ = ["ConjugateGradientApp", "sparse_row_weights"]

#: Average stored non-zeros per matrix row.
NNZ_PER_ROW = 512
#: Bytes per stored non-zero (double value + 4-byte column index).
BYTES_PER_NNZ = 12
#: Ground-truth cost per non-zero: multiply-add plus the irregular
#: column-index gather.
WORK_PER_NNZ = 100e-9
#: Log-std of the per-row weight field.
WEIGHT_SIGMA = 0.10
#: Correlation length of the weight field, as a fraction of the rows.
WEIGHT_CORRELATION = 1.0 / 32.0


def sparse_row_weights(
    n_rows: int, sigma: float = WEIGHT_SIGMA, correlation: float = WEIGHT_CORRELATION
) -> np.ndarray:
    """Deterministic smooth per-row non-zero weights.

    White noise smoothed with a moving average of window
    ``correlation * n_rows`` and exponentiated: nearby rows have similar
    density (matrices from meshes and graphs cluster their structure),
    so contiguous GEN_BLOCK blocks acquire systematic weight imbalance
    that row-count scaling cannot see.
    """
    rng = stream("cg-row-weights", n_rows)
    window = max(int(n_rows * correlation), 1)
    noise = rng.normal(0.0, 1.0, n_rows + window)
    kernel = np.ones(window) / window
    smooth = np.convolve(noise, kernel, mode="valid")[:n_rows]
    std = smooth.std()
    if std > 0:
        smooth = smooth / std
    return np.exp(sigma * smooth)


class ConjugateGradientApp(Application):
    """NAS CG structural model."""

    name = "cg"

    @classmethod
    def paper(cls, scale: float = 1.0) -> "ConjugateGradientApp":
        # 65536 rows x 512 nnz x 12 B = 384 MiB of matrix: in core for
        # unrestricted nodes (48 MiB blocks), out of core for small ones.
        cfg = AppConfig(n_rows=65536, cols=NNZ_PER_ROW, iterations=10)
        if scale != 1.0:
            # The sparse matrix scales its row count only (nnz/row is a
            # property of the discretisation, not the problem size).
            cfg = AppConfig(
                n_rows=max(int(cfg.n_rows * scale), 64),
                cols=NNZ_PER_ROW,
                iterations=cfg.iterations,
            )
        return cls(cfg)

    def _build(self) -> ProgramStructure:
        cfg = self.config
        n = cfg.n_rows
        weights = sparse_row_weights(n)
        gather_bytes = n * DOUBLE / 8  # one node's vector contribution
        return (
            ProgramBuilder("cg", n_rows=n, iterations=cfg.iterations)
            .distributed(
                "A",
                cols=cfg.cols,
                access="read-only",
                element_size=BYTES_PER_NNZ,
            )
            .distributed("q", cols=1, access="read-write")
            .distributed("r", cols=1, access="read-write")
            .distributed("x", cols=1, access="read-write")
            .replicated("p_full", elements=n)
            .section("matvec")
            .stage(
                "Ap",
                reads=["A", "p_full"],
                writes=["q"],
                work_per_row=cfg.cols * WORK_PER_NNZ,
            )
            .allgather(message_bytes=gather_bytes)
            .section("dots")
            .stage("rho", reads=["q", "r"], work_per_row=20e-9)
            .reduction(message_bytes=2 * DOUBLE)
            .section("update")
            .stage("axpy", reads=["q"], writes=["x", "r"], work_per_row=30e-9)
            .reduction(message_bytes=DOUBLE)
            .weights(weights)
            .build()
        )
