"""Real numeric kernels for the benchmark applications.

These are working NumPy implementations of the numerics the structural
models describe — Jacobi relaxation, sparse CG, Lanczos
tridiagonalisation, a wavefront RNA dynamic program, and a multigrid
V-cycle — at example scale.  They exist so the examples demonstrate real
computations and so the tests can check the structural models' iteration
patterns (communication per iteration, convergence behaviour) against
genuine algorithms, not just against themselves.
"""

from repro.apps.kernels.jacobi_kernel import jacobi_solve, JacobiResult
from repro.apps.kernels.cg_kernel import (
    cg_solve,
    CgResult,
    make_sparse_spd_matrix,
)
from repro.apps.kernels.lanczos_kernel import lanczos_tridiagonalize, LanczosResult
from repro.apps.kernels.rna_kernel import rna_fold, RnaResult
from repro.apps.kernels.multigrid_kernel import multigrid_solve, MultigridResult

__all__ = [
    "jacobi_solve",
    "JacobiResult",
    "cg_solve",
    "CgResult",
    "make_sparse_spd_matrix",
    "lanczos_tridiagonalize",
    "LanczosResult",
    "rna_fold",
    "RnaResult",
    "multigrid_solve",
    "MultigridResult",
]
