"""Conjugate gradient on a CSR sparse matrix (pure NumPy)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.util.rng import stream

__all__ = ["CsrMatrix", "make_sparse_spd_matrix", "CgResult", "cg_solve"]


@dataclass(frozen=True)
class CsrMatrix:
    """Minimal CSR storage: exactly what the structural model's 12
    bytes/non-zero (value + column index) describes."""

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: Tuple[int, int]

    @property
    def nnz(self) -> int:
        return int(len(self.data))

    def row_nnz(self) -> np.ndarray:
        """Non-zeros per row — the quantity whose variation defeats
        MHETA's row-count compute scaling."""
        return np.diff(self.indptr)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` without scipy: segment sums over the CSR arrays."""
        products = self.data * x[self.indices]
        out = np.add.reduceat(products, self.indptr[:-1])
        # reduceat yields garbage for empty rows; mask them to zero.
        empty = self.indptr[:-1] == self.indptr[1:]
        if empty.any():
            out = np.where(empty, 0.0, out)
        return out


def make_sparse_spd_matrix(
    n: int, avg_nnz: int = 8, seed_label: str = "cg-kernel"
) -> CsrMatrix:
    """Deterministic symmetric-positive-definite sparse matrix.

    Rows get a varying number of off-diagonal entries (clustered, like
    mesh matrices); diagonal dominance guarantees SPD.
    """
    rng = stream(seed_label, n, avg_nnz)
    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    vals: List[np.ndarray] = []
    # Smoothly varying row density, mirroring the structural model.
    density = np.clip(
        avg_nnz * (1.0 + 0.5 * np.sin(np.linspace(0, 6.0, n))), 1, None
    ).astype(int)
    for i in range(n):
        k = int(density[i])
        others = rng.choice(n, size=min(k, n - 1), replace=False)
        others = others[others != i]
        rows.append(np.full(len(others), i))
        cols.append(others)
        vals.append(rng.uniform(-1.0, 1.0, len(others)))
    ri = np.concatenate(rows)
    ci = np.concatenate(cols)
    vi = np.concatenate(vals)
    # Symmetrise by accumulating (i,j) and (j,i) into a dense-of-dicts
    # free representation: concatenate both orientations then sum dups.
    all_r = np.concatenate([ri, ci])
    all_c = np.concatenate([ci, ri])
    all_v = np.concatenate([vi, vi]) * 0.5
    order = np.lexsort((all_c, all_r))
    all_r, all_c, all_v = all_r[order], all_c[order], all_v[order]
    # Merge duplicate coordinates.
    first = np.ones(len(all_r), dtype=bool)
    first[1:] = (all_r[1:] != all_r[:-1]) | (all_c[1:] != all_c[:-1])
    group = np.cumsum(first) - 1
    merged_v = np.zeros(int(group[-1]) + 1)
    np.add.at(merged_v, group, all_v)
    merged_r = all_r[first]
    merged_c = all_c[first]
    # Diagonal dominance.
    row_abs = np.zeros(n)
    np.add.at(row_abs, merged_r, np.abs(merged_v))
    diag_r = np.arange(n)
    diag_v = row_abs + 1.0
    final_r = np.concatenate([merged_r, diag_r])
    final_c = np.concatenate([merged_c, diag_r])
    final_v = np.concatenate([merged_v, diag_v])
    order = np.lexsort((final_c, final_r))
    final_r, final_c, final_v = final_r[order], final_c[order], final_v[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, final_r + 1, 1)
    indptr = np.cumsum(indptr)
    return CsrMatrix(
        indptr=indptr, indices=final_c.astype(np.int64), data=final_v,
        shape=(n, n),
    )


@dataclass(frozen=True)
class CgResult:
    """Outcome of a CG solve."""

    x: np.ndarray
    iterations: int
    residual_norms: List[float]
    converged: bool


def cg_solve(
    a: CsrMatrix,
    b: np.ndarray,
    max_iterations: int = 10,
    tolerance: float = 1e-8,
    x0: Optional[np.ndarray] = None,
) -> CgResult:
    """Standard conjugate gradient; mirrors the structural model's
    per-iteration pattern (one mat-vec + gather, two reductions)."""
    n = a.shape[0]
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=float, copy=True)
    r = b - a.matvec(x)
    p = r.copy()
    rs_old = float(r @ r)
    norms = [float(np.sqrt(rs_old))]
    converged = norms[0] < tolerance
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if converged:
            iterations -= 1
            break
        q = a.matvec(p)  # the allgather + mat-vec section
        alpha = rs_old / float(p @ q)  # reduction 1
        x += alpha * p
        r -= alpha * q
        rs_new = float(r @ r)  # reduction 2
        norms.append(float(np.sqrt(rs_new)))
        if norms[-1] < tolerance:
            converged = True
            break
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    return CgResult(
        x=x, iterations=iterations, residual_norms=norms, converged=converged
    )
