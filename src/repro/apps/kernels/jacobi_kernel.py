"""Jacobi relaxation for the 2-D Laplace problem."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["JacobiResult", "jacobi_solve"]


@dataclass(frozen=True)
class JacobiResult:
    """Outcome of a Jacobi run."""

    grid: np.ndarray
    iterations: int
    residuals: List[float]
    converged: bool


def jacobi_solve(
    grid: np.ndarray,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    out: Optional[np.ndarray] = None,
) -> JacobiResult:
    """Relax the interior of ``grid`` towards the discrete Laplace
    solution with fixed boundary values.

    Each iteration replaces every interior point with the average of its
    four neighbours (vectorised five-point stencil — no Python-level
    loops over elements) and records the max-norm change as the
    residual, the same reduce-per-iteration pattern the structural model
    describes.
    """
    grid = np.array(grid, dtype=float, copy=True)
    if grid.ndim != 2 or min(grid.shape) < 3:
        raise ValueError("grid must be 2-D with at least 3 points per side")
    new = np.empty_like(grid) if out is None else out
    new[:] = grid
    residuals: List[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new[1:-1, 1:-1] = 0.25 * (
            grid[:-2, 1:-1] + grid[2:, 1:-1] + grid[1:-1, :-2] + grid[1:-1, 2:]
        )
        residual = float(np.abs(new[1:-1, 1:-1] - grid[1:-1, 1:-1]).max())
        residuals.append(residual)
        grid, new = new, grid
        if residual < tolerance:
            converged = True
            break
    return JacobiResult(
        grid=grid, iterations=iterations, residuals=residuals, converged=converged
    )
