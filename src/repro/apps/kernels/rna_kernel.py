"""Wavefront RNA secondary-structure dynamic program.

A Nussinov-style base-pair maximisation stands in for the stochastic
pseudoknot grammar of Cai et al. [5]: both fill a triangular DP table in
wavefront order, which is exactly the dependence structure the pipelined
benchmark models (node k's block needs node k-1's boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["RnaResult", "rna_fold", "random_sequence"]

_PAIRS = {("A", "U"), ("U", "A"), ("C", "G"), ("G", "C"), ("G", "U"), ("U", "G")}


def random_sequence(length: int, seed_label: str = "rna-kernel") -> str:
    """Deterministic random RNA sequence."""
    from repro.util.rng import stream

    rng = stream(seed_label, length)
    return "".join(rng.choice(list("ACGU"), size=length))


@dataclass(frozen=True)
class RnaResult:
    """Outcome of a fold: DP table, optimal pair count, and traceback."""

    table: np.ndarray
    best_pairs: int
    pairing: List[Tuple[int, int]]


def rna_fold(sequence: str, min_loop: int = 3) -> RnaResult:
    """Maximise base pairs over ``sequence`` (Nussinov algorithm).

    ``table[i, j]`` is the best pair count for subsequence ``i..j``;
    anti-diagonals are the wavefronts.  ``min_loop`` enforces the minimum
    hairpin loop length.
    """
    n = len(sequence)
    if n == 0:
        return RnaResult(table=np.zeros((0, 0), dtype=np.int64), best_pairs=0, pairing=[])
    seq = sequence.upper()
    if any(c not in "ACGU" for c in seq):
        raise ValueError("sequence must contain only A, C, G, U")
    table = np.zeros((n, n), dtype=np.int64)
    for span in range(min_loop + 1, n):
        for i in range(0, n - span):
            j = i + span
            best = table[i + 1, j]  # i unpaired
            if (seq[i], seq[j]) in _PAIRS:
                best = max(best, table[i + 1, j - 1] + 1)
            # Bifurcations: i pairs with some k < j.
            for k in range(i + min_loop + 1, j):
                if (seq[i], seq[k]) in _PAIRS:
                    best = max(best, table[i + 1, k - 1] + 1 + table[k + 1, j])
            table[i, j] = best
    pairing = _traceback(seq, table, min_loop)
    return RnaResult(
        table=table, best_pairs=int(table[0, n - 1]), pairing=pairing
    )


def _traceback(seq: str, table: np.ndarray, min_loop: int) -> List[Tuple[int, int]]:
    """Recover one optimal pairing from the filled table."""
    n = len(seq)
    pairs: List[Tuple[int, int]] = []
    stack = [(0, n - 1)]
    while stack:
        i, j = stack.pop()
        if i >= j or j - i <= min_loop:
            continue
        if table[i, j] == table[i + 1, j]:
            stack.append((i + 1, j))
            continue
        if (seq[i], seq[j]) in _PAIRS and table[i, j] == table[i + 1, j - 1] + 1:
            pairs.append((i, j))
            stack.append((i + 1, j - 1))
            continue
        found = False
        for k in range(i + min_loop + 1, j):
            if (seq[i], seq[k]) in _PAIRS and (
                table[i, j] == table[i + 1, k - 1] + 1 + table[k + 1, j]
            ):
                pairs.append((i, k))
                stack.append((i + 1, k - 1))
                stack.append((k + 1, j))
                found = True
                break
        if not found:  # pragma: no cover - defensive
            stack.append((i + 1, j))
    return sorted(pairs)
