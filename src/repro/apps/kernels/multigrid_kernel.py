"""Multigrid V-cycle for the 1-D Poisson problem."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["MultigridResult", "multigrid_solve"]


@dataclass(frozen=True)
class MultigridResult:
    """Outcome of a multigrid solve."""

    solution: np.ndarray
    residual_norms: List[float]
    cycles: int
    converged: bool


def _residual(u: np.ndarray, f: np.ndarray, h: float) -> np.ndarray:
    r = np.zeros_like(u)
    r[1:-1] = f[1:-1] - (2 * u[1:-1] - u[:-2] - u[2:]) / h**2
    return r


def _smooth(u: np.ndarray, f: np.ndarray, h: float, sweeps: int) -> np.ndarray:
    """Weighted-Jacobi smoothing (vectorised)."""
    omega = 2.0 / 3.0
    for _ in range(sweeps):
        new = u.copy()
        new[1:-1] = 0.5 * (u[:-2] + u[2:] + h**2 * f[1:-1])
        u = (1 - omega) * u + omega * new
    return u


def _restrict(fine: np.ndarray) -> np.ndarray:
    """Full-weighting restriction to the coarse grid."""
    coarse = fine[::2].copy()
    coarse[1:-1] = 0.25 * (fine[1:-2:2] + 2 * fine[2:-1:2] + fine[3::2])
    return coarse


def _prolong(coarse: np.ndarray) -> np.ndarray:
    """Linear interpolation to the fine grid."""
    n = 2 * (len(coarse) - 1) + 1
    fine = np.zeros(n)
    fine[::2] = coarse
    fine[1::2] = 0.5 * (coarse[:-1] + coarse[1:])
    return fine


def _vcycle(u, f, h, level, max_level, pre=2, post=2):
    u = _smooth(u, f, h, pre)
    if level < max_level and len(u) > 5:
        r = _residual(u, f, h)
        rc = _restrict(r)
        ec = _vcycle(np.zeros_like(rc), rc, 2 * h, level + 1, max_level, pre, post)
        u = u + _prolong(ec)[: len(u)]
    else:
        u = _smooth(u, f, h, 20)  # coarse "solve"
    return _smooth(u, f, h, post)


def multigrid_solve(
    f: np.ndarray,
    cycles: int = 20,
    levels: int = 4,
    tolerance: float = 1e-8,
) -> MultigridResult:
    """Solve ``-u'' = f`` on [0, 1] with zero boundaries by V-cycles.

    ``f`` is sampled on ``2^k + 1`` points.  Each cycle mirrors the
    structural model's section sequence: smooth/restrict down the
    hierarchy, a coarse solve with a convergence reduction, prolong and
    re-smooth on the way up.
    """
    n = len(f)
    if n < 5 or ((n - 1) & (n - 2)) != 0:
        raise ValueError("f must be sampled on 2^k + 1 points, k >= 2")
    h = 1.0 / (n - 1)
    u = np.zeros(n)
    norms: List[float] = []
    converged = False
    done = 0
    for done in range(1, cycles + 1):
        u = _vcycle(u, f, h, level=0, max_level=levels - 1)
        norm = float(np.linalg.norm(_residual(u, f, h)) * np.sqrt(h))
        norms.append(norm)
        if norm < tolerance:
            converged = True
            break
    return MultigridResult(
        solution=u, residual_norms=norms, cycles=done, converged=converged
    )
