"""Lanczos tridiagonalisation of a symmetric matrix."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.util.rng import stream

__all__ = ["LanczosResult", "lanczos_tridiagonalize", "make_spd_dense"]


def make_spd_dense(n: int, seed_label: str = "lanczos-kernel") -> np.ndarray:
    """Deterministic dense symmetric positive-definite test matrix."""
    rng = stream(seed_label, n)
    m = rng.normal(0.0, 1.0, (n, n))
    a = 0.5 * (m + m.T)
    a[np.diag_indices(n)] += n  # diagonal dominance => SPD
    return a


@dataclass(frozen=True)
class LanczosResult:
    """Outcome of a Lanczos run: the tridiagonal coefficients and the
    orthonormal basis."""

    alphas: np.ndarray  #: diagonal of T
    betas: np.ndarray  #: off-diagonal of T (length k-1)
    basis: np.ndarray  #: (k, n) Lanczos vectors

    @property
    def tridiagonal(self) -> np.ndarray:
        k = len(self.alphas)
        t = np.zeros((k, k))
        t[np.diag_indices(k)] = self.alphas
        idx = np.arange(k - 1)
        t[idx, idx + 1] = self.betas
        t[idx + 1, idx] = self.betas
        return t

    def ritz_values(self) -> np.ndarray:
        """Eigenvalue estimates from the tridiagonal matrix."""
        return np.linalg.eigvalsh(self.tridiagonal)


def lanczos_tridiagonalize(
    a: np.ndarray,
    iterations: int = 5,
    v0: Optional[np.ndarray] = None,
    reorthogonalize: bool = True,
) -> LanczosResult:
    """Run ``iterations`` Lanczos steps on symmetric ``a``.

    Each step is one dense mat-vec (the allgather + matvec section of
    the structural model) plus dot products and axpys (the reduction
    section).  Full re-orthogonalisation keeps the basis numerically
    orthogonal at these small example sizes.
    """
    n = a.shape[0]
    if a.shape != (n, n):
        raise ValueError("matrix must be square")
    if not np.allclose(a, a.T, atol=1e-10):
        raise ValueError("matrix must be symmetric")
    iterations = min(iterations, n)
    if v0 is None:
        v = np.ones(n) / np.sqrt(n)
    else:
        v = np.asarray(v0, dtype=float)
        v = v / np.linalg.norm(v)
    basis = np.zeros((iterations, n))
    alphas = np.zeros(iterations)
    betas = np.zeros(max(iterations - 1, 0))
    v_prev = np.zeros(n)
    beta = 0.0
    for k in range(iterations):
        basis[k] = v
        w = a @ v  # matvec section
        alpha = float(w @ v)  # reduction
        w -= alpha * v + beta * v_prev
        if reorthogonalize and k > 0:
            w -= basis[: k + 1].T @ (basis[: k + 1] @ w)
        alphas[k] = alpha
        beta = float(np.linalg.norm(w))
        if k + 1 < iterations:
            betas[k] = beta
            if beta < 1e-14:
                # Invariant subspace found: truncate.
                return LanczosResult(
                    alphas=alphas[: k + 1],
                    betas=betas[:k],
                    basis=basis[: k + 1],
                )
            v_prev = v
            v = w / beta
    return LanczosResult(alphas=alphas, betas=betas, basis=basis)
