"""RNA pseudoknot pipeline (the paper's pipelined benchmark).

Based on the stochastic-grammar pseudoknot prediction of Cai, Malmberg
and Wu [5]: a dynamic-programming table is filled in wavefront order, so
node ``k`` can only process a column block (a *tile*) after receiving
the boundary of that block from node ``k-1``.  The parallel section
therefore contains many tiles with one pipelined message each — the
structure Equation 4 models.  The paper runs 10 iterations (e.g. ten
candidate sequences/grammar sweeps).
"""

from __future__ import annotations

from repro.apps.base import AppConfig, Application
from repro.program.builder import ProgramBuilder
from repro.program.structure import ProgramStructure
from repro.util.units import DOUBLE

__all__ = ["RnaPipelineApp"]

#: Ground-truth cost per DP cell: grammar-rule evaluation is much
#: heavier than a stencil update.
WORK_PER_CELL = 200e-9

#: Column blocks per parallel section (tiles): one pipelined message
#: each.
TILES = 16


class RnaPipelineApp(Application):
    """Pipelined RNA-pseudoknot structural model."""

    name = "rna"

    @classmethod
    def paper(cls, scale: float = 1.0) -> "RnaPipelineApp":
        # 8192 rows x 6144 columns of doubles = 384 MiB of DP table.
        return cls(AppConfig(n_rows=8192, cols=6144, iterations=10).scaled(scale))

    def _build(self) -> ProgramStructure:
        cfg = self.config
        tiles = min(TILES, max(cfg.cols // 4, 1))
        # The boundary a downstream node needs: the last owned row's
        # entries for this tile's columns.
        tile_message = (cfg.cols / tiles) * DOUBLE
        return (
            ProgramBuilder("rna", n_rows=cfg.n_rows, iterations=cfg.iterations)
            .distributed("dp", cols=cfg.cols, access="read-write")
            .replicated("sequence", elements=cfg.n_rows + cfg.cols)
            .section("wavefront", tiles=tiles)
            .stage(
                "fill",
                reads=["dp", "sequence"],
                writes=["dp"],
                work_per_row=cfg.cols * WORK_PER_CELL,
            )
            .pipeline(message_bytes=tile_message, source_variable="dp")
            .build()
        )
