"""The paper's benchmark applications.

Each application provides (a) a :class:`~repro.program.ProgramStructure`
describing its parallel sections, tiles, stages and variables — the
input MHETA and the emulator share — and (b) a real NumPy kernel in
:mod:`repro.apps.kernels` computing the actual numerics at example
scale, so the structural model's shape can be sanity-checked against
working code.

The four evaluation programs (Section 5):

* **Jacobi** — 2-D Jacobi iteration: one read-write grid, nearest-
  neighbour boundary exchange, global residual reduction; 100
  iterations.
* **CG** — NAS Conjugate Gradient: a large *sparse* read-only matrix
  (per-row non-zeros vary, defeating MHETA's row-count scaling),
  allgather for the mat-vec, two dot-product reductions; 10 iterations.
* **RNA** — pseudoknot-style dynamic-programming pipeline: many tiles
  per parallel section, per-tile messages flowing node 0 -> n-1; 10
  iterations.
* **Lanczos** — dense symmetric mat-vec plus orthogonalisation
  reductions; the one full-scale application; 5 iterations.

Plus **Multigrid** (named as in-progress future work in Section 6):
a V-cycle over level-halved grids, exercising many sections per
iteration.
"""

from repro.apps.base import AppConfig, Application
from repro.apps.jacobi import JacobiApp
from repro.apps.cg import ConjugateGradientApp
from repro.apps.rna import RnaPipelineApp
from repro.apps.lanczos import LanczosApp
from repro.apps.multigrid import MultigridApp

__all__ = [
    "AppConfig",
    "Application",
    "JacobiApp",
    "ConjugateGradientApp",
    "RnaPipelineApp",
    "LanczosApp",
    "MultigridApp",
    "paper_applications",
    "application_by_name",
]


def paper_applications(scale: float = 1.0):
    """The four applications of the paper's evaluation, at ``scale``
    times the default problem size (1.0 reproduces the full-scale
    experiments; tests pass a small fraction)."""
    return [
        JacobiApp.paper(scale),
        ConjugateGradientApp.paper(scale),
        LanczosApp.paper(scale),
        RnaPipelineApp.paper(scale),
    ]


def application_by_name(name: str, scale: float = 1.0) -> Application:
    """Look up an application by its paper name."""
    table = {
        "jacobi": JacobiApp,
        "cg": ConjugateGradientApp,
        "lanczos": LanczosApp,
        "rna": RnaPipelineApp,
        "multigrid": MultigridApp,
    }
    try:
        return table[name.lower()].paper(scale)
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; choose from {sorted(table)}"
        )
