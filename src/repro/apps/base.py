"""Application base class and configuration."""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, replace

from repro.exceptions import ProgramStructureError
from repro.program.structure import ProgramStructure

__all__ = ["AppConfig", "Application"]


@dataclass(frozen=True)
class AppConfig:
    """Problem size and iteration count for one application instance.

    ``n_rows``/``cols`` describe the primary distributed array;
    ``iterations`` follows the paper's Section 5.1 choices.  ``extra``
    carries application-specific parameters (tiles, non-zeros per row,
    multigrid levels, ...).
    """

    n_rows: int
    cols: int
    iterations: int

    def scaled(self, scale: float) -> "AppConfig":
        """Shrink (or grow) the problem while keeping its shape: both
        dimensions scale by ``sqrt(scale)`` so the dataset scales by
        ``scale``."""
        if scale <= 0:
            raise ProgramStructureError("scale must be positive")
        factor = math.sqrt(scale)
        return replace(
            self,
            n_rows=max(int(self.n_rows * factor), 8),
            cols=max(int(self.cols * factor), 8),
        )


class Application(abc.ABC):
    """One benchmark application: a named program-structure factory.

    Subclasses define the paper-scale configuration (``paper()``) and how
    the configuration maps to a :class:`ProgramStructure`.  The structure
    is built lazily and cached; ``prefetching()`` returns a variant with
    the unrolled prefetch loop enabled.
    """

    #: Paper name, e.g. "jacobi".
    name: str = ""

    def __init__(self, config: AppConfig) -> None:
        self.config = config
        self._structure: ProgramStructure | None = None

    @classmethod
    @abc.abstractmethod
    def paper(cls, scale: float = 1.0) -> "Application":
        """The paper's evaluation configuration, optionally scaled."""

    @abc.abstractmethod
    def _build(self) -> ProgramStructure:
        """Construct the program structure for ``self.config``."""

    @property
    def structure(self) -> ProgramStructure:
        if self._structure is None:
            self._structure = self._build()
        return self._structure

    def prefetching(self) -> ProgramStructure:
        """The same program with one-block-ahead prefetching enabled."""
        return self.structure.with_prefetch(True)

    @property
    def dataset_bytes(self) -> int:
        return self.structure.dataset_bytes

    def __repr__(self) -> str:
        c = self.config
        return (
            f"{type(self).__name__}(n_rows={c.n_rows}, cols={c.cols}, "
            f"iterations={c.iterations})"
        )
