"""Lanczos iteration — the paper's full-scale application.

Solves ``A x = b`` for a symmetric positive-definite dense N x N matrix
via the Lanczos process: each iteration multiplies the (read-only,
row-distributed, out-of-core candidate) matrix against the current
Lanczos vector, then orthogonalises with dot-product reductions.  "For
the Conjugate Gradient and Lanzcos applications, the array is read-only,
and no writes are performed" (Section 4.2.1).  The paper runs 5
iterations.
"""

from __future__ import annotations

from repro.apps.base import AppConfig, Application
from repro.program.builder import ProgramBuilder
from repro.program.structure import ProgramStructure
from repro.util.units import DOUBLE

__all__ = ["LanczosApp"]

#: Ground-truth cost per dense matrix element: multiply-add plus full
#: re-orthogonalisation traffic, at 2005 streaming-from-memory rates.
WORK_PER_ELEMENT = 100e-9

#: Orthogonalisation work per row (axpys and dot contributions).
ORTH_WORK_PER_ROW = 120e-9


class LanczosApp(Application):
    """Lanczos structural model."""

    name = "lanczos"

    @classmethod
    def paper(cls, scale: float = 1.0) -> "LanczosApp":
        # 9216 x 9216 doubles = 648 MiB: 81 MiB per node under Blk —
        # just inside an unrestricted node's memory, far outside a
        # restricted one's.
        return cls(AppConfig(n_rows=9216, cols=9216, iterations=5).scaled(scale))

    def _build(self) -> ProgramStructure:
        cfg = self.config
        n = cfg.n_rows
        gather_bytes = n * DOUBLE / 8
        return (
            ProgramBuilder("lanczos", n_rows=n, iterations=cfg.iterations)
            .distributed("A", cols=cfg.cols, access="read-only")
            .distributed("w", cols=1, access="read-write")
            .replicated("v_full", elements=n)
            .replicated("v_prev", elements=n)
            .section("matvec")
            .stage(
                "Av",
                reads=["A", "v_full"],
                writes=["w"],
                work_per_row=cfg.cols * WORK_PER_ELEMENT,
            )
            .allgather(message_bytes=gather_bytes)
            .section("orthogonalise")
            .stage(
                "orth",
                reads=["w"],
                writes=["w"],
                work_per_row=ORTH_WORK_PER_ROW,
            )
            .reduction(message_bytes=3 * DOUBLE)
            .build()
        )
