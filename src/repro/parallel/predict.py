"""Sharded batched prediction across worker processes.

``MhetaModel.predict(batch=True)`` already vectorizes a candidate
population inside one process; for very large populations (exhaustive
enumerations, Figure-9 style sweeps) the batch itself can be sharded
across a process pool.  Each worker scores one contiguous shard with the
vectorized kernel, so the fan-out composes with — rather than replaces —
the in-process batching.  The model is deterministic, so results are
bit-identical to the serial batch regardless of ``jobs``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.distribution.genblock import GenBlock
from repro.obs import Recorder, as_recorder
from repro.parallel.runner import ParallelRunner, split_shards

__all__ = ["predict_seconds_sharded", "predict_2d_sharded"]


def _predict_shard_task(spec) -> List[float]:
    model, counts_list, iterations = spec
    dists = [GenBlock(counts) for counts in counts_list]
    return [float(v) for v in model.predict(dists, iterations, batch=True)]


def _predict_shard_task_2d(spec) -> List[float]:
    from repro.twod.distribution2d import GenBlock2D

    model, bands_list, iterations = spec
    dists = [GenBlock2D(rows, cols) for rows, cols in bands_list]
    return [float(v) for v in model.predict(dists, iterations, batch=True)]


def predict_seconds_sharded(
    model,
    distributions: Sequence[GenBlock],
    jobs: int = 1,
    *,
    iterations: Optional[int] = None,
    telemetry: Optional[Recorder] = None,
) -> List[float]:
    """Predicted execution time of each distribution, in input order.

    With ``jobs=1`` this is exactly one ``predict(batch=True)`` call in
    the calling process (no pool, no pickling).  With more workers the
    candidate list is split into one contiguous shard per worker; each
    shard rides the vectorized kernel independently.

    ``iterations`` and ``telemetry`` propagate to every shard the same
    way the single-process call would apply them (workers record
    nothing — the coordinating side records dispatch telemetry).
    """
    payload: List[Tuple[int, ...]] = [tuple(d.counts) for d in distributions]
    rec = as_recorder(telemetry)
    runner = ParallelRunner(jobs, telemetry=telemetry)
    with rec.span("parallel/predict_sharded"):
        if runner.jobs <= 1:
            values = _predict_shard_task((model, payload, iterations))
        else:
            # ProcessPoolExecutor needs a module-level callable; pair
            # each shard with the model instead of closing over it.
            shards = split_shards(payload, runner.jobs)
            results = runner.map(
                _predict_shard_task, [(model, s, iterations) for s in shards]
            )
            values = [v for shard in results for v in shard]
    if rec:
        rec.count("parallel/predictions", len(values))
    return values


def predict_2d_sharded(
    model,
    distributions: Sequence,
    jobs: int = 1,
    *,
    iterations: Optional[int] = None,
    telemetry: Optional[Recorder] = None,
) -> List[float]:
    """The 2-D sibling of :func:`predict_seconds_sharded`: score a
    ``GenBlock2D`` population across worker processes, in input order.

    Each worker rebuilds its shard's distributions from (row bands,
    column bands) tuples and scores them with the vectorized 2-D kernel
    (``TwoDModel.__getstate__`` drops compiled plans, so workers compile
    — or hit their own process's plan LRU — lazily).  Results are
    bit-identical to the serial batch regardless of ``jobs``.
    """
    payload: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = [
        (tuple(d.row_counts), tuple(d.col_counts)) for d in distributions
    ]
    rec = as_recorder(telemetry)
    runner = ParallelRunner(jobs, telemetry=telemetry)
    with rec.span("parallel/predict_2d_sharded"):
        if runner.jobs <= 1:
            values = _predict_shard_task_2d((model, payload, iterations))
        else:
            shards = split_shards(payload, runner.jobs)
            results = runner.map(
                _predict_shard_task_2d,
                [(model, s, iterations) for s in shards],
            )
            values = [v for shard in results for v in shard]
    if rec:
        rec.count("parallel/predictions", len(values))
    return values
