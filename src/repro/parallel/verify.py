"""Parallel emulator verification of search winners.

A distribution search returns the candidate MHETA *predicts* is
fastest; the honest experiment then runs the emulator on each winner to
see what it *actually* costs (benchmarks' ``search_comparison`` table,
the CLI's ``search --verify``).  Each verification is one independent
emulator run, so they fan out trivially.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cluster.cluster import ClusterSpec
from repro.distribution.genblock import GenBlock
from repro.obs import Recorder, as_recorder
from repro.parallel.runner import ParallelRunner
from repro.program.structure import ProgramStructure
from repro.sim.perturbation import PerturbationConfig

__all__ = ["verify_distributions"]


def _verify_task(
    spec: Tuple[ClusterSpec, ProgramStructure, Optional[PerturbationConfig], Tuple[int, ...]]
) -> float:
    from repro.sim.executor import emulate

    cluster, program, perturbation, counts = spec
    return emulate(
        cluster, program, GenBlock(counts), perturbation=perturbation
    ).total_seconds


def verify_distributions(
    cluster: ClusterSpec,
    program: ProgramStructure,
    distributions: Sequence[GenBlock],
    jobs: int = 1,
    perturbation: Optional[PerturbationConfig] = None,
    *,
    telemetry: Optional[Recorder] = None,
) -> List[float]:
    """Actual (emulated) execution time of each distribution, in order.

    Every run seeds its RNG streams from ``(cluster, program,
    distribution, node)``, so the result is independent of ``jobs``.
    """
    tasks = [
        (cluster, program, perturbation, tuple(d.counts))
        for d in distributions
    ]
    rec = as_recorder(telemetry)
    with rec.span("parallel/verify"):
        results = ParallelRunner(jobs, telemetry=telemetry).map(
            _verify_task, tasks
        )
    if rec:
        rec.count("verify/runs", len(results))
    return results
