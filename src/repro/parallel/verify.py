"""Parallel emulator verification of search winners.

A distribution search returns the candidate MHETA *predicts* is
fastest; the honest experiment then runs the emulator on each winner to
see what it *actually* costs (benchmarks' ``search_comparison`` table,
the CLI's ``search --verify``).

Since the plan-compiled emulator, one verification round is one
*batched* :func:`~repro.sim.executor.emulate_many` pass: the whole
population shares a single compiled :class:`EmulationPlan` and walks
its coupled recurrence as one ``(B, P)`` array sweep.  ``jobs > 1``
shards the population into contiguous batches, one batched pass per
worker, so results stay independent of ``jobs``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cluster.cluster import ClusterSpec
from repro.distribution.genblock import GenBlock
from repro.obs import Recorder, as_recorder
from repro.parallel.runner import ParallelRunner
from repro.program.structure import ProgramStructure
from repro.sim.perturbation import PerturbationConfig

__all__ = ["verify_distributions"]


def _verify_batch_task(
    spec: Tuple[
        ClusterSpec,
        ProgramStructure,
        Optional[PerturbationConfig],
        object,
        Tuple[Tuple[int, ...], ...],
    ]
) -> List[float]:
    from repro.sim.executor import emulate_many

    cluster, program, perturbation, dynamics, counts_batch = spec
    results = emulate_many(
        cluster,
        program,
        [GenBlock(counts) for counts in counts_batch],
        perturbation=perturbation,
        dynamics=dynamics,
    )
    return [r.total_seconds for r in results]


_UNSET = object()


def verify_distributions(
    cluster: ClusterSpec,
    program: ProgramStructure,
    distributions: Sequence[GenBlock],
    jobs: int = 1,
    perturbation: Optional[PerturbationConfig] = None,
    *,
    dynamics=None,
    run_cache=None,
    telemetry: Optional[Recorder] = None,
    cache=_UNSET,
) -> List[float]:
    """Actual (emulated) execution time of each distribution, in order.

    Every run seeds its RNG streams from ``(cluster, program,
    distribution, node)``, so the result is independent of ``jobs``.
    ``dynamics`` follows the :func:`emulate` convention (``None`` =
    use ``cluster.dynamics``, ``False`` = force static, or an explicit
    :class:`~repro.cluster.dynamics.DynamicsSpec`).  ``run_cache`` is
    forwarded to :func:`emulate_many` (``None`` means the process
    default :class:`RunCache`, ``False`` disables caching); ``cache=``
    is the deprecated alias (warns once).
    """
    if cache is not _UNSET:
        from repro.obs.deprecation import warn_once

        warn_once(
            "verify_distributions(cache=)", "verify_distributions(run_cache=)"
        )
        run_cache = cache
    rec = as_recorder(telemetry)
    if jobs == 1 or len(distributions) <= 1:
        from repro.sim.executor import emulate_many

        with rec.span("parallel/verify"):
            results = [
                r.total_seconds
                for r in emulate_many(
                    cluster,
                    program,
                    distributions,
                    perturbation=perturbation,
                    dynamics=dynamics,
                    run_cache=run_cache,
                    telemetry=telemetry,
                )
            ]
        if rec:
            rec.count("verify/runs", len(results))
        return results

    n_shards = min(max(int(jobs), 1), max(len(distributions), 1))
    shards: List[List[Tuple[int, ...]]] = [[] for _ in range(n_shards)]
    for i, d in enumerate(distributions):
        shards[i % n_shards].append(tuple(d.counts))
    tasks = [
        (cluster, program, perturbation, dynamics, tuple(shard))
        for shard in shards
        if shard
    ]
    with rec.span("parallel/verify"):
        shard_results = ParallelRunner(jobs, telemetry=telemetry).map(
            _verify_batch_task, tasks
        )
    results: List[float] = [0.0] * len(distributions)
    for shard_index, seconds in enumerate(shard_results):
        for j, value in enumerate(seconds):
            results[shard_index + j * n_shards] = value
    if rec:
        rec.count("verify/runs", len(results))
    return results
