"""Ordered process-pool ``map`` with a deterministic serial fallback.

Experiment fan-out has one requirement beyond speed: results must be
bit-identical to serial execution.  :meth:`ParallelRunner.map` therefore
mirrors the semantics of the builtin ``map`` exactly — results come back
in input order, regardless of which worker finished first — and with
``jobs=1`` no pool is created at all, so the serial path *is* the plain
loop it replaces.

Task functions must be module-level (picklable) and their arguments
plain data; every worker is independent, which the seeded-per-run RNG
streams of the emulator guarantee (see ``repro.parallel``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["ParallelRunner", "resolve_jobs"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``1`` = serial, ``0`` or a
    negative value = one worker per CPU."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


class ParallelRunner:
    """Map a task function over items, optionally across processes.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs everything serially
        in the calling process; ``0`` means one worker per CPU.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = resolve_jobs(jobs)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item; results are returned in input
        order (the property that makes fan-out bit-identical)."""
        work: Sequence[T] = list(items)
        if self.jobs <= 1 or len(work) <= 1:
            return [fn(item) for item in work]
        workers = min(self.jobs, len(work))
        # Modest chunking amortises pickling without starving workers.
        chunksize = max(1, len(work) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, work, chunksize=chunksize))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelRunner(jobs={self.jobs})"
