"""Ordered process-pool ``map`` with a deterministic serial fallback.

Experiment fan-out has one requirement beyond speed: results must be
bit-identical to serial execution.  :meth:`ParallelRunner.map` therefore
mirrors the semantics of the builtin ``map`` exactly — results come back
in input order, regardless of which worker finished first — and with
``jobs=1`` no pool is created at all, so the serial path *is* the plain
loop it replaces.

Task functions must be module-level (picklable) and their arguments
plain data; every worker is independent, which the seeded-per-run RNG
streams of the emulator guarantee (see ``repro.parallel``).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.obs import Recorder, as_recorder

__all__ = ["ParallelRunner", "resolve_jobs", "split_shards"]

T = TypeVar("T")
R = TypeVar("R")


def split_shards(items: Iterable[T], shards: int) -> List[List[T]]:
    """Split ``items`` into at most ``shards`` contiguous, near-equal
    slices (the larger slices first), preserving order.  Empty input
    yields no shards."""
    work: List[T] = list(items)
    if not work:
        return []
    n = min(max(int(shards), 1), len(work))
    base, extra = divmod(len(work), n)
    out: List[List[T]] = []
    lo = 0
    for i in range(n):
        hi = lo + base + (1 if i < extra else 0)
        out.append(work[lo:hi])
        lo = hi
    return out


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``1`` = serial, ``0`` or a
    negative value = one worker per CPU."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


class ParallelRunner:
    """Map a task function over items, optionally across processes.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs everything serially
        in the calling process; ``0`` means one worker per CPU.
    telemetry:
        Optional :class:`repro.obs.Recorder`.  Worker processes cannot
        reach the parent's recorder, so what is recorded is the
        coordinating side's view: tasks dispatched, workers used,
        per-``map`` wall time, and per-shard task counts.
    """

    def __init__(
        self, jobs: int = 1, telemetry: Optional[Recorder] = None
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.telemetry = as_recorder(telemetry)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item; results are returned in input
        order (the property that makes fan-out bit-identical)."""
        work: Sequence[T] = list(items)
        rec = self.telemetry
        started = time.perf_counter() if rec else 0.0
        if self.jobs <= 1 or len(work) <= 1:
            results = [fn(item) for item in work]
            if rec:
                self._record_map(rec, len(work), 1, started)
            return results
        workers = min(self.jobs, len(work))
        # Modest chunking amortises pickling without starving workers.
        chunksize = max(1, len(work) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(fn, work, chunksize=chunksize))
        if rec:
            self._record_map(rec, len(work), workers, started)
        return results

    def _record_map(
        self, rec: Recorder, tasks: int, workers: int, started: float
    ) -> None:
        rec.count("parallel/maps")
        rec.count("parallel/tasks", tasks)
        rec.set("parallel/workers", workers)
        rec.observe("parallel/map_seconds", time.perf_counter() - started)
        # Ordered chunked dispatch: worker w handles ~tasks/workers
        # tasks; record the per-worker share the chunking targets.
        rec.observe("parallel/tasks_per_worker", tasks / max(workers, 1))

    def map_shards(
        self, fn: Callable[[List[T]], List[R]], items: Iterable[T]
    ) -> List[R]:
        """Split ``items`` into one contiguous shard per worker, apply
        ``fn`` (a list-to-list function, e.g. a batched model kernel) to
        each shard, and concatenate the results in input order."""
        shards = split_shards(items, self.jobs)
        rec = self.telemetry
        if rec:
            for shard in shards:
                rec.observe("parallel/shard_tasks", len(shard))
        flat: List[R] = []
        for result in self.map(fn, shards):
            flat.extend(result)
        return flat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelRunner(jobs={self.jobs})"
