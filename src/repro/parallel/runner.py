"""Ordered process-pool ``map`` with a deterministic serial fallback.

Experiment fan-out has one requirement beyond speed: results must be
bit-identical to serial execution.  :meth:`ParallelRunner.map` therefore
mirrors the semantics of the builtin ``map`` exactly — results come back
in input order, regardless of which worker finished first — and with
``jobs=1`` no pool is created at all, so the serial path *is* the plain
loop it replaces.

Task functions must be module-level (picklable) and their arguments
plain data; every worker is independent, which the seeded-per-run RNG
streams of the emulator guarantee (see ``repro.parallel``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["ParallelRunner", "resolve_jobs", "split_shards"]

T = TypeVar("T")
R = TypeVar("R")


def split_shards(items: Iterable[T], shards: int) -> List[List[T]]:
    """Split ``items`` into at most ``shards`` contiguous, near-equal
    slices (the larger slices first), preserving order.  Empty input
    yields no shards."""
    work: List[T] = list(items)
    if not work:
        return []
    n = min(max(int(shards), 1), len(work))
    base, extra = divmod(len(work), n)
    out: List[List[T]] = []
    lo = 0
    for i in range(n):
        hi = lo + base + (1 if i < extra else 0)
        out.append(work[lo:hi])
        lo = hi
    return out


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``1`` = serial, ``0`` or a
    negative value = one worker per CPU."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs <= 0:
        return max(os.cpu_count() or 1, 1)
    return jobs


class ParallelRunner:
    """Map a task function over items, optionally across processes.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs everything serially
        in the calling process; ``0`` means one worker per CPU.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = resolve_jobs(jobs)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item; results are returned in input
        order (the property that makes fan-out bit-identical)."""
        work: Sequence[T] = list(items)
        if self.jobs <= 1 or len(work) <= 1:
            return [fn(item) for item in work]
        workers = min(self.jobs, len(work))
        # Modest chunking amortises pickling without starving workers.
        chunksize = max(1, len(work) // (workers * 4))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, work, chunksize=chunksize))

    def map_shards(
        self, fn: Callable[[List[T]], List[R]], items: Iterable[T]
    ) -> List[R]:
        """Split ``items`` into one contiguous shard per worker, apply
        ``fn`` (a list-to-list function, e.g. a batched model kernel) to
        each shard, and concatenate the results in input order."""
        shards = split_shards(items, self.jobs)
        flat: List[R] = []
        for result in self.map(fn, shards):
            flat.extend(result)
        return flat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelRunner(jobs={self.jobs})"
