"""Fan-out execution layer: process pools, memoisation, verification.

The paper's usability claim is that a MHETA evaluation costs ~5.4 ms —
cheap enough to use "on the fly".  The *experiments around* the model,
however, are dominated by emulator runs, and a Figure-9 sweep
(17 architectures x 4 applications x full spectrum) is embarrassingly
parallel.  This package provides the shared machinery:

* :class:`ParallelRunner` — ordered ``map`` over a
  :class:`~concurrent.futures.ProcessPoolExecutor`, with a
  deterministic serial fallback at ``jobs=1``;
* :class:`SweepCache` / :func:`content_key` — content-keyed
  memoisation of ``(cluster, program, distribution) -> (actual,
  predicted)`` pairs, in memory and optionally on disk;
* :func:`verify_distributions` — parallel emulator verification of
  search winners;
* :func:`predict_seconds_sharded` — shard a large candidate batch
  across workers, each scoring its slice with the vectorized
  ``predict(batch=True)`` kernel.

Determinism: every emulator run seeds its RNG streams from
``(cluster, program, distribution, node)`` labels (see
``repro.sim.perturbation``), so results do not depend on which process
runs them or in which order — fan-out is bit-identical to serial
execution by construction, and the equivalence is regression-tested.
"""

from repro.parallel.runner import ParallelRunner, resolve_jobs, split_shards
from repro.parallel.cache import (
    RunCache,
    SweepCache,
    content_key,
    default_run_cache,
)
from repro.parallel.predict import predict_2d_sharded, predict_seconds_sharded
from repro.parallel.verify import verify_distributions

__all__ = [
    "ParallelRunner",
    "resolve_jobs",
    "split_shards",
    "RunCache",
    "SweepCache",
    "content_key",
    "default_run_cache",
    "predict_seconds_sharded",
    "predict_2d_sharded",
    "verify_distributions",
]
